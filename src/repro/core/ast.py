"""Abstract syntax for TESLA assertions.

This module is the reproduction of the assertion grammar in figure 5 of the
paper.  The user-facing combinators in :mod:`repro.core.dsl` construct these
nodes; the analyser (:mod:`repro.core.translate`) walks them recursively —
exactly as the Clang-based analyser performs "a recursive descent over an
abstract syntax tree" — and emits automata.

Node taxonomy
=============

*Concrete events* (section 3.4.1)
    :class:`FunctionCall`, :class:`FunctionReturn`, :class:`FieldAssign`
    and :class:`AssertionSite`.

*Operators* (section 3.4.2)
    :class:`Sequence` (``TSEQUENCE`` / ``previously`` / ``eventually``),
    :class:`BooleanOr` (inclusive ∨) and :class:`BooleanXor` (exclusive).

*Modifiers* (section 3.4.3)
    :class:`Optional_`, :class:`AtLeast` (figure 8's ``ATLEAST``), and the
    per-event ``context`` field carrying ``caller`` / ``callee``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import AssertionParseError
from .patterns import Pattern


class InstrumentationSide(enum.Enum):
    """Where the hook for a function event is woven.

    ``CALLEE`` adds instrumentation to the target function's entry block and
    returns; ``CALLER`` wraps call sites — important when "instrumenting
    calls into a library that cannot be recompiled" (section 4.2).
    """

    CALLEE = "callee"
    CALLER = "caller"


class AssignOp(enum.Enum):
    """Structure-field assignment operators TESLA can describe."""

    SET = "="
    ADD = "+="
    SUB = "-="
    OR = "|="
    AND = "&="
    INCREMENT = "++"
    DECREMENT = "--"


class Expression:
    """Base class for assertion expression nodes."""

    def children(self) -> Tuple["Expression", ...]:
        return ()

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<{type(self).__name__} {self.describe()}>"


# ---------------------------------------------------------------------------
# Concrete events
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class FunctionCall(Expression):
    """A call *into* ``function`` with arguments matching ``args``.

    ``args`` of ``None`` means "any arguments" (the explicit
    ``call(fn_name)`` static form); an empty tuple means "zero arguments".
    """

    function: str
    args: Optional[Tuple[Pattern, ...]] = None
    side: InstrumentationSide = InstrumentationSide.CALLEE

    def describe(self) -> str:
        if self.args is None:
            return f"call({self.function})"
        inner = ", ".join(p.describe() for p in self.args)
        return f"call({self.function}({inner}))"


@dataclass(frozen=True, repr=False)
class FunctionReturn(Expression):
    """A return *from* ``function``.

    ``retval`` of ``None`` means "any return value" (the bare
    ``returnfrom(fn)`` form).  The ``fn(args) == value`` equality pattern in
    the grammar is sugar for a return event carrying both argument and
    return-value patterns.
    """

    function: str
    args: Optional[Tuple[Pattern, ...]] = None
    retval: Optional[Pattern] = None
    side: InstrumentationSide = InstrumentationSide.CALLEE

    def describe(self) -> str:
        if self.args is None and self.retval is None:
            return f"returnfrom({self.function})"
        inner = ", ".join(p.describe() for p in self.args or ())
        ret = f" == {self.retval.describe()}" if self.retval is not None else ""
        return f"{self.function}({inner}){ret}"


@dataclass(frozen=True, repr=False)
class FieldAssign(Expression):
    """Assignment to a structure field, e.g. ``s.foo = NEXT_STATE``.

    ``struct`` names the structure type (a Python class in this
    reproduction), ``field_name`` the field.  ``target`` optionally
    constrains *which* structure instance (usually a :class:`~.patterns.Var`
    so the automaton instance is tied to one object); ``value`` constrains
    the assigned value.  Compound assignment (``+=``, ``++``) is expressed
    through ``op``.
    """

    struct: str
    field_name: str
    op: AssignOp = AssignOp.SET
    target: Optional[Pattern] = None
    value: Optional[Pattern] = None

    def describe(self) -> str:
        tgt = self.target.describe() if self.target is not None else "ANY"
        if self.op in (AssignOp.INCREMENT, AssignOp.DECREMENT):
            return f"{tgt}.{self.field_name}{self.op.value}"
        val = self.value.describe() if self.value is not None else "ANY"
        return f"{tgt}.{self.field_name} {self.op.value} {val}"


@dataclass(frozen=True, repr=False)
class AssertionSite(Expression):
    """Program execution reaching the assertion site itself.

    Explicit ``TESLA_ASSERTION_SITE`` in the grammar; also produced
    implicitly by the expansion of ``previously`` and ``eventually``.
    """

    def describe(self) -> str:
        return "TESLA_ASSERTION_SITE"


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Sequence(Expression):
    """An ordered sequence of sub-expressions (``TSEQUENCE``)."""

    parts: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise AssertionParseError("TSEQUENCE requires at least one part")

    def children(self) -> Tuple[Expression, ...]:
        return self.parts

    def describe(self) -> str:
        return "TSEQUENCE(" + ", ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True, repr=False)
class BooleanOr(Expression):
    """Inclusive OR: at least one branch must occur; both occurring is fine.

    Implemented by the analyser as a cross-product of the branch automata
    (section 3.4.2) or, equivalently, by NFA branching.
    """

    branches: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise AssertionParseError("'||' requires at least two branches")

    def children(self) -> Tuple[Expression, ...]:
        return self.branches

    def describe(self) -> str:
        return " || ".join(b.describe() for b in self.branches)


@dataclass(frozen=True, repr=False)
class BooleanXor(Expression):
    """Exclusive OR: exactly one branch may occur.

    Finite-state automata "model regular languages with sequences,
    repetition, and the exclusive-or operator"; XOR is the native FSA
    alternation where taking one branch commits to it.
    """

    branches: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise AssertionParseError("'^' requires at least two branches")

    def children(self) -> Tuple[Expression, ...]:
        return self.branches

    def describe(self) -> str:
        return " ^ ".join(b.describe() for b in self.branches)


# ---------------------------------------------------------------------------
# Modifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Optional_(Expression):
    """``optional(expr)`` — the sub-expression may be skipped entirely."""

    inner: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.inner,)

    def describe(self) -> str:
        return f"optional({self.inner.describe()})"


@dataclass(frozen=True, repr=False)
class AtLeast(Expression):
    """``ATLEAST(n, e1, e2, …)`` — at least ``n`` occurrences, in any order,
    of any of the listed events (figure 8).

    With ``n == 0`` this matches anything and is used purely to *generate
    instrumentation* for introspection — the GNUstep tracing use case.
    """

    minimum: int
    events: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise AssertionParseError("ATLEAST minimum must be >= 0")
        if not self.events:
            raise AssertionParseError("ATLEAST requires at least one event")

    def children(self) -> Tuple[Expression, ...]:
        return self.events

    def describe(self) -> str:
        inner = ", ".join(e.describe() for e in self.events)
        return f"ATLEAST({self.minimum}, {inner})"


@dataclass(frozen=True, repr=False)
class InCallStack(Expression):
    """``incallstack(fn)`` — the assertion site is reached while ``fn``'s
    activation is on the call stack (figure 7's first ``ffs_read``
    alternative).

    Translated as a revocable pair: ``call(fn)`` enables the site,
    ``returnfrom(fn)`` disables it again — so unlike
    ``previously(call(fn))`` the permission does not outlive the
    activation.  (Nested/recursive activations of ``fn`` are not tracked;
    none of the modelled kernel paths recurse.)
    """

    function: str

    def children(self) -> Tuple["Expression", ...]:
        return (
            FunctionCall(self.function, None),
            FunctionReturn(self.function, None, None),
        )

    def describe(self) -> str:
        return f"incallstack({self.function})"


@dataclass(frozen=True, repr=False)
class Strict(Expression):
    """``strict(expr)`` — referenced events that cannot advance the automaton
    are violations rather than being ignored."""

    inner: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.inner,)

    def describe(self) -> str:
        return f"strict({self.inner.describe()})"


@dataclass(frozen=True, repr=False)
class Conditional(Expression):
    """``conditional(expr)`` — the explicit name for the default behaviour:
    events that cannot advance the automaton are ignored."""

    inner: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.inner,)

    def describe(self) -> str:
        return f"conditional({self.inner.describe()})"


# ---------------------------------------------------------------------------
# Timed modifiers (DESIGN §5.9)
# ---------------------------------------------------------------------------
#
# TESLA's published grammar is purely ordinal; these nodes are the timed
# extension (TeSSLa / Dawes & Reger show the same automaton machinery
# extends cleanly with clock guards).  Each wraps ordinary sub-expressions
# and is translated to the same NFA fragments with
# :class:`~repro.core.automaton.ClockGuard` values attached to the
# fragment's transitions, evaluated against the monotonic capture
# timestamp every :class:`~repro.core.events.RuntimeEvent` carries.


@dataclass(frozen=True, repr=False)
class WithinMs(Expression):
    """``within_ms(ms, e1, e2, …)`` — each step of the inner sequence must
    occur within ``ms`` milliseconds of the automaton's previous advance
    (or of bound entry, for the first advance)."""

    ms: float
    parts: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.ms < 0:
            raise AssertionParseError(
                f"within_ms budget must be >= 0 ms, got {self.ms}"
            )
        if not self.parts:
            raise AssertionParseError(
                "within_ms requires at least one inner expression"
            )

    def children(self) -> Tuple[Expression, ...]:
        return self.parts

    def describe(self) -> str:
        inner = ", ".join(p.describe() for p in self.parts)
        return f"within_ms({self.ms:g}, {inner})"


@dataclass(frozen=True, repr=False)
class Deadline(Expression):
    """``deadline(ms, e1, e2, …)`` — the inner sequence must be fully
    discharged within ``ms`` milliseconds of bound entry.

    Unlike :class:`WithinMs` this is an *obligation with an expiry*: an
    automaton instance that reached its assertion site but has not
    discharged the deadlined events when the clock passes
    ``entry + ms`` is a violation even if no further event ever arrives
    (the runtime checks pending timer obligations at every
    synchronization flush)."""

    ms: float
    parts: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.ms < 0:
            raise AssertionParseError(
                f"deadline budget must be >= 0 ms, got {self.ms}"
            )
        if not self.parts:
            raise AssertionParseError(
                "deadline requires at least one inner expression"
            )

    def children(self) -> Tuple[Expression, ...]:
        return self.parts

    def describe(self) -> str:
        inner = ", ".join(p.describe() for p in self.parts)
        return f"deadline({self.ms:g}, {inner})"


@dataclass(frozen=True, repr=False)
class RateAtMost(Expression):
    """``rate_atmost(count, event, per_ms)`` — at most ``count``
    occurrences of ``event`` within any sliding ``per_ms``-millisecond
    window while the automaton is at this point of the sequence.

    An occurrence beyond the budget is an immediate violation (like a
    ``strict`` mismatch, it cannot be diagnosed retroactively), and the
    offending event does not advance the automaton."""

    count: int
    event: Expression
    per_ms: float

    def __post_init__(self) -> None:
        if self.count < 0:
            raise AssertionParseError(
                f"rate_atmost count must be >= 0, got {self.count}"
            )
        if self.per_ms <= 0:
            raise AssertionParseError(
                f"rate_atmost window must be > 0 ms, got {self.per_ms}"
            )

    def children(self) -> Tuple[Expression, ...]:
        return (self.event,)

    def describe(self) -> str:
        return (
            f"rate_atmost({self.count}, {self.event.describe()}, "
            f"{self.per_ms:g}ms)"
        )


# ---------------------------------------------------------------------------
# Assertion containers
# ---------------------------------------------------------------------------


class Context(enum.Enum):
    """Automata contexts (section 3.2)."""

    THREAD = "per-thread"
    GLOBAL = "global"


@dataclass(frozen=True)
class Bound:
    """Temporal bounds within which an automaton may exist (section 3.3).

    ``entry`` starts (init) the automaton's lifetime; ``exit`` finalises
    (cleanup) it.  ``TESLA_WITHIN(fn, …)`` uses ``call(fn)``/
    ``returnfrom(fn)``; the explicit three-argument ``TESLA_ASSERT`` form
    allows arbitrary static expressions.
    """

    entry: Expression
    exit: Expression

    def __post_init__(self) -> None:
        for end, name in ((self.entry, "entry"), (self.exit, "exit")):
            if not isinstance(end, (FunctionCall, FunctionReturn, FieldAssign)):
                raise AssertionParseError(
                    f"bound {name} must be a static event, got {end.describe()}"
                )

    def describe(self) -> str:
        return f"[{self.entry.describe()} .. {self.exit.describe()}]"


@dataclass(frozen=True)
class TemporalAssertion:
    """A complete TESLA assertion: context + bounds + expression.

    ``name`` identifies the assertion (and the automaton class derived from
    it) in manifests, stores and reports.  ``location`` records where in the
    instrumented program the assertion site lives, in ``module:function``
    form.
    """

    name: str
    context: Context
    bound: Bound
    expression: Expression
    location: str = ""
    strict: bool = False
    tags: Tuple[str, ...] = field(default=())

    def describe(self) -> str:
        return (
            f"TESLA_ASSERT({self.context.value}, {self.bound.describe()}, "
            f"{self.expression.describe()})"
        )


def walk(expr: Expression):
    """Yield ``expr`` and every descendant, depth-first."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def referenced_functions(assertion: TemporalAssertion) -> Tuple[str, ...]:
    """All function names whose call/return events the assertion observes,
    including the bound events.  The instrumenter hooks exactly these."""
    names = []
    exprs = [assertion.bound.entry, assertion.bound.exit, assertion.expression]
    for root in exprs:
        for node in walk(root):
            if isinstance(node, (FunctionCall, FunctionReturn)):
                if node.function not in names:
                    names.append(node.function)
    return tuple(names)


def referenced_fields(assertion: TemporalAssertion) -> Tuple[Tuple[str, str], ...]:
    """All ``(struct, field)`` pairs the assertion observes."""
    pairs = []
    exprs = [assertion.bound.entry, assertion.bound.exit, assertion.expression]
    for root in exprs:
        for node in walk(root):
            if isinstance(node, FieldAssign):
                key = (node.struct, node.field_name)
                if key not in pairs:
                    pairs.append(key)
    return tuple(pairs)


def referenced_variables(assertion: TemporalAssertion) -> Tuple[str, ...]:
    """All dynamic variable names the assertion binds, in first-use order."""
    seen = []
    for root in (assertion.bound.entry, assertion.bound.exit, assertion.expression):
        for node in walk(root):
            patterns: Tuple[Pattern, ...] = ()
            if isinstance(node, (FunctionCall, FunctionReturn)):
                patterns = tuple(node.args or ())
                if isinstance(node, FunctionReturn) and node.retval is not None:
                    patterns += (node.retval,)
            elif isinstance(node, FieldAssign):
                patterns = tuple(
                    p for p in (node.target, node.value) if p is not None
                )
            for pattern in patterns:
                for var in pattern.variables:
                    if var not in seen:
                        seen.append(var)
    return tuple(seen)
