"""Finite-state automata derived from TESLA assertions.

An :class:`Automaton` is the analyser's output: a nondeterministic
finite-state machine whose alphabet is a list of :class:`EventSymbol`
values (symbolic program events carrying argument patterns) plus the three
structural transition kinds ``init``, ``cleanup`` and ``assertion-site``.

The representation mirrors figure 9 of the paper: state 0 is the dormant
state, an «init» transition (entry into the temporal bound) creates a live
instance, symbolic-event and assertion-site transitions advance it, and a
«cleanup» transition (exit from the bound) finalises it.  Rather than
materialising the paper's explicit *bypass* cleanup transitions on every
pre-assertion-site state, the runtime treats "cleanup while the assertion
site was never reached" as a silent discard — an equivalent and much
smaller encoding; see :mod:`repro.runtime.update`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import AssertionParseError
from .ast import (
    AssertionSite,
    AssignOp,
    Expression,
    FieldAssign,
    FunctionCall,
    FunctionReturn,
    InstrumentationSide,
)
from .events import EventKind, RuntimeEvent
from .patterns import (
    EMPTY_BINDING,
    NO_MATCH,
    UNBOUND,
    Binding,
    compile_args_matcher,
    compile_pattern,
    match_all,
)

#: A compiled event matcher: ``(event, binding) -> None | new-bindings``.
#: Produced by :meth:`EventSymbol.compile_matcher`; the kind/name guards of
#: the interpreted :meth:`EventSymbol.match` are elided because transition
#: plans only ever route an event to matchers for its own dispatch key.
EventMatcher = Callable[[RuntimeEvent, Binding], Optional[Binding]]


def _match_nothing(event: RuntimeEvent, binding: Binding) -> Binding:
    """Matcher for symbols with no argument constraints at all."""
    return EMPTY_BINDING


class TransitionKind(enum.Enum):
    """The structural role of a transition: bound entry/exit, a symbolic
    event, the assertion site, or a construction-time epsilon."""
    INIT = "init"
    CLEANUP = "cleanup"
    EVENT = "event"
    SITE = "assertion-site"
    EPSILON = "epsilon"

    # Identity hashing (members are singletons); Enum's default re-hashes
    # the member name string on every bound-tracker / dispatch dict probe.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class EventSymbol:
    """One letter of an automaton's alphabet: a symbolic program event.

    ``expr`` is a *concrete event* AST node (function call/return, field
    assignment or assertion site).  ``site_variables`` is only used for
    assertion-site symbols: the dynamic variables whose site-scope values
    the event translator passes in.
    """

    expr: Expression
    site_variables: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(
            self.expr, (FunctionCall, FunctionReturn, FieldAssign, AssertionSite)
        ):
            raise AssertionParseError(
                f"not a concrete event: {self.expr.describe()}"
            )

    @property
    def dispatch_key(self) -> Tuple[EventKind, str]:
        """The (kind, name) pair the runtime indexes hooks by."""
        expr = self.expr
        if isinstance(expr, FunctionCall):
            return (EventKind.CALL, expr.function)
        if isinstance(expr, FunctionReturn):
            return (EventKind.RETURN, expr.function)
        if isinstance(expr, FieldAssign):
            return (EventKind.FIELD_ASSIGN, f"{expr.struct}.{expr.field_name}")
        return (EventKind.ASSERTION_SITE, "")

    def match(self, event: RuntimeEvent, binding: Binding) -> Optional[Binding]:
        """Match a concrete event under ``binding``.

        Returns ``None`` on mismatch, ``{}`` on a match learning nothing, or
        the dict of new variable bindings (which triggers instance cloning).
        """
        expr = self.expr
        if isinstance(expr, FunctionCall):
            if event.kind is not EventKind.CALL or event.name != expr.function:
                return None
            if expr.args is None:
                return {}
            return match_all(expr.args, event.args, binding)
        if isinstance(expr, FunctionReturn):
            if event.kind is not EventKind.RETURN or event.name != expr.function:
                return None
            new: Binding = {}
            if expr.args is not None:
                got = match_all(expr.args, event.args, binding)
                if got is None:
                    return None
                new.update(got)
            if expr.retval is not None:
                scratch = dict(binding)
                scratch.update(new)
                got = expr.retval.match(event.retval, scratch)
                if got is None:
                    return None
                new.update(got)
            return new
        if isinstance(expr, FieldAssign):
            if event.kind is not EventKind.FIELD_ASSIGN:
                return None
            if event.name != f"{expr.struct}.{expr.field_name}":
                return None
            if expr.op is not None and event.op is not expr.op:
                return None
            new = {}
            if expr.target is not None:
                got = expr.target.match(event.target, binding)
                if got is None:
                    return None
                new.update(got)
            if expr.value is not None:
                scratch = dict(binding)
                scratch.update(new)
                got = expr.value.match(event.retval, scratch)
                if got is None:
                    return None
                new.update(got)
            return new
        # Assertion site: match the site's scope values against our
        # variables.  Only variables the site actually supplies constrain
        # the match; each may check or extend the binding.
        if event.kind is not EventKind.ASSERTION_SITE:
            return None
        new = {}
        for var in self.site_variables:
            if var not in event.scope:
                continue
            value = event.scope[var]
            if var in binding:
                bound = binding[var]
                if not (bound is value or bound == value):
                    return None
            else:
                new[var] = value
        return new

    def compile_matcher(self) -> EventMatcher:
        """Compile :meth:`match` into a closure for the transition-plan path.

        The kind/name guards are deliberately elided: plans are built per
        dispatch key, so a compiled matcher is only ever invoked on events
        whose (kind, name) already equal this symbol's.  Everything else —
        argument patterns, return-value patterns, assign-op checks,
        site-scope variable checks — is resolved here once, so the per-event
        work is a chain of comparisons with no isinstance dispatch.
        """
        expr = self.expr
        if isinstance(expr, FunctionCall):
            if expr.args is None:
                return _match_nothing
            args_m = compile_args_matcher(expr.args)

            def match_call(event: RuntimeEvent, binding: Binding, _a=args_m):
                return _a(event.args, binding)

            return match_call
        if isinstance(expr, FunctionReturn):
            args_m = (
                compile_args_matcher(expr.args)
                if expr.args is not None
                else None
            )
            ret_m = (
                compile_pattern(expr.retval)
                if expr.retval is not None
                else None
            )
            if args_m is None and ret_m is None:
                return _match_nothing
            if ret_m is None:

                def match_return_args(
                    event: RuntimeEvent, binding: Binding, _a=args_m
                ):
                    return _a(event.args, binding)

                return match_return_args
            if args_m is None:

                def match_return_ret(
                    event: RuntimeEvent, binding: Binding, _r=ret_m
                ):
                    return _r(event.retval, binding)

                return match_return_ret

            def match_return(
                event: RuntimeEvent, binding: Binding, _a=args_m, _r=ret_m
            ):
                new = _a(event.args, binding)
                if new is NO_MATCH:
                    return NO_MATCH
                if new:
                    scratch = dict(binding)
                    scratch.update(new)
                    got = _r(event.retval, scratch)
                else:
                    got = _r(event.retval, binding)
                if got is NO_MATCH:
                    return NO_MATCH
                if not got:
                    return new
                if not new:
                    return got
                merged = dict(new)
                merged.update(got)
                return merged

            return match_return
        if isinstance(expr, FieldAssign):
            op = expr.op
            target_m = (
                compile_pattern(expr.target)
                if expr.target is not None
                else None
            )
            value_m = (
                compile_pattern(expr.value) if expr.value is not None else None
            )

            def match_field(
                event: RuntimeEvent,
                binding: Binding,
                _op=op,
                _t=target_m,
                _v=value_m,
            ):
                if _op is not None and event.op is not _op:
                    return NO_MATCH
                new = EMPTY_BINDING
                if _t is not None:
                    new = _t(event.target, binding)
                    if new is NO_MATCH:
                        return NO_MATCH
                if _v is not None:
                    if new:
                        scratch = dict(binding)
                        scratch.update(new)
                        got = _v(event.retval, scratch)
                    else:
                        got = _v(event.retval, binding)
                    if got is NO_MATCH:
                        return NO_MATCH
                    if got:
                        if new:
                            merged = dict(new)
                            merged.update(got)
                            return merged
                        return got
                return new

            return match_field
        # Assertion site.
        variables = self.site_variables

        def match_site(
            event: RuntimeEvent, binding: Binding, _vars=variables
        ):
            scope = event.scope
            new: Optional[Binding] = None
            for var in _vars:
                if var not in scope:
                    continue
                value = scope[var]
                bound = binding.get(var, UNBOUND)
                if bound is UNBOUND:
                    if new is None:
                        new = {var: value}
                    else:
                        new[var] = value
                elif not (bound is value or bound == value):
                    return NO_MATCH
            return new if new else EMPTY_BINDING

        return match_site

    def describe(self) -> str:
        return self.expr.describe()


@dataclass(frozen=True)
class ClockGuard:
    """A clock constraint on a transition (DESIGN §5.9).

    ``kind`` selects the reference point the elapsed time is measured
    from: ``"since_entry"`` (the instance's bound-entry timestamp, used by
    ``deadline(...)``), ``"since_prev"`` (the timestamp of the previous
    transition this instance took, used by ``within_ms(...)``), or
    ``"rate"`` (a sliding window: at most ``count`` matching events in any
    ``limit_s`` span, used by ``rate_atmost(...)``).  ``limit_s`` is in
    seconds — the same unit the capture clock stamps events in.
    """

    kind: str
    limit_s: float
    count: int = 0

    def sort_key(self) -> Tuple[str, float, int]:
        return (self.kind, self.limit_s, self.count)

    def describe(self) -> str:
        ms = self.limit_s * 1000.0
        if self.kind == "rate":
            return f"≤{self.count}/{ms:g}ms"
        if self.kind == "since_entry":
            return f"≤{ms:g}ms from entry"
        return f"≤{ms:g}ms"


#: Sort key for a transition's (possibly absent) guard.
_NO_GUARD_KEY = ("", -1.0, -1)


@dataclass(frozen=True)
class Transition:
    src: int
    dst: int
    kind: TransitionKind
    #: Index into :attr:`Automaton.symbols` for EVENT/SITE transitions.
    symbol: Optional[int] = None
    #: Clock constraint the event must satisfy for the transition to be
    #: enabled; ``None`` for ordinary (ordinal) transitions.
    guard: Optional[ClockGuard] = None

    def __post_init__(self) -> None:
        # Transitions are hashed on every ``count_transition`` (once per
        # transition taken); the generated frozen-dataclass hash rebuilds
        # a field tuple each call, so cache it once.  Equality is still
        # field-based, matching the generated hash's equivalence classes.
        object.__setattr__(
            self,
            "_hash",
            hash((self.src, self.dst, self.kind, self.symbol, self.guard)),
        )

    def __hash__(self) -> int:
        return self._hash

    def describe(self, automaton: "Automaton") -> str:
        if self.kind in (TransitionKind.EVENT, TransitionKind.SITE):
            label = automaton.symbols[self.symbol].describe()
        else:
            label = f"«{self.kind.value}»"
        if self.guard is not None:
            label = f"{label} [{self.guard.describe()}]"
        return f"{self.src} --{label}--> {self.dst}"


class Automaton:
    """A translated TESLA assertion, ready for instantiation by the runtime.

    States are integers.  ``start`` is the dormant pre-init state; ``init``
    transitions lead from it to the live entry state.  ``accept`` is the
    single post-cleanup success state.
    """

    def __init__(
        self,
        name: str,
        symbols: List[EventSymbol],
        transitions: Iterable[Transition],
        start: int,
        accept: int,
        n_states: int,
        strict: bool = False,
        description: str = "",
        deadline_s: Optional[float] = None,
    ) -> None:
        self.name = name
        self.symbols = list(symbols)
        self.transitions = list(transitions)
        self.start = start
        self.accept = accept
        self.n_states = n_states
        self.strict = strict
        self.description = description
        #: ``deadline(ms, ...)`` obligation: seconds after bound entry by
        #: which a live, site-touched instance must be able to accept.
        #: ``None`` for untimed assertions (the overwhelmingly common case).
        self.deadline_s = deadline_s
        #: True when any transition carries a clock guard or a deadline is
        #: set.  The runtime's timed machinery (guard filtering, per-event
        #: expiry, timer checks) is gated on this so untimed assertions pay
        #: nothing; codegen refuses timed automata and falls back loudly.
        self.timed = deadline_s is not None or any(
            t.guard is not None for t in self.transitions
        )
        self._outgoing: Dict[int, List[Transition]] = {}
        for t in self.transitions:
            self._outgoing.setdefault(t.src, []).append(t)
        # Hot-path structure, computed once: the runtime consults these on
        # every bound open (init/entry) and close (cleanup) rather than
        # re-deriving them from the transition list.
        self._init_transitions = tuple(
            t for t in self.transitions if t.kind is TransitionKind.INIT
        )
        self._entry_states = frozenset(
            t.dst for t in self._init_transitions
        )
        self._cleanup_states = frozenset(
            t.src for t in self.transitions
            if t.kind is TransitionKind.CLEANUP
        )
        self._site_states = self._compute_site_states()
        self._dispatch_key_set = frozenset(self.dispatch_keys())
        site_vars: Tuple[str, ...] = ()
        for t in self.transitions:
            if t.kind is TransitionKind.SITE:
                site_vars = self.symbols[t.symbol].site_variables
                break
        self._site_variables = site_vars

    # -- structure ---------------------------------------------------------

    def outgoing(self, state: int) -> List[Transition]:
        return self._outgoing.get(state, [])

    @property
    def init_transitions(self) -> Tuple[Transition, ...]:
        return self._init_transitions

    @property
    def entry_states(self) -> FrozenSet[int]:
        """States a fresh instance starts in (targets of «init»)."""
        return self._entry_states

    def _compute_site_states(self) -> FrozenSet[int]:
        """States reachable only *after* an assertion-site transition."""
        post: Set[int] = set()
        frontier = [
            t.dst for t in self.transitions if t.kind is TransitionKind.SITE
        ]
        while frontier:
            state = frontier.pop()
            if state in post:
                continue
            post.add(state)
            for t in self.outgoing(state):
                frontier.append(t.dst)
        return frozenset(post)

    @property
    def post_site_states(self) -> FrozenSet[int]:
        return self._site_states

    @property
    def site_variables(self) -> Tuple[str, ...]:
        """Site-scope variables of the assertion-site symbol (cached; the
        runtime consults this on every already-satisfied site check)."""
        return self._site_variables

    def cleanup_enabled(self, states: FrozenSet[int]) -> bool:
        """Whether an instance in ``states`` accepts at the cleanup event."""
        return not self._cleanup_states.isdisjoint(states)

    # -- dispatch indexing ---------------------------------------------------

    def dispatch_keys(self) -> Set[Tuple[EventKind, str]]:
        """Every (kind, name) pair this automaton must observe, including
        the init/cleanup bound events."""
        keys: Set[Tuple[EventKind, str]] = set()
        for t in self.transitions:
            if t.symbol is not None:
                kind, name = self.symbols[t.symbol].dispatch_key
                if kind is EventKind.ASSERTION_SITE:
                    keys.add((kind, self.name))
                else:
                    keys.add((kind, name))
        return keys

    # -- instance stepping (used by the runtime) ----------------------------

    def enabled(
        self, states: FrozenSet[int], event: RuntimeEvent, binding: Binding
    ) -> List[Tuple[Transition, Binding]]:
        """All transitions enabled from ``states`` on ``event``.

        Returns (transition, new-bindings) pairs; an empty new-binding dict
        means the instance can step in place, a non-empty one means a clone
        must take the step.
        """
        result: List[Tuple[Transition, Binding]] = []
        for state in states:
            for t in self.outgoing(state):
                if t.kind not in (TransitionKind.EVENT, TransitionKind.SITE):
                    continue
                symbol = self.symbols[t.symbol]
                if t.kind is TransitionKind.SITE:
                    # Site transitions are dispatched by assertion name.
                    if (
                        event.kind is not EventKind.ASSERTION_SITE
                        or event.name != self.name
                    ):
                        continue
                new = symbol.match(event, binding)
                if new is None:
                    continue
                result.append((t, new))
        return result

    def references(self, event: RuntimeEvent) -> bool:
        """Whether ``event``'s dispatch key appears in the alphabet at all
        (used by ``strict`` mode and by the dispatch index)."""
        if event.kind is EventKind.ASSERTION_SITE:
            return event.name == self.name
        return (event.kind, event.name) in self._dispatch_key_set

    # -- introspection -------------------------------------------------------

    def describe(self) -> str:
        lines = [f"automaton {self.name} ({self.n_states} states)"]
        for t in sorted(self.transitions, key=lambda t: (t.src, t.dst)):
            lines.append("  " + t.describe(self))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<Automaton {self.name}: {self.n_states} states, {len(self.transitions)} transitions>"


# ---------------------------------------------------------------------------
# NFA fragments: the builder used by the translator
# ---------------------------------------------------------------------------


@dataclass
class Fragment:
    """A partially built NFA with a single entry and single exit state.

    Fragments use local state numbering and may contain epsilon
    transitions; :func:`assemble` renumbers, eliminates epsilons and
    produces the final :class:`Automaton`.
    """

    entry: int
    exit: int
    transitions: List[Transition] = field(default_factory=list)
    n_states: int = 0


class FragmentBuilder:
    """Allocates states and symbols while the translator descends the AST."""

    def __init__(self) -> None:
        self.symbols: List[EventSymbol] = []
        self._symbol_index: Dict[EventSymbol, int] = {}
        self.n_states = 0

    def state(self) -> int:
        s = self.n_states
        self.n_states += 1
        return s

    def symbol(self, sym: EventSymbol) -> int:
        if sym not in self._symbol_index:
            self._symbol_index[sym] = len(self.symbols)
            self.symbols.append(sym)
        return self._symbol_index[sym]

    # -- fragment constructors ------------------------------------------------

    def event(self, sym: EventSymbol, kind: TransitionKind = TransitionKind.EVENT) -> Fragment:
        a, b = self.state(), self.state()
        idx = self.symbol(sym)
        return Fragment(a, b, [Transition(a, b, kind, idx)])

    def epsilon(self) -> Fragment:
        a, b = self.state(), self.state()
        return Fragment(a, b, [Transition(a, b, TransitionKind.EPSILON)])

    def concat(self, parts: List[Fragment]) -> Fragment:
        if not parts:
            return self.epsilon()
        transitions: List[Transition] = list(parts[0].transitions)
        for prev, nxt in zip(parts, parts[1:]):
            transitions.append(
                Transition(prev.exit, nxt.entry, TransitionKind.EPSILON)
            )
            transitions.extend(nxt.transitions)
        return Fragment(parts[0].entry, parts[-1].exit, transitions)

    def alternate(self, parts: List[Fragment]) -> Fragment:
        """Branching alternation (used for XOR and as the native encoding of
        OR once the inclusive semantics are expanded by the translator)."""
        entry, exit_ = self.state(), self.state()
        transitions: List[Transition] = []
        for part in parts:
            transitions.append(
                Transition(entry, part.entry, TransitionKind.EPSILON)
            )
            transitions.extend(part.transitions)
            transitions.append(
                Transition(part.exit, exit_, TransitionKind.EPSILON)
            )
        return Fragment(entry, exit_, transitions)

    def optional(self, part: Fragment) -> Fragment:
        entry, exit_ = self.state(), self.state()
        transitions = [
            Transition(entry, part.entry, TransitionKind.EPSILON),
            Transition(entry, exit_, TransitionKind.EPSILON),
            Transition(part.exit, exit_, TransitionKind.EPSILON),
        ]
        transitions.extend(part.transitions)
        return Fragment(entry, exit_, transitions)

    def at_least(self, minimum: int, syms: List[EventSymbol]) -> Fragment:
        """``ATLEAST(n, e…)``: a chain of ``n`` stages each consumed by any
        of the events, then a stage self-looping on all of them."""
        indices = [self.symbol(s) for s in syms]
        states = [self.state() for _ in range(minimum + 1)]
        transitions: List[Transition] = []
        for i in range(minimum):
            for idx in indices:
                transitions.append(
                    Transition(states[i], states[i + 1], TransitionKind.EVENT, idx)
                )
        last = states[-1]
        for idx in indices:
            transitions.append(Transition(last, last, TransitionKind.EVENT, idx))
        return Fragment(states[0], last, transitions)


def assemble(
    name: str,
    builder: FragmentBuilder,
    body: Fragment,
    init_symbol: EventSymbol,
    cleanup_symbol: EventSymbol,
    strict: bool = False,
    description: str = "",
    deadline_s: Optional[float] = None,
) -> Automaton:
    """Wrap a body fragment with init/cleanup bound transitions, eliminate
    epsilon transitions and renumber states reachable from start."""
    start = builder.state()
    accept = builder.state()
    init_idx = builder.symbol(init_symbol)
    cleanup_idx = builder.symbol(cleanup_symbol)
    transitions = list(body.transitions)
    transitions.append(
        Transition(start, body.entry, TransitionKind.INIT, init_idx)
    )
    transitions.append(
        Transition(body.exit, accept, TransitionKind.CLEANUP, cleanup_idx)
    )
    return _eliminate_epsilon(
        name, builder.symbols, transitions, start, accept, builder.n_states,
        strict, description, deadline_s,
    )


def _eliminate_epsilon(
    name: str,
    symbols: List[EventSymbol],
    transitions: List[Transition],
    start: int,
    accept: int,
    n_states: int,
    strict: bool,
    description: str,
    deadline_s: Optional[float] = None,
) -> Automaton:
    """Standard epsilon elimination followed by dead-state pruning.

    For every state ``s`` and non-epsilon transition ``t`` leaving a state
    in epsilon-closure(s), add ``s --t--> t.dst``.  Then keep states
    reachable from ``start`` via non-epsilon transitions.
    """
    eps: Dict[int, Set[int]] = {s: {s} for s in range(n_states)}
    adj: Dict[int, Set[int]] = {}
    for t in transitions:
        if t.kind is TransitionKind.EPSILON:
            adj.setdefault(t.src, set()).add(t.dst)
    for s in range(n_states):
        frontier = [s]
        closure = eps[s]
        while frontier:
            cur = frontier.pop()
            for nxt in adj.get(cur, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    frontier.append(nxt)

    concrete: Dict[int, List[Transition]] = {}
    for t in transitions:
        if t.kind is not TransitionKind.EPSILON:
            concrete.setdefault(t.src, []).append(t)

    lifted: Set[Transition] = set()
    for s in range(n_states):
        for mid in eps[s]:
            for t in concrete.get(mid, ()):
                # Standard single-sided lifting: transitions reachable via
                # epsilon from ``s`` leave from ``s`` and land on ``t.dst``
                # exactly — targets carry their own epsilon successors'
                # transitions via the same lifting.  Landing on every
                # epsilon *successor* of ``t.dst`` as well would duplicate
                # states that, under the runtime's move-or-stay stepping,
                # could never be revoked (breaking ``incallstack``).
                lifted.add(Transition(s, t.dst, t.kind, t.symbol, t.guard))

    # Reachability from start over lifted transitions.
    out: Dict[int, List[Transition]] = {}
    for t in lifted:
        out.setdefault(t.src, []).append(t)
    reachable: Set[int] = set()
    frontier = [start]
    while frontier:
        s = frontier.pop()
        if s in reachable:
            continue
        reachable.add(s)
        for t in out.get(s, ()):
            frontier.append(t.dst)

    keep = [t for t in lifted if t.src in reachable and t.dst in reachable]
    keep, reachable, start, accept = _merge_equivalent(
        keep, reachable, start, accept
    )
    # Renumber: start = 0, then ascending discovery order, accept last.
    order = sorted(reachable)
    if start in order:
        order.remove(start)
    order.insert(0, start)
    if accept in order:
        order.remove(accept)
        order.append(accept)
    renumber = {old: new for new, old in enumerate(order)}
    final = [
        Transition(renumber[t.src], renumber[t.dst], t.kind, t.symbol, t.guard)
        for t in keep
    ]
    # Deduplicate after renumbering.
    final = sorted(
        set(final),
        key=lambda t: (
            t.src,
            t.dst,
            t.kind.value,
            t.symbol if t.symbol is not None else -1,
            t.guard.sort_key() if t.guard is not None else _NO_GUARD_KEY,
        ),
    )
    return Automaton(
        name=name,
        symbols=symbols,
        transitions=final,
        start=renumber[start],
        accept=renumber.get(accept, len(order) - 1),
        n_states=len(order),
        strict=strict,
        description=description,
        deadline_s=deadline_s,
    )


def _merge_equivalent(
    transitions: List[Transition],
    states: Set[int],
    start: int,
    accept: int,
) -> Tuple[List[Transition], Set[int], int, int]:
    """Collapse states with identical behaviour.

    Epsilon elimination routinely leaves several states with exactly the
    same outgoing transitions (the "NFA:1,3" duplicates); merging them by
    repeated signature-partitioning (outgoing set + accept flag) keeps
    automata small and the figure 9 graphs readable.  This is a forward
    bisimulation merge, which preserves the recognised language.
    """
    while True:
        outgoing: Dict[int, FrozenSet[Tuple[Any, ...]]] = {
            s: frozenset() for s in states
        }
        grouped: Dict[int, Set[Tuple[Any, ...]]] = {}
        for t in transitions:
            grouped.setdefault(t.src, set()).add(
                (t.kind.value, t.symbol, t.dst, t.guard)
            )
        for s, out in grouped.items():
            outgoing[s] = frozenset(out)
        representative: Dict[int, int] = {}
        by_signature: Dict[Tuple[bool, FrozenSet], int] = {}
        for s in sorted(states):
            signature = (s == accept, outgoing[s])
            if signature in by_signature:
                representative[s] = by_signature[signature]
            else:
                by_signature[signature] = s
                representative[s] = s
        if all(rep == s for s, rep in representative.items()):
            return transitions, states, start, accept
        transitions = list(
            {
                Transition(
                    representative[t.src],
                    representative[t.dst],
                    t.kind,
                    t.symbol,
                    t.guard,
                )
                for t in transitions
            }
        )
        states = set(representative.values())
        start = representative[start]
        accept = representative[accept]
