"""``.tesla`` manifests: serialised assertions, per unit and combined.

The original tool stores parsed automata "on disk in a file with a .tesla
extension and formatted using Google Protocol Buffers", then combines the
per-file manifests "into a larger file describing all parts of the program
that may need instrumentation" (section 4.1).  The combination step is what
makes incremental rebuilds expensive (figure 10): an assertion in one unit
can demand instrumentation in any other unit, so a change to one ``.tesla``
file re-instruments everything.

We keep the architecture but serialise to JSON (the format is incidental;
the one-to-many dependency structure is not).  Manifests round-trip the full
assertion AST so automata can be re-derived bit-identically on load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ManifestError
from .ast import (
    AssertionSite,
    InCallStack,
    AssignOp,
    AtLeast,
    BooleanOr,
    BooleanXor,
    Bound,
    Conditional,
    Context,
    Deadline,
    Expression,
    FieldAssign,
    FunctionCall,
    FunctionReturn,
    InstrumentationSide,
    Optional_,
    RateAtMost,
    Sequence,
    Strict,
    TemporalAssertion,
    WithinMs,
    referenced_fields,
    referenced_functions,
)
from .patterns import AddressOf, Any_, Bitmask, Const, Flags, Pattern, Var

MANIFEST_VERSION = 1


# ---------------------------------------------------------------------------
# Pattern (de)serialisation
# ---------------------------------------------------------------------------


def pattern_to_json(pattern: Pattern) -> Dict[str, Any]:
    """Serialise one argument pattern to its manifest form."""
    if isinstance(pattern, Any_):
        return {"p": "any", "type": pattern.type_name}
    if isinstance(pattern, Const):
        return {"p": "const", "value": pattern.value}
    if isinstance(pattern, Var):
        return {"p": "var", "name": pattern.name}
    if isinstance(pattern, Flags):
        return {"p": "flags", "flags": pattern.flags}
    if isinstance(pattern, Bitmask):
        return {"p": "bitmask", "mask": pattern.mask}
    if isinstance(pattern, AddressOf):
        return {"p": "addressof", "inner": pattern_to_json(pattern.inner)}
    raise ManifestError(f"unserialisable pattern {pattern!r}")


def pattern_from_json(data: Dict[str, Any]) -> Pattern:
    """Rebuild an argument pattern from its manifest form."""
    kind = data.get("p")
    if kind == "any":
        return Any_(data["type"])
    if kind == "const":
        return Const(data["value"])
    if kind == "var":
        return Var(data["name"])
    if kind == "flags":
        return Flags(data["flags"])
    if kind == "bitmask":
        return Bitmask(data["mask"])
    if kind == "addressof":
        return AddressOf(pattern_from_json(data["inner"]))
    raise ManifestError(f"unknown pattern kind {kind!r}")


def _patterns_to_json(patterns: Optional[Tuple[Pattern, ...]]) -> Optional[List[Any]]:
    if patterns is None:
        return None
    return [pattern_to_json(p) for p in patterns]


def _patterns_from_json(data: Optional[List[Any]]) -> Optional[Tuple[Pattern, ...]]:
    if data is None:
        return None
    return tuple(pattern_from_json(p) for p in data)


# ---------------------------------------------------------------------------
# Expression (de)serialisation
# ---------------------------------------------------------------------------


def expression_to_json(expr: Expression) -> Dict[str, Any]:
    """Serialise one expression node (recursively) for a manifest."""
    if isinstance(expr, FunctionCall):
        return {
            "e": "call",
            "function": expr.function,
            "args": _patterns_to_json(expr.args),
            "side": expr.side.value,
        }
    if isinstance(expr, FunctionReturn):
        return {
            "e": "return",
            "function": expr.function,
            "args": _patterns_to_json(expr.args),
            "retval": None if expr.retval is None else pattern_to_json(expr.retval),
            "side": expr.side.value,
        }
    if isinstance(expr, FieldAssign):
        return {
            "e": "field",
            "struct": expr.struct,
            "field": expr.field_name,
            "op": expr.op.value,
            "target": None if expr.target is None else pattern_to_json(expr.target),
            "value": None if expr.value is None else pattern_to_json(expr.value),
        }
    if isinstance(expr, InCallStack):
        return {"e": "incallstack", "function": expr.function}
    if isinstance(expr, AssertionSite):
        return {"e": "site"}
    if isinstance(expr, Sequence):
        return {"e": "seq", "parts": [expression_to_json(p) for p in expr.parts]}
    if isinstance(expr, BooleanOr):
        return {"e": "or", "branches": [expression_to_json(b) for b in expr.branches]}
    if isinstance(expr, BooleanXor):
        return {"e": "xor", "branches": [expression_to_json(b) for b in expr.branches]}
    if isinstance(expr, Optional_):
        return {"e": "optional", "inner": expression_to_json(expr.inner)}
    if isinstance(expr, AtLeast):
        return {
            "e": "atleast",
            "minimum": expr.minimum,
            "events": [expression_to_json(ev) for ev in expr.events],
        }
    if isinstance(expr, Strict):
        return {"e": "strict", "inner": expression_to_json(expr.inner)}
    if isinstance(expr, Conditional):
        return {"e": "conditional", "inner": expression_to_json(expr.inner)}
    if isinstance(expr, WithinMs):
        return {
            "e": "within_ms",
            "ms": expr.ms,
            "parts": [expression_to_json(p) for p in expr.parts],
        }
    if isinstance(expr, Deadline):
        return {
            "e": "deadline",
            "ms": expr.ms,
            "parts": [expression_to_json(p) for p in expr.parts],
        }
    if isinstance(expr, RateAtMost):
        return {
            "e": "rate_atmost",
            "count": expr.count,
            "event": expression_to_json(expr.event),
            "per_ms": expr.per_ms,
        }
    raise ManifestError(f"unserialisable expression {expr!r}")


def expression_from_json(data: Dict[str, Any]) -> Expression:
    """Rebuild an expression node (recursively) from a manifest."""
    kind = data.get("e")
    if kind == "call":
        return FunctionCall(
            function=data["function"],
            args=_patterns_from_json(data.get("args")),
            side=InstrumentationSide(data.get("side", "callee")),
        )
    if kind == "return":
        retval = data.get("retval")
        return FunctionReturn(
            function=data["function"],
            args=_patterns_from_json(data.get("args")),
            retval=None if retval is None else pattern_from_json(retval),
            side=InstrumentationSide(data.get("side", "callee")),
        )
    if kind == "field":
        target = data.get("target")
        value = data.get("value")
        return FieldAssign(
            struct=data["struct"],
            field_name=data["field"],
            op=AssignOp(data.get("op", "=")),
            target=None if target is None else pattern_from_json(target),
            value=None if value is None else pattern_from_json(value),
        )
    if kind == "incallstack":
        return InCallStack(data["function"])
    if kind == "site":
        return AssertionSite()
    if kind == "seq":
        return Sequence(tuple(expression_from_json(p) for p in data["parts"]))
    if kind == "or":
        return BooleanOr(tuple(expression_from_json(b) for b in data["branches"]))
    if kind == "xor":
        return BooleanXor(tuple(expression_from_json(b) for b in data["branches"]))
    if kind == "optional":
        return Optional_(expression_from_json(data["inner"]))
    if kind == "atleast":
        return AtLeast(
            data["minimum"],
            tuple(expression_from_json(ev) for ev in data["events"]),
        )
    if kind == "strict":
        return Strict(expression_from_json(data["inner"]))
    if kind == "conditional":
        return Conditional(expression_from_json(data["inner"]))
    if kind == "within_ms":
        return WithinMs(
            data["ms"], tuple(expression_from_json(p) for p in data["parts"])
        )
    if kind == "deadline":
        return Deadline(
            data["ms"], tuple(expression_from_json(p) for p in data["parts"])
        )
    if kind == "rate_atmost":
        return RateAtMost(
            data["count"], expression_from_json(data["event"]), data["per_ms"]
        )
    raise ManifestError(f"unknown expression kind {kind!r}")


def assertion_to_json(assertion: TemporalAssertion) -> Dict[str, Any]:
    """Serialise a complete assertion for a ``.tesla`` manifest."""
    return {
        "name": assertion.name,
        "context": assertion.context.value,
        "entry": expression_to_json(assertion.bound.entry),
        "exit": expression_to_json(assertion.bound.exit),
        "expression": expression_to_json(assertion.expression),
        "location": assertion.location,
        "strict": assertion.strict,
        "tags": list(assertion.tags),
    }


def assertion_from_json(data: Dict[str, Any]) -> TemporalAssertion:
    """Rebuild a complete assertion from its manifest form."""
    return TemporalAssertion(
        name=data["name"],
        context=Context(data["context"]),
        bound=Bound(
            entry=expression_from_json(data["entry"]),
            exit=expression_from_json(data["exit"]),
        ),
        expression=expression_from_json(data["expression"]),
        location=data.get("location", ""),
        strict=data.get("strict", False),
        tags=tuple(data.get("tags", ())),
    )


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------


@dataclass
class UnitManifest:
    """The ``.tesla`` output of analysing one compilation unit."""

    unit: str
    assertions: List[TemporalAssertion] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "unit": self.unit,
            "assertions": [assertion_to_json(a) for a in self.assertions],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "UnitManifest":
        if data.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"manifest version {data.get('version')!r} != {MANIFEST_VERSION}"
            )
        return cls(
            unit=data["unit"],
            assertions=[assertion_from_json(a) for a in data.get("assertions", [])],
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=1, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "UnitManifest":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
        return cls.from_json(data)


@dataclass
class ProgramManifest:
    """All units' assertions combined — the whole-program ``.tesla`` file.

    :meth:`instrumentation_targets` exposes the one-to-many structure: any
    unit's assertion may require hooks on functions defined anywhere, which
    is why a change to one unit's assertions dirties every unit's
    instrumented output (the figure 10 incremental-rebuild cost).
    """

    units: List[UnitManifest] = field(default_factory=list)

    @property
    def assertions(self) -> List[TemporalAssertion]:
        merged: List[TemporalAssertion] = []
        seen: Dict[str, str] = {}
        for unit in self.units:
            for assertion in unit.assertions:
                if assertion.name in seen:
                    raise ManifestError(
                        f"assertion {assertion.name!r} declared in both "
                        f"{seen[assertion.name]!r} and {unit.unit!r}"
                    )
                seen[assertion.name] = unit.unit
                merged.append(assertion)
        return merged

    def instrumentation_targets(self) -> Dict[str, List[str]]:
        """Map of instrumented function name → assertion names requiring it."""
        targets: Dict[str, List[str]] = {}
        for assertion in self.assertions:
            for fn_name in referenced_functions(assertion):
                targets.setdefault(fn_name, []).append(assertion.name)
        return targets

    def field_targets(self) -> Dict[Tuple[str, str], List[str]]:
        """Map of (struct, field) → assertion names requiring the hook."""
        targets: Dict[Tuple[str, str], List[str]] = {}
        for assertion in self.assertions:
            for pair in referenced_fields(assertion):
                targets.setdefault(pair, []).append(assertion.name)
        return targets

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "units": [u.to_json() for u in self.units],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ProgramManifest":
        return cls(units=[UnitManifest.from_json(u) for u in data.get("units", [])])

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=1, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProgramManifest":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
        return cls.from_json(data)


def combine(units: List[UnitManifest]) -> ProgramManifest:
    """Combine per-unit manifests into the program manifest.

    Name collisions across units are an error, mirroring the analyser's
    refusal to merge conflicting automaton definitions.
    """
    manifest = ProgramManifest(units=list(units))
    manifest.assertions  # noqa: B018 - force the collision check
    return manifest
