"""The user-facing assertion language.

These combinators mirror the high-level TESLA macros of figure 5.  Where C
TESLA writes::

    TESLA_WITHIN(enclosing_fn, previously(
        security_check(ANY(ptr), o, op) == 0));

this reproduction writes::

    tesla_within(
        "enclosing_fn",
        previously(fn("security_check", ANY("ptr"), var("o"), var("op")) == 0),
    )

``fn(...)`` builds a *function expression*; comparing it with ``== value``
yields the grammar's equality pattern (a return event constrained on both
arguments and return value), exactly as ``fnExpr '==' val``.

Just as the paper's macros expand to reserved ``__tesla_*`` symbols, these
helpers only construct AST nodes from :mod:`repro.core.ast`; programmers who
need different surface syntax can target the AST directly.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Optional, Tuple, Union

from ..errors import AssertionParseError
from .ast import (
    AssertionSite,
    InCallStack,
    AssignOp,
    AtLeast,
    BooleanOr,
    BooleanXor,
    Bound,
    Context,
    Deadline,
    Expression,
    FieldAssign,
    FunctionCall,
    FunctionReturn,
    InstrumentationSide,
    Optional_,
    RateAtMost,
    Sequence,
    Strict,
    TemporalAssertion,
    WithinMs,
    walk,
)
from .patterns import (
    AddressOf,
    Any_,
    Bitmask,
    Const,
    Flags,
    Pattern,
    Ref,
    Var,
    coerce_pattern,
)

__all__ = [
    "ANY",
    "var",
    "flags",
    "bitmask",
    "addr",
    "fn",
    "call",
    "returnfrom",
    "returned",
    "field_assign",
    "field_increment",
    "assertion_site",
    "tsequence",
    "previously",
    "eventually",
    "either",
    "one_of",
    "optionally",
    "atleast",
    "incallstack",
    "strictly",
    "within_ms",
    "deadline",
    "rate_atmost",
    "tesla_within",
    "tesla_assert",
    "tesla_global",
    "tesla_perthread",
    "caller_side",
]


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


def ANY(type_name: str = "any") -> Any_:
    """Wildcard argument: ``ANY(ptr)``."""
    return Any_(type_name)


def var(name: str) -> Var:
    """A dynamic variable from the assertion's scope."""
    return Var(name)


def flags(value: int) -> Flags:
    """Minimal bitfield: every bit of ``value`` must be set."""
    return Flags(value)


def bitmask(value: int) -> Bitmask:
    """Maximal bitfield: only bits of ``value`` may be set."""
    return Bitmask(value)


def addr(inner: Union[Pattern, Any]) -> AddressOf:
    """C address-of: match the contents of a :class:`~.patterns.Ref`."""
    return AddressOf(coerce_pattern(inner))


# ---------------------------------------------------------------------------
# Function expressions
# ---------------------------------------------------------------------------


class FnExpr:
    """A function-with-arguments expression awaiting ``== value``.

    Used bare inside :func:`call` (a call event) or compared with ``==``
    (a return event whose value must match).
    """

    def __init__(
        self,
        name: str,
        args: Tuple[Pattern, ...],
        side: InstrumentationSide = InstrumentationSide.CALLEE,
    ) -> None:
        self.name = name
        self.args = args
        self.side = side

    def __eq__(self, value: Any) -> FunctionReturn:  # type: ignore[override]
        return FunctionReturn(
            function=self.name,
            args=self.args,
            retval=coerce_pattern(value),
            side=self.side,
        )

    def __ne__(self, value: Any):  # type: ignore[override]
        raise AssertionParseError(
            "TESLA supports fn(...) == value, not != (negation is not a "
            "regular-language event)"
        )

    __hash__ = None  # type: ignore[assignment]


def fn(name: str, *args: Any, side: InstrumentationSide = InstrumentationSide.CALLEE) -> FnExpr:
    """Build a function expression: ``fn("check", ANY("ptr"), var("so"))``."""
    return FnExpr(name, tuple(coerce_pattern(a) for a in args), side)


def caller_side(expr: Union[FnExpr, FunctionCall, FunctionReturn]):
    """Mark a function event for caller-side instrumentation — used when the
    callee "cannot be recompiled" (section 4.2)."""
    if isinstance(expr, FnExpr):
        return FnExpr(expr.name, expr.args, InstrumentationSide.CALLER)
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.function, expr.args, InstrumentationSide.CALLER)
    if isinstance(expr, FunctionReturn):
        return FunctionReturn(
            expr.function, expr.args, expr.retval, InstrumentationSide.CALLER
        )
    raise AssertionParseError(f"cannot mark {expr!r} caller-side")


def call(target: Union[str, FnExpr]) -> FunctionCall:
    """``call(fn_name)`` or ``call(fn("name", args...))``."""
    if isinstance(target, str):
        return FunctionCall(function=target, args=None)
    return FunctionCall(function=target.name, args=target.args, side=target.side)


def returnfrom(target: Union[str, FnExpr]) -> FunctionReturn:
    """``returnfrom(fn_name)`` — any return from the function."""
    if isinstance(target, str):
        return FunctionReturn(function=target, args=None, retval=None)
    return FunctionReturn(
        function=target.name, args=target.args, retval=None, side=target.side
    )


def returned(name: str, value: Any) -> FunctionReturn:
    """A return event constrained on value but not arguments.

    ``returned("check", 0)`` matches any call of ``check`` that returned 0,
    whatever its arguments — the shape to use when the assertion does not
    need to bind argument values (avoids coupling to the exact arity the
    caller happened to use).
    """
    return FunctionReturn(function=name, args=None, retval=coerce_pattern(value))


# ---------------------------------------------------------------------------
# Field assignment events
# ---------------------------------------------------------------------------


def field_assign(
    struct: str,
    field_name: str,
    value: Any = None,
    target: Any = None,
    op: AssignOp = AssignOp.SET,
) -> FieldAssign:
    """Assignment to a structure field: ``s.foo = NEXT_STATE``.

    ``target`` constrains which structure instance (pass ``var("s")`` to tie
    the automaton instance to one object); ``value`` the assigned value.
    """
    return FieldAssign(
        struct=struct,
        field_name=field_name,
        op=op,
        target=None if target is None else coerce_pattern(target),
        value=None if value is None else coerce_pattern(value),
    )


def field_increment(struct: str, field_name: str, target: Any = None) -> FieldAssign:
    """Compound increment: ``s.foo++`` / ``s.foo += 1``."""
    return FieldAssign(
        struct=struct,
        field_name=field_name,
        op=AssignOp.INCREMENT,
        target=None if target is None else coerce_pattern(target),
        value=None,
    )


# ---------------------------------------------------------------------------
# Operators and modifiers
# ---------------------------------------------------------------------------


def assertion_site() -> AssertionSite:
    """Explicit ``TESLA_ASSERTION_SITE``."""
    return AssertionSite()


def _as_expr(e: Any) -> Expression:
    if isinstance(e, Expression):
        return e
    if isinstance(e, FnExpr):
        # A bare fn(...) in sequence position means "this call happens":
        # observed at return so argument values are complete, matching the
        # paper's called(...) usage in figure 7.
        return FunctionReturn(function=e.name, args=e.args, retval=None, side=e.side)
    raise AssertionParseError(f"not a TESLA expression: {e!r}")


def tsequence(*parts: Any) -> Sequence:
    """``TSEQUENCE(e1, e2, …)`` — ordered occurrence."""
    return Sequence(tuple(_as_expr(p) for p in parts))


def previously(*parts: Any) -> Sequence:
    """``previously(x)`` expands to ``[x, TESLA_ASSERTION_SITE]``."""
    return Sequence(tuple(_as_expr(p) for p in parts) + (AssertionSite(),))


def eventually(*parts: Any) -> Sequence:
    """``eventually(x)`` expands to ``[TESLA_ASSERTION_SITE, x]``."""
    return Sequence((AssertionSite(),) + tuple(_as_expr(p) for p in parts))


def either(*branches: Any) -> BooleanOr:
    """Inclusive OR (``||``): at least one branch occurs; both is fine."""
    return BooleanOr(tuple(_as_expr(b) for b in branches))


def one_of(*branches: Any) -> BooleanXor:
    """Exclusive OR (``^``): exactly one branch occurs."""
    return BooleanXor(tuple(_as_expr(b) for b in branches))


def optionally(part: Any) -> Optional_:
    """``optional(expr)``."""
    return Optional_(_as_expr(part))


def atleast(minimum: int, *events: Any) -> AtLeast:
    """``ATLEAST(n, e…)`` (figure 8) — at least ``n`` of the listed events,
    in any order.  ``n == 0`` exists purely to drive instrumentation."""
    return AtLeast(minimum, tuple(_as_expr(e) for e in events))


def incallstack(function: str) -> InCallStack:
    """``incallstack(fn)``: the site executes inside ``fn``'s activation."""
    return InCallStack(function)


def strictly(part: Any) -> Strict:
    """``strict(expr)`` — unconsumable referenced events are violations."""
    return Strict(_as_expr(part))


# ---------------------------------------------------------------------------
# Timed combinators (DESIGN §5.9)
# ---------------------------------------------------------------------------


def within_ms(ms: float, *parts: Any) -> WithinMs:
    """``within_ms(ms, e…)`` — each step of the inner sequence within
    ``ms`` milliseconds of the automaton's previous advance.

    The GUI redraw budget of figure 14b, first class::

        within_ms(54, fn("redraw_view", var("view")) == 0)
    """
    return WithinMs(float(ms), tuple(_as_expr(p) for p in parts))


def deadline(ms: float, *parts: Any) -> Deadline:
    """``deadline(ms, e…)`` — the inner sequence fully discharged within
    ``ms`` milliseconds of bound entry; expiry is itself a violation,
    reported at the next synchronization flush even with no successor
    event."""
    return Deadline(float(ms), tuple(_as_expr(p) for p in parts))


def rate_atmost(count: int, event: Any, per_ms: float) -> RateAtMost:
    """``rate_atmost(n, event, per_ms)`` — at most ``n`` occurrences of
    ``event`` in any sliding ``per_ms``-millisecond window."""
    return RateAtMost(int(count), _as_expr(event), float(per_ms))


# ---------------------------------------------------------------------------
# Assertion containers
# ---------------------------------------------------------------------------

_counter = itertools.count(1)


def _auto_name(bound: Bound, expression: Expression) -> str:
    digest = hashlib.sha1(
        (bound.describe() + "|" + expression.describe()).encode()
    ).hexdigest()[:10]
    return f"tesla_{digest}"


def _strip_strictness(expression: Expression) -> Tuple[Expression, bool]:
    strict = False
    from .ast import Conditional

    while isinstance(expression, (Strict, Conditional)):
        strict = isinstance(expression, Strict)
        expression = expression.inner
    return expression, strict


def tesla_assert(
    context: Context,
    entry: Any,
    exit: Any,
    expression: Any,
    name: Optional[str] = None,
    location: str = "",
    tags: Tuple[str, ...] = (),
) -> TemporalAssertion:
    """The explicit three-part form: ``TESLA_ASSERT(context, start, end, expr)``."""
    entry_e = _as_expr(entry)
    exit_e = _as_expr(exit)
    expr, strict = _strip_strictness(_as_expr(expression))
    sites = sum(1 for node in walk(expr) if isinstance(node, AssertionSite))
    if sites == 0:
        # An assertion with no explicit site is anchored at its own site,
        # after the expression — the `previously` reading.
        expr = Sequence((expr, AssertionSite()))
    elif sites > 1:
        raise AssertionParseError(
            f"assertion has {sites} assertion sites; exactly one is allowed"
        )
    bound = Bound(entry=entry_e, exit=exit_e)
    return TemporalAssertion(
        name=name or _auto_name(bound, expr),
        context=context,
        bound=bound,
        expression=expr,
        location=location,
        strict=strict,
        tags=tuple(tags),
    )


def tesla_within(
    function: str,
    expression: Any,
    context: Context = Context.THREAD,
    name: Optional[str] = None,
    location: str = "",
    tags: Tuple[str, ...] = (),
) -> TemporalAssertion:
    """``TESLA_WITHIN(fn, expr)``: bounds are ``call(fn)``/``returnfrom(fn)``."""
    return tesla_assert(
        context,
        FunctionCall(function=function, args=None),
        FunctionReturn(function=function, args=None, retval=None),
        expression,
        name=name,
        location=location,
        tags=tags,
    )


def tesla_global(
    entry: Any,
    exit: Any,
    expression: Any,
    name: Optional[str] = None,
    location: str = "",
    tags: Tuple[str, ...] = (),
) -> TemporalAssertion:
    """``TESLA_GLOBAL(start, end, expr)`` — explicit cross-thread context."""
    return tesla_assert(
        Context.GLOBAL, entry, exit, expression, name=name, location=location, tags=tags
    )


def tesla_perthread(
    entry: Any,
    exit: Any,
    expression: Any,
    name: Optional[str] = None,
    location: str = "",
    tags: Tuple[str, ...] = (),
) -> TemporalAssertion:
    """``TESLA_PERTHREAD(start, end, expr)`` — implicitly serialised context."""
    return tesla_assert(
        Context.THREAD, entry, exit, expression, name=name, location=location, tags=tags
    )
