"""Assertion coverage analysis.

Section 3.5.2: "TESLA relies on test suites and exercise tools … to trigger
coverage of pertinent code paths — a significant limitation relative to
static techniques.  However, TESLA itself can help test and therefore
improve test coverage: of the 37 inter-process access-control assertions we
wrote, 26 were not exercised by FreeBSD's inter-process access-control test
suite."

:class:`CoverageReport` answers the same question for a run of this
reproduction: which installed assertions had their temporal bound opened,
which reached their assertion site, and which were never exercised at all —
grouped by assertion tags so results can be reported per facility (procfs,
CPUSET, rtsched …) exactly as the paper breaks down its 26 omissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ast import TemporalAssertion
from ..runtime.manager import TeslaRuntime


@dataclass
class AssertionCoverage:
    """Coverage facts for one assertion across all store contexts."""

    name: str
    tags: Tuple[str, ...]
    bound_opened: int = 0
    sites_reached: int = 0
    accepts: int = 0
    errors: int = 0

    @property
    def exercised(self) -> bool:
        """An assertion is exercised when its site was actually reached."""
        return self.sites_reached > 0


@dataclass
class CoverageReport:
    assertions: List[AssertionCoverage] = field(default_factory=list)

    @property
    def exercised(self) -> List[AssertionCoverage]:
        return [a for a in self.assertions if a.exercised]

    @property
    def unexercised(self) -> List[AssertionCoverage]:
        return [a for a in self.assertions if not a.exercised]

    def by_tag(self) -> Dict[str, List[AssertionCoverage]]:
        groups: Dict[str, List[AssertionCoverage]] = {}
        for assertion in self.assertions:
            for tag in assertion.tags or ("untagged",):
                groups.setdefault(tag, []).append(assertion)
        return groups

    def unexercised_by_tag(self) -> Dict[str, int]:
        """Tag → count of unexercised assertions (the paper's breakdown)."""
        out: Dict[str, int] = {}
        for assertion in self.unexercised:
            for tag in assertion.tags or ("untagged",):
                out[tag] = out.get(tag, 0) + 1
        return out

    def summary(self) -> str:
        total = len(self.assertions)
        hit = len(self.exercised)
        lines = [f"coverage: {hit}/{total} assertions exercised"]
        for tag, count in sorted(self.unexercised_by_tag().items()):
            lines.append(f"  unexercised in {tag}: {count}")
        return "\n".join(lines)


def coverage_report(
    runtime: TeslaRuntime,
    assertions: Optional[Sequence[TemporalAssertion]] = None,
) -> CoverageReport:
    """Collect per-assertion coverage from the runtime's store counters.

    A synchronization point: a deferred runtime is flushed first so the
    counters include everything captured before the read.
    """
    runtime.flush_deferred()
    tags_by_name: Dict[str, Tuple[str, ...]] = {}
    if assertions is not None:
        tags_by_name = {a.name: a.tags for a in assertions}
    report = CoverageReport()
    for name in sorted(runtime.automata):
        coverage = AssertionCoverage(
            name=name, tags=tags_by_name.get(name, ())
        )
        for cr in runtime.all_class_runtimes(name):
            coverage.sites_reached += cr.sites_reached
            coverage.accepts += cr.accepts
            coverage.errors += cr.errors
            # Bound openings are visible as counts on the init transition.
            for transition, count in cr.transition_counts.items():
                if transition.kind.value == "init":
                    coverage.bound_opened += count
        report.assertions.append(coverage)
    return report
