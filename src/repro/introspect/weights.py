"""Weighted automaton graphs (figure 9).

"TESLA can combine observations of dynamic behaviour with static automata
descriptions, producing weighted graphs … the programmer can visually
inspect the portions of the state graph that are executed in practice, as
well as their relative frequencies" — code-coverage analysis "at a logical
rather than source-line level".

:func:`weighted_graph` merges a class's static structure with the
transition counters accumulated by the runtime's stores;
:func:`to_dot` renders Graphviz output with edge weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.automaton import Automaton, Transition, TransitionKind
from ..runtime.manager import TeslaRuntime
from ..runtime.store import ClassRuntime


@dataclass
class WeightedEdge:
    src: int
    dst: int
    label: str
    kind: str
    weight: int


@dataclass
class WeightedGraph:
    """An automaton's static structure annotated with run-time weights."""

    automaton: str
    n_states: int
    start: int
    accept: int
    edges: List[WeightedEdge] = field(default_factory=list)

    @property
    def total_weight(self) -> int:
        return sum(e.weight for e in self.edges)

    def unexercised(self) -> List[WeightedEdge]:
        """Edges never taken — the logical-coverage gaps."""
        return [e for e in self.edges if e.weight == 0]

    def hottest(self, limit: int = 5) -> List[WeightedEdge]:
        return sorted(self.edges, key=lambda e: -e.weight)[:limit]

    def coverage_ratio(self) -> float:
        """Fraction of transitions exercised at least once."""
        if not self.edges:
            return 0.0
        return sum(1 for e in self.edges if e.weight > 0) / len(self.edges)

    def describe(self) -> str:
        lines = [f"weighted automaton {self.automaton}"]
        for e in sorted(self.edges, key=lambda e: (e.src, e.dst)):
            lines.append(
                f"  {e.src} --{e.label}--> {e.dst}   [weight={e.weight}]"
            )
        return "\n".join(lines)


def _merge_counts(runtimes: List[ClassRuntime]) -> Dict[Transition, int]:
    counts: Dict[Transition, int] = {}
    for cr in runtimes:
        for transition, count in cr.transition_counts.items():
            counts[transition] = counts.get(transition, 0) + count
    return counts


def weighted_graph(runtime: TeslaRuntime, automaton_name: str) -> WeightedGraph:
    """Build the figure-9 weighted graph for one installed automaton,
    merging transition counters across every store context.

    A synchronization point: a deferred runtime is flushed first so the
    weights include everything captured before the read.
    """
    runtime.flush_deferred()
    automaton = runtime.automata[automaton_name]
    counts = _merge_counts(runtime.all_class_runtimes(automaton_name))
    graph = WeightedGraph(
        automaton=automaton_name,
        n_states=automaton.n_states,
        start=automaton.start,
        accept=automaton.accept,
    )
    for transition in automaton.transitions:
        if transition.kind in (TransitionKind.EVENT, TransitionKind.SITE):
            label = automaton.symbols[transition.symbol].describe()
        else:
            label = f"«{transition.kind.value}»"
        graph.edges.append(
            WeightedEdge(
                src=transition.src,
                dst=transition.dst,
                label=label,
                kind=transition.kind.value,
                weight=counts.get(transition, 0),
            )
        )
    return graph


def to_dot(graph: WeightedGraph, scale_weights: bool = True) -> str:
    """Render the weighted graph as Graphviz DOT.

    Edge pen widths scale with run-time weight so the exercised portion of
    the state graph is visually dominant, as in figure 9.
    """
    out = [f'digraph "{graph.automaton}" {{', "  rankdir=LR;"]
    for state in range(graph.n_states):
        shape = "doublecircle" if state == graph.accept else "circle"
        style = ' style=bold' if state == graph.start else ""
        out.append(f'  s{state} [label="{state}" shape={shape}{style}];')
    max_weight = max((e.weight for e in graph.edges), default=0)
    for e in graph.edges:
        width = 1.0
        if scale_weights and max_weight > 0:
            width = 1.0 + 4.0 * (e.weight / max_weight)
        colour = "gray" if e.weight == 0 else "black"
        out.append(
            f'  s{e.src} -> s{e.dst} [label="{_escape(e.label)} ({e.weight})" '
            f"penwidth={width:.2f} color={colour}];"
        )
    out.append("}")
    return "\n".join(out)


def _escape(text: str) -> str:
    return text.replace('"', '\\"')
