"""Dynamic introspection: traces, weighted automata, coverage, aggregation.

Everything here consumes the same event stream and notification framework
the validation path uses (section 4.4.2's pluggable handlers), so "always
on" monitoring, logical coverage and debugging traces come from one set of
instrumentation points.
"""

from .aggregate import (
    AggregationRow,
    DispatchStats,
    ShardContentionRow,
    StackAggregator,
    codegen_report,
    dispatch_stats,
    format_dispatch_stats,
    format_shard_contention,
    governor_report,
    shard_contention,
)
from .coverage import AssertionCoverage, CoverageReport, coverage_report
from .health import HealthReport, format_health, health_report
from .trace import TraceRecord, TraceRecorder, sequence_histogram
from .weights import WeightedEdge, WeightedGraph, to_dot, weighted_graph

__all__ = [
    "AggregationRow",
    "DispatchStats",
    "ShardContentionRow",
    "StackAggregator",
    "codegen_report",
    "dispatch_stats",
    "format_dispatch_stats",
    "format_shard_contention",
    "governor_report",
    "shard_contention",
    "AssertionCoverage",
    "CoverageReport",
    "coverage_report",
    "HealthReport",
    "format_health",
    "health_report",
    "TraceRecord",
    "TraceRecorder",
    "sequence_histogram",
    "WeightedEdge",
    "WeightedGraph",
    "to_dot",
    "weighted_graph",
]
