"""Per-stack-trace aggregation — the kernel's default handler.

"In the FreeBSD kernel, the default handler uses DTrace to aggregate
information across events, e.g., counting how often a transition is
triggered per stack trace" (section 4.4.2).  The GNUstep investigation
likewise hinged on "a stack trace every time a push or pop message was
sent".

:class:`StackAggregator` is a notification-hub handler (and an event sink)
that buckets occurrences by a stack signature, so hot paths and anomalous
callers fall out of the counts without reading raw traces.

This module also surfaces the sharded global store's per-shard contention
counters (:func:`shard_contention`): the lock-striping analogue of the
DTrace aggregation — which stripes are hot, which classes share them, and
how often a lock acquisition actually had to wait.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.events import RuntimeEvent
from ..runtime.notify import Notification, NotificationKind

StackKey = Tuple[str, ...]


@dataclass
class AggregationRow:
    name: str
    stack: StackKey
    count: int


class StackAggregator:
    """Counts (event-or-transition name, stack signature) occurrences."""

    def __init__(self, capture_stacks: bool = True, stack_depth: int = 8) -> None:
        self.capture_stacks = capture_stacks
        self.stack_depth = stack_depth
        self._counts: Dict[Tuple[str, StackKey], int] = {}

    # -- sinks ------------------------------------------------------------

    def event_sink(self, event: RuntimeEvent) -> None:
        stack = event.stack or self._snapshot()
        key = (f"{event.kind.value}:{event.name}", stack)
        self._counts[key] = self._counts.get(key, 0) + 1

    __call__ = event_sink

    def notification_handler(self, notification: Notification) -> None:
        if notification.kind in (
            NotificationKind.UPDATE,
            NotificationKind.SITE,
            NotificationKind.ERROR,
        ):
            stack = self._snapshot()
            key = (
                f"{notification.automaton}:{notification.kind.value}",
                stack,
            )
            self._counts[key] = self._counts.get(key, 0) + 1

    def _snapshot(self) -> StackKey:
        if not self.capture_stacks:
            return ()
        frames = traceback.extract_stack(limit=self.stack_depth + 10)
        names = [
            f.name
            for f in frames
            if "repro/introspect" not in f.filename
            and "repro/instrument" not in f.filename
            and "repro/runtime" not in f.filename
        ]
        return tuple(names[-self.stack_depth:])

    # -- queries ------------------------------------------------------------

    def rows(self) -> List[AggregationRow]:
        return sorted(
            (
                AggregationRow(name=name, stack=stack, count=count)
                for (name, stack), count in self._counts.items()
            ),
            key=lambda r: -r.count,
        )

    def total(self, name: str) -> int:
        return sum(c for (n, _), c in self._counts.items() if n == name)

    def distinct_stacks(self, name: str) -> int:
        return sum(1 for (n, _) in self._counts if n == name)

    def format(self, limit: int = 20) -> str:
        lines = []
        for row in self.rows()[:limit]:
            stack = " <- ".join(reversed(row.stack[-4:])) or "(no stack)"
            lines.append(f"{row.count:>8}  {row.name:<40} {stack}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._counts.clear()


# ---------------------------------------------------------------------------
# Shard contention aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardContentionRow:
    """One shard's lock traffic and residency."""

    shard: int
    classes: Tuple[str, ...]
    acquisitions: int
    contended: int
    batches: int
    pool_population: int
    pool_high_water: int
    pool_overflows: int

    @property
    def contention_ratio(self) -> float:
        if not self.acquisitions:
            return 0.0
        return self.contended / self.acquisitions


def shard_contention(runtime) -> List[ShardContentionRow]:
    """Per-shard contention rows for a :class:`TeslaRuntime`.

    ``runtime`` is duck-typed (anything with a ``global_store`` exposing
    ``shards``), so this stays import-light like the rest of the
    introspection layer.
    """
    rows: List[ShardContentionRow] = []
    for shard in runtime.global_store.shards:
        population = high_water = overflows = 0
        for cr in shard.store:
            stats = cr.pool.stats()
            population += stats["population"]
            high_water += stats["high_water"]
            overflows += stats["overflows"]
        rows.append(
            ShardContentionRow(
                shard=shard.index,
                classes=tuple(shard.store.names),
                acquisitions=shard.lock.acquisitions,
                contended=shard.lock.contended,
                batches=shard.batches,
                pool_population=population,
                pool_high_water=high_water,
                pool_overflows=overflows,
            )
        )
    return rows


def format_shard_contention(
    rows: List[ShardContentionRow], include_idle: bool = False
) -> str:
    """A printable table of shard lock traffic, busiest shards first."""
    lines = [
        f"{'shard':>5}  {'acquire':>8}  {'contend':>8}  {'ratio':>6}  "
        f"{'batches':>7}  {'high-water':>10}  classes"
    ]
    for row in sorted(rows, key=lambda r: -r.acquisitions):
        if not include_idle and not row.acquisitions and not row.classes:
            continue
        names = ", ".join(row.classes) or "(empty)"
        lines.append(
            f"{row.shard:>5}  {row.acquisitions:>8}  {row.contended:>8}  "
            f"{row.contention_ratio:>6.1%}  {row.batches:>7}  "
            f"{row.pool_high_water:>10}  {names}"
        )
    return "\n".join(lines)
