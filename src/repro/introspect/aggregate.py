"""Per-stack-trace aggregation — the kernel's default handler.

"In the FreeBSD kernel, the default handler uses DTrace to aggregate
information across events, e.g., counting how often a transition is
triggered per stack trace" (section 4.4.2).  The GNUstep investigation
likewise hinged on "a stack trace every time a push or pop message was
sent".

:class:`StackAggregator` is a notification-hub handler (and an event sink)
that buckets occurrences by a stack signature, so hot paths and anomalous
callers fall out of the counts without reading raw traces.

This module also surfaces the sharded global store's per-shard contention
counters (:func:`shard_contention`): the lock-striping analogue of the
DTrace aggregation — which stripes are hot, which classes share them, and
how often a lock acquisition actually had to wait.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.events import RuntimeEvent
from ..runtime.notify import Notification, NotificationKind

StackKey = Tuple[str, ...]


@dataclass
class AggregationRow:
    name: str
    stack: StackKey
    count: int


class StackAggregator:
    """Counts (event-or-transition name, stack signature) occurrences."""

    def __init__(self, capture_stacks: bool = True, stack_depth: int = 8) -> None:
        self.capture_stacks = capture_stacks
        self.stack_depth = stack_depth
        self._counts: Dict[Tuple[str, StackKey], int] = {}

    # -- sinks ------------------------------------------------------------

    def event_sink(self, event: RuntimeEvent) -> None:
        stack = event.stack or self._snapshot()
        key = (f"{event.kind.value}:{event.name}", stack)
        self._counts[key] = self._counts.get(key, 0) + 1

    __call__ = event_sink

    def notification_handler(self, notification: Notification) -> None:
        if notification.kind in (
            NotificationKind.UPDATE,
            NotificationKind.SITE,
            NotificationKind.ERROR,
        ):
            stack = self._snapshot()
            key = (
                f"{notification.automaton}:{notification.kind.value}",
                stack,
            )
            self._counts[key] = self._counts.get(key, 0) + 1

    def _snapshot(self) -> StackKey:
        if not self.capture_stacks:
            return ()
        frames = traceback.extract_stack(limit=self.stack_depth + 10)
        names = [
            f.name
            for f in frames
            if "repro/introspect" not in f.filename
            and "repro/instrument" not in f.filename
            and "repro/runtime" not in f.filename
        ]
        return tuple(names[-self.stack_depth:])

    # -- queries ------------------------------------------------------------

    def rows(self) -> List[AggregationRow]:
        return sorted(
            (
                AggregationRow(name=name, stack=stack, count=count)
                for (name, stack), count in self._counts.items()
            ),
            key=lambda r: -r.count,
        )

    def total(self, name: str) -> int:
        return sum(c for (n, _), c in self._counts.items() if n == name)

    def distinct_stacks(self, name: str) -> int:
        return sum(1 for (n, _) in self._counts if n == name)

    def format(self, limit: int = 20) -> str:
        lines = []
        for row in self.rows()[:limit]:
            stack = " <- ".join(reversed(row.stack[-4:])) or "(no stack)"
            lines.append(f"{row.count:>8}  {row.name:<40} {stack}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._counts.clear()


# ---------------------------------------------------------------------------
# Shard contention aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardContentionRow:
    """One shard's lock traffic and residency."""

    shard: int
    classes: Tuple[str, ...]
    acquisitions: int
    contended: int
    batches: int
    pool_population: int
    pool_high_water: int
    pool_overflows: int

    @property
    def contention_ratio(self) -> float:
        if not self.acquisitions:
            return 0.0
        return self.contended / self.acquisitions


def shard_contention(runtime) -> List[ShardContentionRow]:
    """Per-shard contention rows for a :class:`TeslaRuntime`.

    ``runtime`` is duck-typed (anything with a ``global_store`` exposing
    ``shards``), so this stays import-light like the rest of the
    introspection layer.
    """
    rows: List[ShardContentionRow] = []
    for shard in runtime.global_store.shards:
        population = high_water = overflows = 0
        for cr in shard.store:
            stats = cr.pool.stats()
            population += stats["population"]
            high_water += stats["high_water"]
            overflows += stats["overflows"]
        rows.append(
            ShardContentionRow(
                shard=shard.index,
                classes=tuple(shard.store.names),
                acquisitions=shard.lock.acquisitions,
                contended=shard.lock.contended,
                batches=shard.batches,
                pool_population=population,
                pool_high_water=high_water,
                pool_overflows=overflows,
            )
        )
    return rows


def format_shard_contention(
    rows: List[ShardContentionRow], include_idle: bool = False
) -> str:
    """A printable table of shard lock traffic, busiest shards first."""
    lines = [
        f"{'shard':>5}  {'acquire':>8}  {'contend':>8}  {'ratio':>6}  "
        f"{'batches':>7}  {'high-water':>10}  classes"
    ]
    for row in sorted(rows, key=lambda r: -r.acquisitions):
        if not include_idle and not row.acquisitions and not row.classes:
            continue
        names = ", ".join(row.classes) or "(empty)"
        lines.append(
            f"{row.shard:>5}  {row.acquisitions:>8}  {row.contended:>8}  "
            f"{row.contention_ratio:>6.1%}  {row.batches:>7}  "
            f"{row.pool_high_water:>10}  {names}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Dispatch fast-path effectiveness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DispatchStats:
    """Effectiveness counters for the compiled event fast path.

    The interest counters (``hook_*``/``interpose_*``) are process-global —
    hook points and the interposition table are process-wide registries —
    while the plan counters are summed over one runtime's class runtimes
    across every store (global shards and per-thread stores).
    """

    compiled: bool
    epoch: int
    hook_short_circuits: int
    hook_refreshes: int
    interpose_short_circuits: int
    interpose_refreshes: int
    plan_hits: int
    plan_misses: int
    plan_invalidations: int
    cached_plans: int
    #: Deferred-pipeline counters (all zero for synchronous runtimes).
    #: ``queue_depth`` is sampled live — ``dispatch_stats`` deliberately
    #: does *not* flush, so a non-zero depth is the backlog right now.
    deferred: bool = False
    queue_depth: int = 0
    drains: int = 0
    flushes: int = 0
    sync_flushes: int = 0
    inline_flushes: int = 0
    events_enqueued: int = 0
    events_drained: int = 0
    max_batch: int = 0
    flush_seconds: float = 0.0
    last_flush_seconds: float = 0.0
    #: tesla-jit counters (all zero unless the runtime was built with
    #: ``codegen=True``).  ``gen_fallback_plans`` counts *plans* the
    #: generator declined (cached as fallbacks), ``gen_fallback_hits``
    #: counts events those plans carried through the interpreter.
    codegen: bool = False
    gen_hits: int = 0
    gen_misses: int = 0
    gen_fallback_plans: int = 0
    gen_fallback_hits: int = 0
    gen_invalidations: int = 0
    cached_steps: int = 0
    gen_elided_guards: int = 0
    gen_elided_transitions: int = 0
    gen_seconds: float = 0.0
    #: Timed-assertion counters (zero unless an installed automaton
    #: carries a deadline).  ``timer_checks`` counts sync-point timer
    #: sweeps, ``timer_expiries`` the deadline violations those sweeps
    #: surfaced *without* a successor event.
    timer_checks: int = 0
    timer_expiries: int = 0

    @property
    def plan_hit_ratio(self) -> float:
        total = self.plan_hits + self.plan_misses
        if not total:
            return 0.0
        return self.plan_hits / total

    @property
    def gen_hit_ratio(self) -> float:
        total = self.gen_hits + self.gen_misses
        if not total:
            return 0.0
        return self.gen_hits / total


def dispatch_stats(runtime) -> DispatchStats:
    """Fast-path counters for a :class:`TeslaRuntime` (duck-typed, like
    :func:`shard_contention`)."""
    from ..runtime.epoch import interest_epoch, interest_stats

    plan_hits = plan_misses = plan_invalidations = cached_plans = 0
    gen_hits = gen_misses = gen_fallback_plans = gen_fallback_hits = 0
    gen_invalidations = cached_steps = 0
    gen_elided_guards = gen_elided_transitions = 0
    gen_seconds = 0.0
    stores = list(runtime.global_store.all_stores())
    stores.extend(runtime.thread_stores.all_stores())
    for store in stores:
        for cr in store:
            plan_hits += cr.plan_hits
            plan_misses += cr.plan_misses
            plan_invalidations += cr.plan_invalidations
            cached_plans += cr.plan_cache_size
            gen_hits += cr.gen_hits
            gen_misses += cr.gen_misses
            gen_fallback_plans += cr.gen_fallback_plans
            gen_fallback_hits += cr.gen_fallback_hits
            gen_invalidations += cr.gen_invalidations
            cached_steps += cr.gen_cache_size
            gen_elided_guards += cr.gen_elided_guards
            gen_elided_transitions += cr.gen_elided_transitions
            gen_seconds += cr.gen_seconds
    drain = getattr(runtime, "drain", None)
    deferred_kwargs = {}
    if drain is not None:
        drain_stats = drain.stats()
        deferred_kwargs = dict(
            deferred=True,
            queue_depth=drain_stats["queue_depth"],
            drains=drain_stats["drains"],
            flushes=drain_stats["flushes"],
            sync_flushes=drain_stats["sync_flushes"],
            inline_flushes=drain_stats["inline_flushes"],
            events_enqueued=drain_stats["events_enqueued"],
            events_drained=drain_stats["events_drained"],
            max_batch=drain_stats["max_batch"],
            flush_seconds=drain_stats["flush_seconds"],
            last_flush_seconds=drain_stats["last_flush_seconds"],
        )
    return DispatchStats(
        compiled=getattr(runtime, "compiled", False),
        epoch=interest_epoch.value,
        hook_short_circuits=interest_stats.hook_short_circuits,
        hook_refreshes=interest_stats.hook_refreshes,
        interpose_short_circuits=interest_stats.interpose_short_circuits,
        interpose_refreshes=interest_stats.interpose_refreshes,
        plan_hits=plan_hits,
        plan_misses=plan_misses,
        plan_invalidations=plan_invalidations,
        cached_plans=cached_plans,
        codegen=getattr(runtime, "codegen", False),
        gen_hits=gen_hits,
        gen_misses=gen_misses,
        gen_fallback_plans=gen_fallback_plans,
        gen_fallback_hits=gen_fallback_hits,
        gen_invalidations=gen_invalidations,
        cached_steps=cached_steps,
        gen_elided_guards=gen_elided_guards,
        gen_elided_transitions=gen_elided_transitions,
        gen_seconds=gen_seconds,
        timer_checks=getattr(runtime, "timer_checks", 0),
        timer_expiries=getattr(runtime, "timer_expiries", 0),
        **deferred_kwargs,
    )


def codegen_report(runtime) -> Optional[dict]:
    """tesla-jit effectiveness: which dispatch keys generated, which fell
    back (and why), what elision bought, and what generation cost.

    Returns ``None`` for runtimes built without ``codegen=True``.  Counts
    are per *key label* (``kind:name``) aggregated over every class
    runtime holding a cached step for that key — a key observed by three
    classes that all generated shows ``3``.
    """
    if not getattr(runtime, "codegen", False):
        return None
    generated: Dict[str, int] = {}
    fallbacks: Dict[str, dict] = {}
    gen_seconds = 0.0
    elided_guards = elided_transitions = fallback_hits = 0
    stores = list(runtime.global_store.all_stores())
    stores.extend(runtime.thread_stores.all_stores())
    for store in stores:
        for cr in store:
            summary = cr.gen_summary()
            for label in summary["generated_keys"]:
                generated[label] = generated.get(label, 0) + 1
            for label, reason in summary["fallback_keys"]:
                row = fallbacks.setdefault(
                    label, {"classes": 0, "reason": reason}
                )
                row["classes"] += 1
            gen_seconds += cr.gen_seconds
            elided_guards += cr.gen_elided_guards
            elided_transitions += cr.gen_elided_transitions
            fallback_hits += cr.gen_fallback_hits
    return {
        "generated": dict(sorted(generated.items())),
        "fallbacks": dict(sorted(fallbacks.items())),
        "elided_guards": elided_guards,
        "elided_transitions": elided_transitions,
        "fallback_hits": fallback_hits,
        "gen_seconds": gen_seconds,
    }


def governor_report(runtime) -> Optional[dict]:
    """Overhead-governor state (DESIGN §5.8): budget, measured spend,
    the per-class cost ranking with each class's shedding-ladder position,
    and the recent decision history.

    Returns ``None`` for runtimes built without ``overhead_budget=``.
    Duck-typed like :func:`codegen_report`.
    """
    gov = getattr(runtime, "governor", None)
    if gov is None:
        return None
    return gov.report()


def format_dispatch_stats(stats: DispatchStats) -> str:
    """A printable summary of how well the dispatch caches are working."""
    mode = "compiled" if stats.compiled else "interpreted"
    if stats.codegen:
        mode = "codegen (tesla-jit)"
    lines = [
        f"dispatch mode        {mode} (interest epoch {stats.epoch})",
        f"hook interest        {stats.hook_short_circuits} short-circuits, "
        f"{stats.hook_refreshes} cache refreshes",
        f"interpose interest   {stats.interpose_short_circuits} "
        f"short-circuits, {stats.interpose_refreshes} cache refreshes",
        f"transition plans     {stats.plan_hits} hits / "
        f"{stats.plan_misses} misses ({stats.plan_hit_ratio:.1%} hit "
        f"ratio), {stats.plan_invalidations} epoch invalidations, "
        f"{stats.cached_plans} plans resident",
    ]
    if stats.codegen:
        lines.append(
            f"generated steps      {stats.gen_hits} hits / "
            f"{stats.gen_misses} misses ({stats.gen_hit_ratio:.1%} hit "
            f"ratio), {stats.gen_invalidations} epoch invalidations, "
            f"{stats.cached_steps} steps resident"
        )
        lines.append(
            f"codegen              {stats.gen_fallback_plans} fallback "
            f"plans ({stats.gen_fallback_hits} interpreter events), "
            f"{stats.gen_elided_guards} guards elided, "
            f"{stats.gen_elided_transitions} transitions elided, "
            f"{stats.gen_seconds * 1e3:.2f}ms generating"
        )
    if stats.timer_checks:
        lines.append(
            f"timed assertions     {stats.timer_checks} timer sweeps, "
            f"{stats.timer_expiries} deadline expiries without a "
            f"successor event"
        )
    if stats.deferred:
        lines.append(
            f"deferred pipeline    depth={stats.queue_depth} "
            f"enqueued={stats.events_enqueued} "
            f"drained={stats.events_drained} "
            f"drains={stats.drains} max_batch={stats.max_batch}"
        )
        lines.append(
            f"flush latency        {stats.flushes} flushes "
            f"(sync={stats.sync_flushes} inline={stats.inline_flushes}), "
            f"last={stats.last_flush_seconds * 1e6:.1f}us "
            f"total={stats.flush_seconds * 1e3:.2f}ms"
        )
    return "\n".join(lines)
