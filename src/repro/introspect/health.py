"""Monitor health: fault accounting, quarantine state, degraded-mode flags.

The supervision layer (:mod:`repro.runtime.supervisor`) contains faults in
TESLA's own machinery so the monitored program never sees them — which
means the *only* way to learn the monitor lost coverage is to ask.  This
module is that question: :func:`health_report` snapshots a runtime's
supervisor, its notification hub's handler-fault counters and (when armed)
the fault injector into one :class:`HealthReport`, and
:func:`format_health` renders it in the same fixed-width table style as
``format_dispatch_stats`` / ``format_shard_contention``.

The report is the operational complement to the paper's overflow reports
(§4.4.1): overflows say "size the pools bigger next run"; a degraded
health report says "trust this run's coverage less, and here is exactly
which classes and boundaries faulted".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..runtime.faultinject import active_injector
from ..runtime.supervisor import MonitorFault, QuarantineRecord


@dataclass
class HealthReport:
    """One runtime's monitor-health snapshot."""

    #: Logical dispatch tick at snapshot time (one tick per event).
    tick: int
    #: Class name of the active :class:`~repro.runtime.supervisor.FailurePolicy`.
    policy: str
    #: Faults swallowed at a containment boundary.
    contained: int
    #: Faults the policy let propagate into the application.
    propagated: int
    #: Contained faults that were injected by the chaos harness.
    injected_recorded: int
    #: Notification-handler faults contained at the hub boundary.
    handler_faults: int
    #: automaton label -> fault count (pseudo-labels in parentheses).
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: containment stage -> fault count.
    stage_counts: Dict[str, int] = field(default_factory=dict)
    #: Most recent faults, oldest first (bounded ring).
    last_faults: List[MonitorFault] = field(default_factory=list)
    #: Every class that ever tripped quarantine, with lifecycle state.
    quarantine: List[QuarantineRecord] = field(default_factory=list)
    #: Classes currently shed from dispatch.
    shed: Tuple[str, ...] = ()
    #: True when any fault was contained or any class is shed: the run's
    #: verdicts are still sound, but coverage may have gaps.
    degraded: bool = False
    #: Fault-injector accounting when armed (seed, checks, fired per site).
    injector: Optional[dict] = None
    #: Deferred-pipeline accounting when the runtime defers (queue depth,
    #: drains, flush counts/latency, events lost to contained faults, and
    #: — when a trace journal is installed — its record/byte counters);
    #: ``None`` for synchronous runtimes.
    deferred: Optional[dict] = None
    #: tesla-lint summary of every installed batch (DESIGN §5.5);
    #: ``None`` when the runtime installed nothing or lints with ``"off"``.
    lint: Optional[dict] = None
    #: tesla-prove summary (DESIGN §5.10): verdict counts plus how many
    #: assertions were elided at install under ``prove="prune"``;
    #: ``None`` unless the runtime proves installed batches.
    prove: Optional[dict] = None
    #: tesla-jit summary (DESIGN §5.7): per-key generated/fallback counts,
    #: elision totals and generation cost; ``None`` unless ``codegen=True``.
    codegen: Optional[dict] = None
    #: Overhead-governor summary (DESIGN §5.8): budget, measured spend
    #: ratios, per-class cost ranking with shedding-ladder state, recent
    #: decisions; ``None`` unless the runtime set ``overhead_budget=``.
    governor: Optional[dict] = None

    @property
    def total_faults(self) -> int:
        return self.contained + self.propagated


def health_report(runtime) -> HealthReport:
    """Snapshot ``runtime``'s supervision state.

    Duck-typed like :func:`~repro.introspect.aggregate.dispatch_stats`:
    anything with a ``supervisor`` (and optionally a ``hub``) works.

    Reading health is a synchronization point (DESIGN §5.4): a deferred
    runtime is flushed first, so the snapshot never describes a store
    that lags capture — and an error parked by the background drainer
    surfaces here rather than going stale.
    """
    flush = getattr(runtime, "flush_deferred", None)
    if flush is not None:
        flush()
    drain = getattr(runtime, "drain", None)
    supervisor = runtime.supervisor
    hub = getattr(runtime, "hub", None)
    handler_faults = supervisor.handler_faults
    if hub is not None:
        # The hub counts all raising handlers, even before a fault sink
        # was attached; take the larger of the two views.
        handler_faults = max(handler_faults, hub.handler_faults)
    from .aggregate import codegen_report, governor_report

    injector = active_injector()
    lint_report = getattr(runtime, "lint_report", None)
    prove_report = getattr(runtime, "prove_report", None)
    prove = None
    if prove_report is not None:
        prove = prove_report.summary()
        prove["elided"] = len(getattr(runtime, "prove_elided", ()))
    return HealthReport(
        tick=supervisor.tick,
        policy=type(supervisor.policy).__name__,
        contained=supervisor.contained,
        propagated=supervisor.propagated,
        injected_recorded=supervisor.injected_recorded,
        handler_faults=handler_faults,
        fault_counts=dict(supervisor.fault_counts),
        stage_counts=dict(supervisor.stage_counts),
        last_faults=list(supervisor.last_faults),
        quarantine=supervisor.quarantine_rows(),
        shed=tuple(sorted(supervisor.shed_classes)),
        degraded=supervisor.degraded,
        injector=None if injector is None else injector.stats(),
        deferred=None if drain is None else drain.stats(),
        lint=None if lint_report is None else lint_report.summary(),
        prove=prove,
        codegen=codegen_report(runtime),
        governor=governor_report(runtime),
    )


def format_health(report: HealthReport) -> str:
    """Render a health report as fixed-width text."""
    lines: List[str] = []
    status = "DEGRADED" if report.degraded else "healthy"
    lines.append(
        f"monitor health: {status}  policy={report.policy}  "
        f"tick={report.tick}"
    )
    lines.append(
        f"  faults: contained={report.contained} "
        f"propagated={report.propagated} "
        f"handler={report.handler_faults} "
        f"injected={report.injected_recorded}"
    )
    if report.stage_counts:
        stages = "  ".join(
            f"{stage}={count}"
            for stage, count in sorted(report.stage_counts.items())
        )
        lines.append(f"  by stage: {stages}")
    if report.fault_counts:
        lines.append(f"  {'automaton':<32} {'faults':>7}")
        for name, count in sorted(
            report.fault_counts.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {name:<32} {count:>7}")
    if report.quarantine:
        lines.append(
            f"  {'quarantine':<32} {'state':<12} {'trips':>5} "
            f"{'until':>8} {'probation':>9}"
        )
        for row in sorted(report.quarantine, key=lambda r: r.automaton):
            lines.append(
                f"  {row.automaton:<32} {row.state.value:<12} "
                f"{row.trips:>5} {row.until_tick:>8} "
                f"{row.probation_until:>9}"
            )
    if report.shed:
        lines.append(f"  shed: {', '.join(report.shed)}")
    if report.injector is not None:
        inj = report.injector
        lines.append(
            f"  injector: seed={inj.get('seed')} rate={inj.get('rate')} "
            f"fired={inj.get('total_fired')}/{inj.get('total_checks')}"
        )
        for site, fired in sorted(inj.get("fired", {}).items()):
            lines.append(f"    {site:<30} {fired:>7}")
    if report.deferred is not None:
        d = report.deferred
        lines.append(
            f"  deferred: depth={d.get('queue_depth')} "
            f"enqueued={d.get('events_enqueued')} "
            f"drained={d.get('events_drained')} "
            f"lost={d.get('events_lost_to_faults')} "
            f"flushes={d.get('flushes')} "
            f"(sync={d.get('sync_flushes')} inline={d.get('inline_flushes')}) "
            f"last_flush={d.get('last_flush_seconds', 0.0) * 1e6:.1f}us"
        )
        j = d.get("journal")
        if j is not None:
            lines.append(
                f"  journal: events={j.get('events')} "
                f"records={j.get('records')} "
                f"bytes={j.get('bytes')} "
                f"opaque={j.get('opaque_values')} "
                f"errors={j.get('errors')} "
                f"path={j.get('path') or '(stream)'}"
            )
    if report.lint is not None:
        lint = report.lint
        verdict = "clean" if lint.get("clean") else "findings"
        codes = ",".join(lint.get("codes", ())) or "-"
        lines.append(
            f"  lint: {verdict}  assertions={lint.get('assertions')} "
            f"errors={lint.get('errors')} warnings={lint.get('warnings')} "
            f"codes={codes} arity_safe={lint.get('arity_safe')}"
        )
    if report.prove is not None:
        pv = report.prove
        verdict = "clean" if pv.get("clean") else "violated"
        lines.append(
            f"  prove: {verdict}  assertions={pv.get('assertions')} "
            f"proved={pv.get('proved')} violated={pv.get('violated')} "
            f"unknown={pv.get('unknown')} elided={pv.get('elided')}"
        )
    if report.codegen is not None:
        cg = report.codegen
        lines.append(
            f"  codegen: generated={sum(cg['generated'].values())} "
            f"fallback={sum(r['classes'] for r in cg['fallbacks'].values())} "
            f"elided_guards={cg['elided_guards']} "
            f"elided_transitions={cg['elided_transitions']} "
            f"gen_time={cg['gen_seconds'] * 1e3:.2f}ms"
        )
        for label, row in cg["fallbacks"].items():
            lines.append(
                f"    fallback {label:<28} x{row['classes']} "
                f"({row['reason']})"
            )
    if report.governor is not None:
        g = report.governor
        state = "TRIPPED" if g.get("tripped") else "active"
        lines.append(
            f"  governor: {state}  budget={g.get('budget'):.1%} "
            f"window={g.get('window_ratio', 0.0):.2%} "
            f"total={g.get('total_ratio', 0.0):.2%} "
            f"spend={g.get('spend_seconds', 0.0) * 1e3:.2f}ms "
            f"decisions={g.get('decisions')} "
            f"(escalate={g.get('escalations')} relax={g.get('relaxations')})"
        )
        if g.get("sampled"):
            sampled = "  ".join(
                f"{name}=1/{rate}"
                for name, rate in sorted(g["sampled"].items())
            )
            lines.append(f"    sampled: {sampled}")
        if g.get("demoted"):
            lines.append(
                "    demoted (journal-only): "
                + ", ".join(sorted(g["demoted"]))
            )
        if g.get("shed"):
            lines.append(
                "    shed for overhead: " + ", ".join(sorted(g["shed"]))
            )
        rows = g.get("classes", ())
        if rows:
            lines.append(
                f"    {'automaton':<30} {'state':<8} {'rate':>5} "
                f"{'window':>9} {'total':>9} {'events':>8}"
            )
            for row in rows[:8]:
                lines.append(
                    f"    {row['automaton']:<30} {row['state']:<8} "
                    f"1/{row['rate']:<3} "
                    f"{row['window_seconds'] * 1e3:>7.2f}ms "
                    f"{row['total_seconds'] * 1e3:>7.2f}ms "
                    f"{row['total_events']:>8}"
                )
    if report.last_faults:
        lines.append("  recent faults:")
        for fault in report.last_faults[-8:]:
            lines.append(f"    {fault.describe()}")
    return "\n".join(lines)
