"""Event trace recording — TESLA's dynamic-introspection workhorse.

The GNUstep case study (section 3.5.3) used TESLA "to insert
instrumentation and call custom handler code in order to understand the
system's dynamic behaviour": every instrumented call produced a trace
record with enough context (receiver, selector, arguments, stack) to
diagnose the cursor push/pop imbalance and the non-LIFO graphics-state bug.

:class:`TraceRecorder` is that custom handler: attach it to a hook point,
an interposition table, or a notification hub, and it accumulates
:class:`TraceRecord` rows which can be filtered, paired and formatted.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.events import EventKind, RuntimeEvent
from ..runtime.notify import Notification, NotificationKind


@dataclass
class TraceRecord:
    """One traced program event."""

    index: int
    kind: str
    name: str
    args: Tuple[Any, ...] = ()
    retval: Any = None
    thread_id: int = 0
    stack: Tuple[str, ...] = ()

    def format(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        base = f"#{self.index:<6} {self.kind:<8} {self.name}({args})"
        if self.kind == "return":
            base += f" -> {self.retval!r}"
        return base


class TraceRecorder:
    """Accumulates trace records from events and/or notifications."""

    def __init__(self, capture_stacks: bool = False, stack_depth: int = 12) -> None:
        self.capture_stacks = capture_stacks
        self.stack_depth = stack_depth
        self.records: List[TraceRecord] = []

    # -- sinks ------------------------------------------------------------

    def event_sink(self, event: RuntimeEvent) -> None:
        """Use as an :data:`~repro.instrument.hooks.EventSink`."""
        stack: Tuple[str, ...] = event.stack
        if self.capture_stacks and not stack:
            stack = self._snapshot_stack()
        self.records.append(
            TraceRecord(
                index=len(self.records),
                kind=event.kind.value,
                name=event.name,
                args=event.args,
                retval=event.retval,
                thread_id=event.thread_id,
                stack=stack,
            )
        )

    __call__ = event_sink

    def notification_handler(self, notification: Notification) -> None:
        """Use as a notification-hub handler (records automaton activity)."""
        event = notification.event
        self.records.append(
            TraceRecord(
                index=len(self.records),
                kind=f"auto:{notification.kind.value}",
                name=notification.automaton,
                args=(notification.instance_name,),
                retval=notification.states,
            )
        )

    def interposition_hook(
        self, phase: str, receiver: Any, selector: str, args: Tuple[Any, ...], result: Any
    ) -> None:
        """Use as a raw interposition hook (the Objective-C path)."""
        stack = self._snapshot_stack() if self.capture_stacks else ()
        self.records.append(
            TraceRecord(
                index=len(self.records),
                kind="send" if phase == "send" else "return",
                name=selector,
                args=(type(receiver).__name__,) + tuple(args),
                retval=result,
                stack=stack,
            )
        )

    def _snapshot_stack(self) -> Tuple[str, ...]:
        frames = traceback.extract_stack(limit=self.stack_depth + 8)
        out = []
        for frame in frames:
            if "repro/introspect" in frame.filename or "repro/instrument" in frame.filename:
                continue
            out.append(f"{frame.name}")
        return tuple(out[-self.stack_depth:])

    # -- queries ------------------------------------------------------------

    def named(self, name: str) -> List[TraceRecord]:
        return [r for r in self.records if r.name == name]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def count(self, name: str, kind: Optional[str] = None) -> int:
        return sum(
            1
            for r in self.records
            if r.name == name and (kind is None or r.kind == kind)
        )

    def pairing_imbalance(
        self, push: str, pop: str, kind: str = "send"
    ) -> int:
        """Net ``push`` minus ``pop`` count — the cursor-stack diagnostic.

        A correct push/pop protocol nets to zero; the GNUstep bug showed up
        as a positive imbalance (duplicated pushes never popped).
        """
        return self.count(push, kind) - self.count(pop, kind)

    def first_unmatched(
        self, push: str, pop: str, kind: str = "send"
    ) -> Optional[TraceRecord]:
        """The earliest ``push`` record never matched by a later ``pop``."""
        depth = 0
        pending: List[TraceRecord] = []
        for record in self.records:
            if record.kind != kind:
                continue
            if record.name == push:
                pending.append(record)
                depth += 1
            elif record.name == pop and pending:
                pending.pop()
                depth -= 1
        return pending[0] if pending else None

    def format(self, limit: Optional[int] = None) -> str:
        rows = self.records if limit is None else self.records[:limit]
        return "\n".join(r.format() for r in rows)

    def clear(self) -> None:
        self.records.clear()


def sequence_histogram(
    records: Iterable[TraceRecord], window: int = 2, kind: str = "send"
) -> Dict[Tuple[str, ...], int]:
    """Count consecutive call sequences of length ``window``.

    This is the "common sequences of operations" profiling that exposed
    GNUstep's redundant save/restore pairs as an optimisation opportunity.
    """
    names = [r.name for r in records if r.kind == kind]
    histogram: Dict[Tuple[str, ...], int] = {}
    for i in range(len(names) - window + 1):
        key = tuple(names[i : i + window])
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
