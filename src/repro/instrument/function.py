"""Caller-side function instrumentation.

Callee-side hooks (:mod:`repro.instrument.hooks`) require the target to
have been built as instrumentable — the analogue of recompiling it.  When a
library "cannot be recompiled", TESLA inserts instrumentation "immediately
before and after a call site" instead (section 4.2).  The Python analogue:
rebind the *caller's* reference to the callee with an event-emitting
wrapper, leaving the callee untouched.

This is exactly how the OpenSSL case study instruments
``EVP_VerifyFinal`` inside libcrypto from an assertion written in the
libfetch client: the wrapper is woven into each calling module
(``repro.sslx.libssl``), not into libcrypto itself.
"""

from __future__ import annotations

import functools
import types
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..core.events import call_event, return_event
from ..errors import InstrumentationError, TemporalAssertionError
from ..runtime import faultinject as _fi
from ..runtime.faultinject import fault_site
from .hooks import EventSink, contain_sink_fault

_FP_CALLER = fault_site("function.dispatch")


def make_call_wrapper(
    fn: Callable, event_name: str, sinks: List[EventSink]
) -> Callable:
    """Wrap ``fn`` so every call emits CALL/RETURN events to ``sinks``.

    ``sinks`` is shared by reference: attaching/detaching after wrapping
    takes effect immediately, so one wrapper serves a whole instrumentation
    session.
    """

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any):
        event_args = args if not kwargs else args + tuple(kwargs.values())
        call = call_event(event_name, event_args)
        for sink in sinks:
            try:
                if _fi._active is not None:
                    _fi.fault_point(_FP_CALLER)
                sink(call)
            except TemporalAssertionError:
                raise
            except Exception as exc:
                if not contain_sink_fault(sink, "caller", exc):
                    raise
        result = fn(*args, **kwargs)
        ret = return_event(event_name, event_args, result)
        for sink in sinks:
            try:
                if _fi._active is not None:
                    _fi.fault_point(_FP_CALLER)
                sink(ret)
            except TemporalAssertionError:
                raise
            except Exception as exc:
                if not contain_sink_fault(sink, "caller", exc):
                    raise
        return result

    wrapper.__tesla_caller_wrapped__ = fn  # type: ignore[attr-defined]
    return wrapper


@dataclass
class CallSiteRewrite:
    """One caller-side rewrite, remembered so it can be undone."""

    module: types.ModuleType
    attribute: str
    original: Callable

    def undo(self) -> None:
        setattr(self.module, self.attribute, self.original)


def instrument_callers(
    modules: Sequence[types.ModuleType],
    function_name: str,
    sinks: List[EventSink],
    event_name: Optional[str] = None,
) -> List[CallSiteRewrite]:
    """Rewrite every reference to ``function_name`` inside ``modules``.

    Scans each module's globals for callables whose ``__name__`` matches
    and rebinds them to event-emitting wrappers — the moral equivalent of
    rewriting each call site in the caller's IR.  Raises if no call sites
    were found, because an assertion referencing a function nobody calls is
    almost always a typo.
    """
    rewrites: List[CallSiteRewrite] = []
    for module in modules:
        for attribute, value in list(vars(module).items()):
            if not callable(value):
                continue
            if getattr(value, "__tesla_caller_wrapped__", None) is not None:
                continue  # already instrumented in a previous pass
            if getattr(value, "__name__", None) != function_name:
                continue
            wrapper = make_call_wrapper(
                value, event_name or function_name, sinks
            )
            setattr(module, attribute, wrapper)
            rewrites.append(
                CallSiteRewrite(module=module, attribute=attribute, original=value)
            )
    if not rewrites:
        raise InstrumentationError(
            f"caller-side instrumentation found no call sites for "
            f"{function_name!r} in {[m.__name__ for m in modules]}"
        )
    return rewrites
