"""The instrumenter: weave a set of assertions into the running program.

This is the orchestration layer of section 4.2.  Given a program manifest
(or a bare list of assertions) and a :class:`~repro.runtime.manager.TeslaRuntime`,
an :class:`Instrumenter`:

1. translates the assertions into automata and installs them in the runtime;
2. builds an :class:`~repro.instrument.translator.EventTranslator` sink;
3. attaches the sink to every referenced hook point — callee-side through
   the :data:`~repro.instrument.hooks.hook_registry`, caller-side (for
   events marked ``caller`` or targets that were not built instrumentable)
   by rewriting call sites in the supplied caller modules, and
   dynamic-dispatch selectors through the interposition table;
4. enables the referenced assertion sites and structure-field hooks.

``uninstrument()`` undoes all of it, so test and benchmark configurations
can be swapped within one process — the equivalent of booting a different
kernel build.
"""

from __future__ import annotations

import types
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.ast import (
    FunctionCall,
    FunctionReturn,
    InstrumentationSide,
    TemporalAssertion,
    referenced_fields,
    referenced_functions,
    walk,
)
from ..core.manifest import ProgramManifest
from ..errors import InstrumentationError
from ..runtime.manager import TeslaRuntime
from .fields import attach_field_hook, detach_field_hook, field_registry
from .function import CallSiteRewrite, instrument_callers
from .hooks import (
    EventSink,
    HookPoint,
    hook_registry,
    site_registry,
)
from .interpose import interposition_table, tesla_method_hook
from .translator import EventTranslator


def _attribution(referrers: Sequence[TemporalAssertion]) -> str:
    """``(referenced by assertion 'x' at loc, …)`` — the lint-style source
    attribution appended to weaving errors so a failure inside a large
    manifest names its culprit assertions."""
    parts = []
    for assertion in referrers[:3]:
        where = f" at {assertion.location}" if assertion.location else ""
        parts.append(f"assertion {assertion.name!r}{where}")
    if len(referrers) > 3:
        parts.append(f"… ({len(referrers) - 3} more)")
    return f"(referenced by {', '.join(parts)})"


def _caller_side_functions(assertions: Sequence[TemporalAssertion]) -> Set[str]:
    """Function names whose events explicitly request caller-side hooks."""
    names: Set[str] = set()
    for assertion in assertions:
        roots = (
            assertion.bound.entry,
            assertion.bound.exit,
            assertion.expression,
        )
        for root in roots:
            for node in walk(root):
                if isinstance(node, (FunctionCall, FunctionReturn)):
                    if node.side is InstrumentationSide.CALLER:
                        names.add(node.function)
    return names


class Instrumenter:
    """One instrumentation session over one runtime."""

    def __init__(
        self,
        runtime: TeslaRuntime,
        caller_modules: Sequence[types.ModuleType] = (),
        objc_selectors: Iterable[str] = (),
    ) -> None:
        self.runtime = runtime
        self.caller_modules = list(caller_modules)
        #: Selectors dispatched dynamically — hooked via interposition
        #: rather than static hook points (the Objective-C path).
        self.objc_selectors = set(objc_selectors)
        self.translator = EventTranslator(runtime)
        self._attached_points: List[HookPoint] = []
        self._attached_sites: List[str] = []
        self._attached_fields: List[Tuple[type, str]] = []
        self._rewrites: List[CallSiteRewrite] = []
        self._interposed: List[Tuple[str, object]] = []
        self._caller_sinks: List[EventSink] = [self.translator]
        self._instrumented = False

    # -- weaving -----------------------------------------------------------

    def instrument(
        self,
        source: Union[ProgramManifest, Sequence[TemporalAssertion]],
    ) -> "Instrumenter":
        if self._instrumented:
            raise InstrumentationError("instrumenter already active")
        if isinstance(source, ProgramManifest):
            assertions = source.assertions
        else:
            assertions = list(source)
        self.runtime.install_assertions(assertions)
        self.translator.refresh()
        # tesla-prove handoff: assertions the runtime statically
        # discharged (prove="prune") were never installed, so weaving
        # their hooks would only tax the hot path for events nobody
        # dispatches on.  Skip them entirely — including their sites and
        # field hooks below.
        elided = getattr(self.runtime, "prove_elided", frozenset())
        if elided:
            assertions = [a for a in assertions if a.name not in elided]
        caller_requested = _caller_side_functions(assertions)

        functions: Dict[str, List[TemporalAssertion]] = {}
        for assertion in assertions:
            for name in referenced_functions(assertion):
                functions.setdefault(name, []).append(assertion)
        for name, referrers in functions.items():
            try:
                self._hook_function(name, caller_side=name in caller_requested)
            except InstrumentationError as error:
                raise InstrumentationError(
                    f"{error} {_attribution(referrers)}"
                ) from None

        for assertion in assertions:
            site_registry.attach(assertion.name, self.translator)
            self._attached_sites.append(assertion.name)
            for struct, field_name in referenced_fields(assertion):
                try:
                    cls = field_registry.require(struct)
                except InstrumentationError as error:
                    raise InstrumentationError(
                        f"{error} {_attribution([assertion])}"
                    ) from None
                attach_field_hook(cls, field_name, self.translator)
                self._attached_fields.append((cls, field_name))

        self._instrumented = True
        return self

    def _hook_function(self, name: str, caller_side: bool) -> None:
        if name in self.objc_selectors:
            hook = tesla_method_hook(self.translator)
            interposition_table.install(name, hook)
            self._interposed.append((name, hook))
            return
        point = hook_registry.get(name)
        if point is not None and not caller_side:
            point.attach(self.translator)
            self._attached_points.append(point)
            return
        # Either the event explicitly requested caller-side hooks, or the
        # target was not built instrumentable (a library we "cannot
        # recompile") — rewrite call sites instead.
        if not self.caller_modules:
            raise InstrumentationError(
                f"{name!r} needs caller-side instrumentation but no caller "
                f"modules were supplied"
            )
        self._rewrites.extend(
            instrument_callers(self.caller_modules, name, self._caller_sinks)
        )

    # -- unweaving -----------------------------------------------------------

    def uninstrument(self) -> None:
        for point in self._attached_points:
            point.detach(self.translator)
        self._attached_points.clear()
        for assertion_name in self._attached_sites:
            site_registry.detach(assertion_name, self.translator)
        self._attached_sites.clear()
        for cls, field_name in self._attached_fields:
            detach_field_hook(cls, field_name, self.translator)
        self._attached_fields.clear()
        for rewrite in self._rewrites:
            rewrite.undo()
        self._rewrites.clear()
        for selector, hook in self._interposed:
            interposition_table.remove(selector, hook)
        self._interposed.clear()
        self._instrumented = False

    def __enter__(self) -> "Instrumenter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstrument()
