"""Dynamic-dispatch interposition — the Objective-C instrumentation path.

In Objective-C "it is impossible to tell statically which method will be
invoked for a given message send", so TESLA modifies the runtime's
``objc_msgSend``: "before calling any method, the runtime consults a global
table of interposition hooks" (section 4.3).  This provides callee-side
instrumentation without source access, at a per-message cost that
figure 14a measures.

:mod:`repro.gui.runtime` is the simulated Objective-C runtime; its message
dispatcher consults this module's :class:`InterpositionTable`.  Three levels
of support mirror the figure's four build modes:

* table absent (``tracing_supported = False``) — the release build;
* table present but empty — "tracing enabled" (the guard cost);
* trivial hooks installed — "interposition" (hook-call cost);
* TESLA event hooks installed — full automaton processing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.events import EventKind, call_event, return_event
from ..errors import TemporalAssertionError
from ..runtime import faultinject as _fi
from ..runtime.epoch import interest_epoch, interest_stats
from ..runtime.faultinject import fault_site
from .hooks import EventSink, contain_sink_fault

_FP_INTERPOSE = fault_site("interpose.dispatch")

#: A raw interposition hook: (phase, receiver, selector, args, result).
#: ``phase`` is "send" before the method body runs and "return" after.
RawHook = Callable[[str, Any, str, Tuple[Any, ...], Any], None]


def _hook_interested(hook: RawHook, selector: str) -> bool:
    """Whether a hook's sink still observes this selector's events.

    TESLA event hooks carry their sink (``__tesla_sink__``, set by
    :func:`tesla_method_hook`); a sink advertising ``interested_in`` is
    asked about the selector's CALL/RETURN keys.  Raw hooks — trivial
    hooks, tracers — have no sink and are always interested.
    """
    sink = getattr(hook, "__tesla_sink__", None)
    if sink is None:
        return True
    probe = getattr(sink, "interested_in", None)
    if probe is None:
        return True
    return probe(
        ((EventKind.CALL, selector), (EventKind.RETURN, selector))
    )


class InterpositionTable:
    """The global table of interposition hooks consulted on message send.

    ``hooks_for`` answers are cached per selector and validated against the
    global :data:`~repro.runtime.epoch.interest_epoch`: install/remove/
    clear each bump the epoch, so a removed hook — or a hook whose sink's
    automata were uninstalled — cannot keep receiving message sends off a
    stale verdict.  Selectors whose every hook is a TESLA hook with an
    uninterested sink resolve to ``None``, restoring the table-absent fast
    path in the message dispatcher.
    """

    __slots__ = ("hooks", "wildcard", "_epoch", "_cache")

    def __init__(self) -> None:
        #: selector -> hooks; ``None`` marks the empty fast path.
        self.hooks: Optional[Dict[str, List[RawHook]]] = None
        #: hooks invoked for *every* selector (figure 8's trace-everything).
        self.wildcard: Optional[List[RawHook]] = None
        self._epoch = -1
        #: selector -> (hooks-or-None, all-hooks-filtered flag).
        self._cache: Dict[str, Tuple[Optional[List[RawHook]], bool]] = {}

    def install(self, selector: str, hook: RawHook) -> None:
        if self.hooks is None:
            self.hooks = {}
        self.hooks.setdefault(selector, []).append(hook)
        interest_epoch.bump()

    def install_wildcard(self, hook: RawHook) -> None:
        if self.wildcard is None:
            self.wildcard = []
        self.wildcard.append(hook)
        interest_epoch.bump()

    def remove(self, selector: str, hook: RawHook) -> None:
        if self.hooks is None:
            return
        hooks = self.hooks.get(selector)
        if hooks and hook in hooks:
            hooks.remove(hook)
            if not hooks:
                del self.hooks[selector]
        if not self.hooks:
            self.hooks = None
        # Invalidate cached verdicts so the removed hook stops firing.
        interest_epoch.bump()

    def clear(self) -> None:
        self.hooks = None
        self.wildcard = None
        interest_epoch.bump()

    def _compute(self, selector: str) -> Tuple[Optional[List[RawHook]], bool]:
        specific = None if self.hooks is None else self.hooks.get(selector)
        if self.wildcard is None:
            raw = specific
        elif specific is None:
            raw = self.wildcard
        else:
            raw = self.wildcard + specific
        if raw is None:
            return None, False
        live = [h for h in raw if _hook_interested(h, selector)]
        if not live:
            return None, True
        return live, False

    def hooks_for(self, selector: str) -> Optional[List[RawHook]]:
        """Every *interested* hook to run for one selector (wildcard +
        specific), or ``None`` when the message dispatcher can skip the
        interposition pass entirely."""
        if self._epoch != interest_epoch.value:
            self._epoch = interest_epoch.value
            self._cache.clear()
        cached = self._cache.get(selector, _UNCACHED)
        if cached is _UNCACHED:
            cached = self._cache[selector] = self._compute(selector)
            interest_stats.interpose_refreshes += 1
        result, filtered = cached
        if filtered:
            interest_stats.interpose_short_circuits += 1
        return result


_UNCACHED = (None, None)


#: The process-wide table, shared with the simulated Objective-C runtime.
interposition_table = InterpositionTable()


def tesla_method_hook(sink: EventSink) -> RawHook:
    """Build a hook translating message sends into TESLA events.

    The event name is the bare selector — assertions in the GNUstep use
    case reference selectors (``push``, ``pop``, ``drawWithFrame:inView:``),
    not classes, because the receiver's class is dynamic.
    """

    def hook(
        phase: str, receiver: Any, selector: str, args: Tuple[Any, ...], result: Any
    ) -> None:
        try:
            if _fi._active is not None:
                _fi.fault_point(_FP_INTERPOSE)
            if phase == "send":
                sink(call_event(selector, (receiver,) + args))
            else:
                sink(return_event(selector, (receiver,) + args, result))
        except TemporalAssertionError:
            raise
        except Exception as exc:
            if not contain_sink_fault(sink, "interpose", exc):
                raise

    # Expose the sink so the table's interest filter can consult it.
    hook.__tesla_sink__ = sink  # type: ignore[attr-defined]
    return hook


def trivial_hook(
    phase: str, receiver: Any, selector: str, args: Tuple[Any, ...], result: Any
) -> None:
    """The do-nothing interposition function of figure 14a's third mode."""
    return None
