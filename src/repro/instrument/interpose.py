"""Dynamic-dispatch interposition — the Objective-C instrumentation path.

In Objective-C "it is impossible to tell statically which method will be
invoked for a given message send", so TESLA modifies the runtime's
``objc_msgSend``: "before calling any method, the runtime consults a global
table of interposition hooks" (section 4.3).  This provides callee-side
instrumentation without source access, at a per-message cost that
figure 14a measures.

:mod:`repro.gui.runtime` is the simulated Objective-C runtime; its message
dispatcher consults this module's :class:`InterpositionTable`.  Three levels
of support mirror the figure's four build modes:

* table absent (``tracing_supported = False``) — the release build;
* table present but empty — "tracing enabled" (the guard cost);
* trivial hooks installed — "interposition" (hook-call cost);
* TESLA event hooks installed — full automaton processing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.events import call_event, return_event
from .hooks import EventSink

#: A raw interposition hook: (phase, receiver, selector, args, result).
#: ``phase`` is "send" before the method body runs and "return" after.
RawHook = Callable[[str, Any, str, Tuple[Any, ...], Any], None]


class InterpositionTable:
    """The global table of interposition hooks consulted on message send."""

    __slots__ = ("hooks", "wildcard")

    def __init__(self) -> None:
        #: selector -> hooks; ``None`` marks the empty fast path.
        self.hooks: Optional[Dict[str, List[RawHook]]] = None
        #: hooks invoked for *every* selector (figure 8's trace-everything).
        self.wildcard: Optional[List[RawHook]] = None

    def install(self, selector: str, hook: RawHook) -> None:
        if self.hooks is None:
            self.hooks = {}
        self.hooks.setdefault(selector, []).append(hook)

    def install_wildcard(self, hook: RawHook) -> None:
        if self.wildcard is None:
            self.wildcard = []
        self.wildcard.append(hook)

    def remove(self, selector: str, hook: RawHook) -> None:
        if self.hooks is None:
            return
        hooks = self.hooks.get(selector)
        if hooks and hook in hooks:
            hooks.remove(hook)
            if not hooks:
                del self.hooks[selector]
        if not self.hooks:
            self.hooks = None

    def clear(self) -> None:
        self.hooks = None
        self.wildcard = None

    def hooks_for(self, selector: str) -> Optional[List[RawHook]]:
        """Every hook to run for one selector (wildcard + specific)."""
        specific = None if self.hooks is None else self.hooks.get(selector)
        if self.wildcard is None:
            return specific
        if specific is None:
            return self.wildcard
        return self.wildcard + specific


#: The process-wide table, shared with the simulated Objective-C runtime.
interposition_table = InterpositionTable()


def tesla_method_hook(sink: EventSink) -> RawHook:
    """Build a hook translating message sends into TESLA events.

    The event name is the bare selector — assertions in the GNUstep use
    case reference selectors (``push``, ``pop``, ``drawWithFrame:inView:``),
    not classes, because the receiver's class is dynamic.
    """

    def hook(
        phase: str, receiver: Any, selector: str, args: Tuple[Any, ...], result: Any
    ) -> None:
        if phase == "send":
            sink(call_event(selector, (receiver,) + args))
        else:
            sink(return_event(selector, (receiver,) + args, result))

    return hook


def trivial_hook(
    phase: str, receiver: Any, selector: str, args: Tuple[Any, ...], result: Any
) -> None:
    """The do-nothing interposition function of figure 14a's third mode."""
    return None
