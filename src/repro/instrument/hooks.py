"""Program hooks: the instrumentation points woven into target code.

The original TESLA instrumenter rewrites LLVM IR, adding "program hooks that
identify program events" at function entries/returns and assertion sites.
Python has no IR pass, so this reproduction plants hooks at *decoration
time*: substrate functions are defined with :func:`instrumentable`, which
registers a :class:`HookPoint` keyed by the function's event name.  An
uninstrumented hook point costs one attribute load and a branch — the moral
equivalent of the not-yet-linked hook call in an uninstrumented build —
while an instrumented one synthesises CALL and RETURN events.

Assertion sites are planted with :func:`tesla_site`, the stand-in for the
``__tesla_inline_assertion`` pseudo-function call that the instrumenter
replaces with an event-translator invocation (section 4.2): disabled sites
are near-free; enabled ones emit an assertion-site event carrying the
site's local variable values.

When the runtime behind a sink runs the deferred pipeline (DESIGN §5.4),
``sink(event)`` *is* the enqueue fast path: the interest filter and the
translator's static checks run here as usual, and everything that
survives them is stamped into the calling thread's ring instead of being
dispatched inline.  Assertion-site events are synchronization points, so
a ``tesla_site`` call flushes the rings and a fail-stop
:class:`~repro.errors.TemporalAssertionError` raises through the same
re-raise branch synchronous dispatch uses — instrumented code cannot
tell the modes apart by where violations surface.  Faults injected at
the drain boundary (``drain.enqueue``) are contained here exactly like
``hooks.dispatch`` faults, via the sink's supervisor.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.events import (
    EventKind,
    RuntimeEvent,
    assertion_site_event,
    call_event,
    return_event,
)
from ..errors import InstrumentationError, TemporalAssertionError
from ..runtime import faultinject as _fi
from ..runtime.epoch import interest_epoch, interest_stats
from ..runtime.faultinject import fault_site

_FP_DISPATCH = fault_site("hooks.dispatch")
_FP_SITE = fault_site("hooks.site")

#: Anything that consumes concrete events (usually ``TeslaRuntime.handle_event``).
EventSink = Callable[[RuntimeEvent], None]


def contain_sink_fault(sink: EventSink, stage: str, exc: Exception) -> bool:
    """The outermost containment boundary, shared by every hook flavour.

    A fault that escaped the sink (translator chains, dispatch planning —
    anything the per-class boundary inside the runtime did not attribute)
    is routed to the sink's supervisor when it has one (event translators
    carry their runtime's).  Returns True when the caller must swallow
    ``exc`` instead of letting it cross into application frames; sinks
    without a supervisor keep the raw propagate-everything behaviour.
    ``TemporalAssertionError`` must be re-raised *before* calling this —
    fail-stop violations are deliberate, not monitor faults.
    """
    supervisor = getattr(sink, "supervisor", None)
    if supervisor is None:
        return False
    return supervisor.contain(f"({stage})", stage, exc)


class HookPoint:
    """One instrumentable function and its currently attached sinks.

    Beyond the raw sink list, a hook point caches which sinks are actually
    *interested* in its event name (a sink advertising ``interested_in``
    — the event translator — is asked; anything else is assumed
    interested).  The cache is validated against the global
    :data:`~repro.runtime.epoch.interest_epoch` on every instrumented
    call, so a hook whose sinks observe none of its events skips event
    construction entirely, and attach/detach invalidate promptly.
    """

    __slots__ = ("name", "function", "sinks", "_keys", "_epoch", "_live_sinks")

    def __init__(self, name: str, function: Callable) -> None:
        self.name = name
        self.function = function
        #: ``None`` when uninstrumented — the wrapper's fast-path check.
        self.sinks: Optional[List[EventSink]] = None
        self._keys = ((EventKind.CALL, name), (EventKind.RETURN, name))
        self._epoch = -1
        self._live_sinks: List[EventSink] = []

    def attach(self, sink: EventSink) -> None:
        if self.sinks is None:
            self.sinks = []
        if sink not in self.sinks:
            self.sinks.append(sink)
        interest_epoch.bump()

    def detach(self, sink: EventSink) -> None:
        if self.sinks is None:
            return
        if sink in self.sinks:
            self.sinks.remove(sink)
        if not self.sinks:
            self.sinks = None
        # The bump is load-bearing even though ``sinks`` shrank: another
        # sink's cached "interested" verdict may coexist with this one's,
        # and a stale cache would keep delivering events to the detached
        # sink's dead runtime.
        interest_epoch.bump()

    def detach_all(self) -> None:
        self.sinks = None
        interest_epoch.bump()

    def _refresh(self) -> List[EventSink]:
        """Rebuild the interested-sink cache for the current epoch."""
        self._epoch = interest_epoch.value
        live: List[EventSink] = []
        if self.sinks is not None:
            for sink in self.sinks:
                probe = getattr(sink, "interested_in", None)
                if probe is None or probe(self._keys):
                    live.append(sink)
        self._live_sinks = live
        interest_stats.hook_refreshes += 1
        return live

    def live_sinks(self) -> List[EventSink]:
        """The attached sinks interested in this hook's events (cached)."""
        if self._epoch != interest_epoch.value:
            return self._refresh()
        return self._live_sinks


class HookRegistry:
    """All hook points known to the process, keyed by event name."""

    def __init__(self) -> None:
        self._points: Dict[str, HookPoint] = {}

    def register(self, point: HookPoint) -> None:
        if point.name in self._points:
            raise InstrumentationError(
                f"hook point {point.name!r} registered twice"
            )
        self._points[point.name] = point

    def get(self, name: str) -> Optional[HookPoint]:
        return self._points.get(name)

    def require(self, name: str) -> HookPoint:
        point = self._points.get(name)
        if point is None:
            raise InstrumentationError(
                f"no instrumentable function named {name!r}; known: "
                f"{', '.join(sorted(self._points)) or '(none)'}"
            )
        return point

    def names(self) -> List[str]:
        return sorted(self._points)

    def detach_all(self) -> None:
        for point in self._points.values():
            point.detach_all()

    def _unregister(self, name: str) -> None:
        """Test helper: forget a hook point entirely."""
        self._points.pop(name, None)


#: The process-wide registry used by substrates and the instrumenter.
hook_registry = HookRegistry()


def instrumentable(
    name: Optional[str] = None, registry: HookRegistry = None
) -> Callable[[Callable], Callable]:
    """Mark a function as a TESLA instrumentation target.

    ``name`` defaults to the function's ``__name__`` — substrates use the
    same short names the paper's assertions use (``sopoll_generic``,
    ``mac_socket_check_poll`` …).  The returned wrapper is what everything,
    including function-pointer tables, should reference, so callee-side
    instrumentation observes indirect calls exactly as an IR-level rewrite
    would.
    """
    reg = registry if registry is not None else hook_registry

    def decorate(fn: Callable) -> Callable:
        event_name = name or fn.__name__
        point = HookPoint(event_name, fn)
        reg.register(point)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if point.sinks is None:
                return fn(*args, **kwargs)
            if point._epoch != interest_epoch.value:
                point._refresh()
            sinks = point._live_sinks
            if not sinks:
                # Instrumented but uninterested: no automaton observes this
                # event name, so skip event construction entirely.
                interest_stats.hook_short_circuits += 1
                return fn(*args, **kwargs)
            event_args = args if not kwargs else args + tuple(kwargs.values())
            call = call_event(event_name, event_args)
            for sink in sinks:
                try:
                    if _fi._active is not None:
                        _fi.fault_point(_FP_DISPATCH)
                    sink(call)
                except TemporalAssertionError:
                    raise
                except Exception as exc:
                    if not contain_sink_fault(sink, "dispatch", exc):
                        raise
            result = fn(*args, **kwargs)
            ret = return_event(event_name, event_args, result)
            for sink in sinks:
                try:
                    if _fi._active is not None:
                        _fi.fault_point(_FP_DISPATCH)
                    sink(ret)
                except TemporalAssertionError:
                    raise
                except Exception as exc:
                    if not contain_sink_fault(sink, "dispatch", exc):
                        raise
            return result

        wrapper.__tesla_hook__ = point  # type: ignore[attr-defined]
        return wrapper

    return decorate


class SiteRegistry:
    """All assertion sites, keyed by assertion name."""

    def __init__(self) -> None:
        self._sinks: Dict[str, List[EventSink]] = {}

    def attach(self, assertion_name: str, sink: EventSink) -> None:
        self._sinks.setdefault(assertion_name, []).append(sink)

    def detach(self, assertion_name: str, sink: EventSink) -> None:
        sinks = self._sinks.get(assertion_name)
        if sinks and sink in sinks:
            sinks.remove(sink)
            if not sinks:
                del self._sinks[assertion_name]

    def detach_all(self) -> None:
        self._sinks.clear()

    def sinks_for(self, assertion_name: str) -> Optional[List[EventSink]]:
        return self._sinks.get(assertion_name)


#: The process-wide assertion-site registry.
site_registry = SiteRegistry()


def tesla_site(assertion_name: str, **scope: Any) -> None:
    """An assertion site: the inline marker substrates write in their code.

    Disabled (no automaton instruments this assertion): a dict lookup and a
    return.  Enabled: emits an assertion-site event whose ``scope`` carries
    the named local values — "the values of variables named in the
    assertion are taken from the local scope and passed to the event
    translator" (section 4.2).
    """
    sinks = site_registry.sinks_for(assertion_name)
    if sinks is None:
        return
    event = assertion_site_event(assertion_name, scope)
    for sink in sinks:
        try:
            if _fi._active is not None:
                _fi.fault_point(_FP_SITE)
            sink(event)
        except TemporalAssertionError:
            raise
        except Exception as exc:
            if not contain_sink_fault(sink, "site", exc):
                raise
