"""Event translators: the generated glue between hooks and libtesla.

Section 4.2: the instrumenter generates, per hook, a translator with "two
tasks per automaton that references the event.  First, the generated code
checks static event parameters … Otherwise, the translator branches to the
static checks for the next automaton.  Second, if the static checks passed,
it allocates a fixed-size data structure …, populates it with the dynamic
variable–value mapping and passes it to libtesla's ``tesla_update_state``."

:class:`EventTranslator` reproduces that structure: a per-dispatch-key
chain of *static* matchers (constants, flags, bitmasks — everything except
dynamic variables) decides whether the event reaches the runtime at all.
An event that fails every static check is dropped at the translator — the
"only conditional control flow" fast path — without touching any automaton
instance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.ast import FieldAssign, FunctionCall, FunctionReturn
from ..core.automaton import Automaton, EventSymbol
from ..core.events import EventKind, RuntimeEvent
from ..core.patterns import Any_, Pattern, Var
from ..runtime.manager import DispatchKey, TeslaRuntime


def _static_pattern_ok(pattern: Pattern, value: Any) -> bool:
    """Match only the statically checkable part of a pattern.

    ``Var`` and ``Any_`` always pass here — their values are the *dynamic*
    mapping handled by ``tesla_update_state``.
    """
    if isinstance(pattern, (Var, Any_)):
        return True
    return pattern.match(value, {}) is not None


def static_match(symbol: EventSymbol, event: RuntimeEvent) -> bool:
    """The translator's first task: check static event parameters."""
    expr = symbol.expr
    if isinstance(expr, FunctionCall):
        if expr.args is None:
            return True
        if len(expr.args) != len(event.args):
            return False
        return all(
            _static_pattern_ok(p, v) for p, v in zip(expr.args, event.args)
        )
    if isinstance(expr, FunctionReturn):
        if expr.args is not None:
            if len(expr.args) != len(event.args):
                return False
            if not all(
                _static_pattern_ok(p, v) for p, v in zip(expr.args, event.args)
            ):
                return False
        if expr.retval is not None:
            return _static_pattern_ok(expr.retval, event.retval)
        return True
    if isinstance(expr, FieldAssign):
        if expr.op is not None and event.op is not expr.op:
            return False
        if expr.target is not None and not _static_pattern_ok(
            expr.target, event.target
        ):
            return False
        if expr.value is not None and not _static_pattern_ok(
            expr.value, event.retval
        ):
            return False
        return True
    # Assertion sites have no static parameters.
    return True


class EventTranslator:
    """A sink that statically filters events before the runtime sees them."""

    def __init__(self, runtime: TeslaRuntime) -> None:
        self.runtime = runtime
        #: dispatch key -> symbols whose static checks gate forwarding.
        self._chains: Dict[DispatchKey, List[EventSymbol]] = {}
        #: keys observed by ``strict`` automata, which must see every
        #: referenced event even if its static parameters mismatch.
        self._strict_keys: set = set()
        self._rebuild()
        #: Events dropped by static checks (visible to benchmarks/tests).
        self.dropped = 0
        self.forwarded = 0

    def _rebuild(self) -> None:
        self._chains.clear()
        self._strict_keys.clear()
        for automaton in self.runtime.automata.values():
            for t in automaton.transitions:
                if t.symbol is None:
                    continue
                symbol = automaton.symbols[t.symbol]
                kind, name = symbol.dispatch_key
                if kind is EventKind.ASSERTION_SITE:
                    key: DispatchKey = (kind, automaton.name)
                else:
                    key = (kind, name)
                chain = self._chains.setdefault(key, [])
                if symbol not in chain:
                    chain.append(symbol)
                if automaton.strict:
                    self._strict_keys.add(key)

    def refresh(self) -> None:
        """Rebuild chains after more automata are installed."""
        self._rebuild()

    def __call__(self, event: RuntimeEvent) -> None:
        key = (event.kind, event.name)
        chain = self._chains.get(key)
        if chain is None:
            self.dropped += 1
            return
        if key in self._strict_keys:
            self.forwarded += 1
            self.runtime.handle_event(event)
            return
        for symbol in chain:
            if static_match(symbol, event):
                self.forwarded += 1
                self.runtime.handle_event(event)
                return
        self.dropped += 1
