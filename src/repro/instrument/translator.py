"""Event translators: the generated glue between hooks and libtesla.

Section 4.2: the instrumenter generates, per hook, a translator with "two
tasks per automaton that references the event.  First, the generated code
checks static event parameters … Otherwise, the translator branches to the
static checks for the next automaton.  Second, if the static checks passed,
it allocates a fixed-size data structure …, populates it with the dynamic
variable–value mapping and passes it to libtesla's ``tesla_update_state``."

:class:`EventTranslator` reproduces that structure: a per-dispatch-key
chain of *static* matchers (constants, flags, bitmasks — everything except
dynamic variables) decides whether the event reaches the runtime at all.
An event that fails every static check is dropped at the translator — the
"only conditional control flow" fast path — without touching any automaton
instance.

Static filtering happens *before* capture in the deferred pipeline: an
event the chains drop never reaches the runtime, so it is never stamped
into a ring — deferred mode pays ring slots only for events some
installed automaton could consume, and the replay oracle's merged
sequence contains exactly the post-filter stream.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.ast import FieldAssign, FunctionCall, FunctionReturn
from ..core.automaton import Automaton, EventSymbol
from ..core.events import EventKind, RuntimeEvent
from ..core.patterns import Any_, Pattern, Var, compile_static_check
from ..runtime.epoch import interest_epoch
from ..runtime.manager import DispatchKey, TeslaRuntime


def _static_pattern_ok(pattern: Pattern, value: Any) -> bool:
    """Match only the statically checkable part of a pattern.

    ``Var`` and ``Any_`` always pass here — their values are the *dynamic*
    mapping handled by ``tesla_update_state``.
    """
    if isinstance(pattern, (Var, Any_)):
        return True
    return pattern.match(value, {}) is not None


def static_match(symbol: EventSymbol, event: RuntimeEvent) -> bool:
    """The translator's first task: check static event parameters."""
    expr = symbol.expr
    if isinstance(expr, FunctionCall):
        if expr.args is None:
            return True
        if len(expr.args) != len(event.args):
            return False
        return all(
            _static_pattern_ok(p, v) for p, v in zip(expr.args, event.args)
        )
    if isinstance(expr, FunctionReturn):
        if expr.args is not None:
            if len(expr.args) != len(event.args):
                return False
            if not all(
                _static_pattern_ok(p, v) for p, v in zip(expr.args, event.args)
            ):
                return False
        if expr.retval is not None:
            return _static_pattern_ok(expr.retval, event.retval)
        return True
    if isinstance(expr, FieldAssign):
        if expr.op is not None and event.op is not expr.op:
            return False
        if expr.target is not None and not _static_pattern_ok(
            expr.target, event.target
        ):
            return False
        if expr.value is not None and not _static_pattern_ok(
            expr.value, event.retval
        ):
            return False
        return True
    # Assertion sites have no static parameters.
    return True


#: A compiled static check: ``check(event) -> forward?``.
StaticCheck = Callable[[RuntimeEvent], bool]


def _compile_static_symbol(
    symbol: EventSymbol, elide_arity: bool = False
) -> Optional[StaticCheck]:
    """Compile :func:`static_match` for one symbol, or ``None`` when the
    symbol imposes no static constraint (it always forwards).

    The per-pattern work collapses to precompiled predicates over the
    argument positions that actually carry static patterns; fully dynamic
    positions (``Var``/``Any_``) cost nothing per event.

    ``elide_arity`` is the lint handoff (DESIGN §5.5): when tesla-lint has
    proven the hooked signature fixes the event arity at exactly the
    pattern arity, the ``len(event.args)`` guard is redundant — the hook
    wrapper flattens every bound argument, so a fixed-signature function
    cannot produce any other arity — and is compiled out.
    """
    expr = symbol.expr
    if isinstance(expr, FunctionCall):
        if expr.args is None:
            return None
        arity = len(expr.args)
        checks = tuple(
            (i, c)
            for i, c in enumerate(compile_static_check(p) for p in expr.args)
            if c is not None
        )
        if not checks:
            if elide_arity:
                return None

            def check_arity(event: RuntimeEvent, _n=arity) -> bool:
                return len(event.args) == _n

            return check_arity

        if elide_arity:

            def check_call_elided(event: RuntimeEvent, _cs=checks) -> bool:
                args = event.args
                for i, c in _cs:
                    if not c(args[i]):
                        return False
                return True

            return check_call_elided

        def check_call(event: RuntimeEvent, _n=arity, _cs=checks) -> bool:
            args = event.args
            if len(args) != _n:
                return False
            for i, c in _cs:
                if not c(args[i]):
                    return False
            return True

        return check_call
    if isinstance(expr, FunctionReturn):
        arity = None if expr.args is None else len(expr.args)
        arg_checks: Tuple[Tuple[int, Any], ...] = ()
        if expr.args is not None:
            arg_checks = tuple(
                (i, c)
                for i, c in enumerate(
                    compile_static_check(p) for p in expr.args
                )
                if c is not None
            )
        ret_check = (
            compile_static_check(expr.retval)
            if expr.retval is not None
            else None
        )
        if arity is None and ret_check is None:
            return None
        if elide_arity:
            arity = None  # the proven-fixed arity can never mismatch
        if arity is None and not arg_checks and ret_check is None:
            return None

        def check_return(
            event: RuntimeEvent,
            _n=arity,
            _cs=arg_checks,
            _rc=ret_check,
            _elide=elide_arity,
        ) -> bool:
            if _n is not None or _cs:
                args = event.args
                if _n is not None and len(args) != _n:
                    return False
                for i, c in _cs:
                    if not c(args[i]):
                        return False
            if _rc is not None and not _rc(event.retval):
                return False
            return True

        return check_return
    if isinstance(expr, FieldAssign):
        op = expr.op
        target_check = (
            compile_static_check(expr.target)
            if expr.target is not None
            else None
        )
        value_check = (
            compile_static_check(expr.value)
            if expr.value is not None
            else None
        )
        if op is None and target_check is None and value_check is None:
            return None

        def check_field(
            event: RuntimeEvent, _op=op, _t=target_check, _v=value_check
        ) -> bool:
            if _op is not None and event.op is not _op:
                return False
            if _t is not None and not _t(event.target):
                return False
            if _v is not None and not _v(event.retval):
                return False
            return True

        return check_field
    # Assertion sites have no static parameters.
    return None


#: Sentinel distinguishing "no chain for this key" from "chain with no
#: static constraints" (``None``) in the compiled chain map.
_NO_CHAIN = object()


class EventTranslator:
    """A sink that statically filters events before the runtime sees them."""

    def __init__(self, runtime: TeslaRuntime) -> None:
        self.runtime = runtime
        #: The runtime's supervisor, exposed so hook-layer containment
        #: boundaries can route faults that escape this sink to it.
        self.supervisor = getattr(runtime, "supervisor", None)
        #: dispatch key -> symbols whose static checks gate forwarding.
        self._chains: Dict[DispatchKey, List[EventSymbol]] = {}
        #: dispatch key -> compiled static checks; ``None`` means some
        #: symbol in the chain has no static constraint, so every event
        #: with this key forwards without running any check.
        self._compiled: Dict[DispatchKey, Any] = {}
        #: keys observed by ``strict`` automata, which must see every
        #: referenced event even if its static parameters mismatch.
        self._strict_keys: set = set()
        #: Arity guards compiled out under a clean lint report (the
        #: DESIGN §5.5 handoff); counted for benchmarks and health.
        self.arity_elided = 0
        self._rebuild()
        #: Events dropped by static checks (visible to benchmarks/tests).
        self.dropped = 0
        self.forwarded = 0
        register = getattr(runtime, "register_translator", None)
        if register is not None:
            register(self)

    def _rebuild(self) -> None:
        self._chains.clear()
        self._compiled.clear()
        self._strict_keys.clear()
        supervisor = self.supervisor
        shed = supervisor.shed_classes if supervisor is not None else ()
        for automaton in self.runtime.automata.values():
            if automaton.name in shed:
                # Quarantined classes drop out of the static chains, so a
                # key only they observed short-circuits at the hook layer.
                continue
            for t in automaton.transitions:
                if t.symbol is None:
                    continue
                symbol = automaton.symbols[t.symbol]
                kind, name = symbol.dispatch_key
                if kind is EventKind.ASSERTION_SITE:
                    key: DispatchKey = (kind, automaton.name)
                else:
                    key = (kind, name)
                chain = self._chains.setdefault(key, [])
                if symbol not in chain:
                    chain.append(symbol)
                if automaton.strict:
                    self._strict_keys.add(key)
        self.arity_elided = 0
        lint_clean = self._lint_clean()
        for key, chain in self._chains.items():
            checks = []
            for symbol in chain:
                elide = lint_clean and self._arity_proven(symbol)
                if elide:
                    self.arity_elided += 1
                checks.append(_compile_static_symbol(symbol, elide_arity=elide))
            if any(c is None for c in checks):
                self._compiled[key] = None
            else:
                self._compiled[key] = tuple(checks)

    def _lint_clean(self) -> bool:
        """Whether the runtime carries a clean tesla-lint report — the
        precondition for compiling out provably redundant dynamic checks."""
        report = getattr(self.runtime, "lint_report", None)
        return report is not None and report.clean

    @staticmethod
    def _arity_proven(symbol: EventSymbol) -> bool:
        """Whether the hooked signature fixes the event arity at exactly
        this symbol's pattern arity (the arity guard is then redundant:
        the hook wrapper flattens every bound argument, so a function
        with no defaults and no variadics always emits one arity)."""
        expr = symbol.expr
        if not isinstance(expr, (FunctionCall, FunctionReturn)):
            return False
        if expr.args is None:
            return False
        from .hooks import hook_registry

        point = hook_registry.get(expr.function)
        if point is None:
            return False
        from ..analysis.program import fixed_arity

        return fixed_arity(point.function) == len(expr.args)

    def refresh(self) -> None:
        """Rebuild chains after more automata are installed."""
        self._rebuild()
        # The set of keys this sink observes changed; hook points and the
        # interposition table must re-ask ``interested_in``.
        interest_epoch.bump()

    def interested_in(self, keys: Iterable[DispatchKey]) -> bool:
        """Whether this sink observes any of ``keys`` — the hook layer's
        interest probe (cached there against the interest epoch)."""
        chains = self._chains
        return any(key in chains for key in keys)

    def __call__(self, event: RuntimeEvent) -> None:
        key = (event.kind, event.name)
        checks = self._compiled.get(key, _NO_CHAIN)
        if checks is _NO_CHAIN:
            self.dropped += 1
            return
        if checks is None or key in self._strict_keys:
            self.forwarded += 1
            self.runtime.handle_event(event)
            return
        for check in checks:
            if check(event):
                self.forwarded += 1
                self.runtime.handle_event(event)
                return
        self.dropped += 1
