"""The TESLA instrumenter: hooks, event translators, and the build workflow.

Callee-side hooks come from :func:`instrumentable`; caller-side weaving
from :mod:`.function`; structure-field events from :class:`TeslaStruct`;
dynamic-dispatch (Objective-C–style) events from :mod:`.interpose`; and the
whole-program weaving session is :class:`Instrumenter`.
"""

from .build import BuildReport, BuildSystem, CompileUnit
from .fields import (
    FieldHookRegistry,
    TeslaStruct,
    attach_field_hook,
    detach_field_hook,
    field_add,
    field_and,
    field_dec,
    field_inc,
    field_or,
    field_registry,
    instrumentable_struct,
)
from .function import CallSiteRewrite, instrument_callers, make_call_wrapper
from .hooks import (
    EventSink,
    HookPoint,
    HookRegistry,
    SiteRegistry,
    hook_registry,
    instrumentable,
    site_registry,
    tesla_site,
)
from .interpose import (
    InterpositionTable,
    interposition_table,
    tesla_method_hook,
    trivial_hook,
)
from .module import Instrumenter
from .translator import EventTranslator, static_match

__all__ = [
    "BuildReport",
    "BuildSystem",
    "CompileUnit",
    "FieldHookRegistry",
    "TeslaStruct",
    "attach_field_hook",
    "detach_field_hook",
    "field_add",
    "field_and",
    "field_dec",
    "field_inc",
    "field_or",
    "field_registry",
    "instrumentable_struct",
    "CallSiteRewrite",
    "instrument_callers",
    "make_call_wrapper",
    "EventSink",
    "HookPoint",
    "HookRegistry",
    "SiteRegistry",
    "hook_registry",
    "instrumentable",
    "site_registry",
    "tesla_site",
    "InterpositionTable",
    "interposition_table",
    "tesla_method_hook",
    "trivial_hook",
    "Instrumenter",
    "EventTranslator",
    "static_match",
]
