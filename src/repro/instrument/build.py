"""The TESLA build workflow, simulated end to end (sections 4.1, 5.1).

Building with TESLA inserts extra stages into the compilation pipeline::

    default:  frontend ─ optimise ─ link
    TESLA:    frontend ─ analyse ─ [combine .tesla files] ─ instrument ─
              optimise ─ link

and — the expensive property — couples units together: "TESLA assertions in
any source file can reference events that are defined in any other source
file", so changing one assertion re-instruments *every* unit (the naive
strategy the paper measures as the ~500× incremental slowdown of
figure 10).

The pipeline here does real work on real sources: the frontend parses and
byte-compiles each unit's Python source, the analyser produces and saves
genuine ``.tesla`` manifests, the combine step merges them, and the
instrumenter re-translates automata and re-compiles affected units.  Times
are therefore measured, not synthesised; only the substrate (Python
compilation rather than Clang/LLVM) differs from the paper.
"""

from __future__ import annotations

import ast
import time
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.ast import TemporalAssertion, referenced_functions
from ..core.manifest import ProgramManifest, UnitManifest, combine
from ..core.translate import translate_all
from ..errors import InstrumentationError


@dataclass
class CompileUnit:
    """One compilation unit: a named source file plus its assertions."""

    name: str
    source: str
    assertions: List[TemporalAssertion] = field(default_factory=list)

    @classmethod
    def from_module(
        cls,
        module: types.ModuleType,
        assertions: Sequence[TemporalAssertion] = (),
    ) -> "CompileUnit":
        path = getattr(module, "__file__", None)
        if path is None:
            raise InstrumentationError(f"module {module.__name__} has no file")
        return cls(
            name=module.__name__,
            source=Path(path).read_text(),
            assertions=list(assertions),
        )

    def defined_functions(self) -> List[str]:
        """Top-level function names — what this unit 'exports'."""
        tree = ast.parse(self.source)
        return [
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


@dataclass
class BuildReport:
    """Wall-clock seconds per stage for one build."""

    stage_seconds: Dict[str, float] = field(default_factory=dict)
    units_compiled: int = 0
    units_instrumented: int = 0

    def add(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.stage_seconds.values())


class _Timer:
    def __init__(self, report: BuildReport, stage: str) -> None:
        self.report = report
        self.stage = stage

    def __enter__(self):
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.report.add(self.stage, time.perf_counter() - self.t0)


class BuildSystem:
    """A make-like driver over :class:`CompileUnit` objects.

    ``workdir`` receives build artefacts: byte-code markers, per-unit
    ``.tesla`` manifests and the combined program manifest, so incremental
    builds can check real staleness the way make checks timestamps.
    """

    def __init__(
        self,
        units: Sequence[CompileUnit],
        workdir: Union[str, Path],
        cache_automata: bool = False,
        lint: str = "off",
    ) -> None:
        if lint not in ("error", "warn", "off"):
            raise InstrumentationError(
                f"lint must be 'error', 'warn' or 'off', got {lint!r}"
            )
        self.units = list(units)
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._built: Dict[str, bool] = {}
        self._instrumented: Dict[str, bool] = {}
        self._combined: Optional[ProgramManifest] = None
        #: tesla-lint stage for TESLA builds (DESIGN §5.5): ``"warn"``
        #: records findings on :attr:`lint_report`, ``"error"`` also
        #: fails the build on any TESLA error, ``"off"`` skips the stage.
        self.lint = lint
        #: The last TESLA build's lint results (``None`` when ``lint="off"``
        #: or no TESLA build ran yet).
        self.lint_report = None
        #: Section 7's build-time fix: "our tool re-loading, re-parsing,
        #: and re-interpreting the same TESLA automaton description for
        #: every LLVM IR file" — with caching on, the combined manifest is
        #: parsed and translated once per change, not once per unit.
        self.cache_automata = cache_automata
        self._automata_cache: Optional[Tuple[bytes, list, set]] = None

    # -- stages ---------------------------------------------------------------

    def _frontend(self, unit: CompileUnit) -> ast.AST:
        """Parse + byte-compile, the Clang ``-O0`` front-end analogue."""
        tree = ast.parse(unit.source, filename=unit.name)
        compile(tree, unit.name, "exec")
        return tree

    def _optimise(self, unit: CompileUnit) -> int:
        """The ``opt -O2`` analogue: a full AST walk with a small rewrite
        (constant-expression counting stands in for folding)."""
        tree = ast.parse(unit.source, filename=unit.name)
        folds = 0
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.left, ast.Constant
            ) and isinstance(node.right, ast.Constant):
                folds += 1
        return folds

    def _analyse(self, unit: CompileUnit) -> UnitManifest:
        """Parse the unit's assertions and save its ``.tesla`` file."""
        manifest = UnitManifest(unit=unit.name, assertions=list(unit.assertions))
        manifest.save(self.workdir / f"{unit.name}.tesla.json")
        return manifest

    def _combine(self, manifests: List[UnitManifest]) -> ProgramManifest:
        combined = combine(manifests)
        combined.save(self.workdir / "program.tesla.json")
        return combined

    def _lint(self, combined: ProgramManifest, report: BuildReport) -> None:
        """The tesla-lint build stage: verify the combined manifest before
        any unit is instrumented, so a doomed assertion fails the build at
        analysis time — the paper's compile-time rejection — rather than
        surfacing as a runtime dispatch failure."""
        if self.lint == "off":
            return
        from ..analysis.lint import lint_assertions

        with _Timer(report, "lint"):
            self.lint_report = lint_assertions(combined.assertions)
        if self.lint == "error" and self.lint_report.errors:
            from ..errors import LintError

            raise LintError(self.lint_report)

    def _load_automata(self):
        """Load, parse and translate the combined manifest.

        Naive mode does this afresh for every unit (the paper's strategy);
        cached mode keys on the manifest bytes and reuses the translation.
        """
        path = self.workdir / "program.tesla.json"
        raw = path.read_bytes()
        if self.cache_automata and self._automata_cache is not None:
            cached_raw, automata, targets = self._automata_cache
            if cached_raw == raw:
                return automata, targets
        reloaded = ProgramManifest.load(path)
        automata = translate_all(reloaded.assertions)
        targets = {
            fn for a in reloaded.assertions for fn in referenced_functions(a)
        }
        if self.cache_automata:
            self._automata_cache = (raw, automata, targets)
        return automata, targets

    def _instrument(self, unit: CompileUnit, manifest: ProgramManifest) -> None:
        """Re-instrument one unit against the *combined* manifest.

        Mirrors the paper's naive strategy: every unit re-loads, re-parses
        and re-interprets the full automaton description, then re-generates
        its code (section 7 lists this as an acknowledged inefficiency) —
        unless ``cache_automata`` enables the section 7 fix.
        """
        automata, targets = self._load_automata()
        tree = ast.parse(unit.source, filename=unit.name)
        hooked = 0
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in targets:
                    hooked += 1
        # Re-codegen with hooks: a second byte-compilation of the unit.
        compile(tree, unit.name, "exec")
        marker = self.workdir / f"{unit.name}.instrumented"
        marker.write_text(f"automata={len(automata)} hooks={hooked}\n")

    # -- builds ---------------------------------------------------------------

    def clean_build(self, tesla: bool) -> BuildReport:
        """Build everything from scratch."""
        report = BuildReport()
        manifests: List[UnitManifest] = []
        for unit in self.units:
            with _Timer(report, "frontend"):
                self._frontend(unit)
            report.units_compiled += 1
            if tesla:
                with _Timer(report, "analyse"):
                    manifests.append(self._analyse(unit))
        if tesla:
            with _Timer(report, "combine"):
                combined = self._combine(manifests)
            self._lint(combined, report)
            for unit in self.units:
                with _Timer(report, "instrument"):
                    self._instrument(unit, combined)
                report.units_instrumented += 1
                self._instrumented[unit.name] = True
            self._combined = combined
        for unit in self.units:
            with _Timer(report, "optimise"):
                self._optimise(unit)
        for unit in self.units:
            self._built[unit.name] = True
        return report

    def incremental_build(
        self,
        changed_unit: str,
        tesla: bool,
        assertion_changed: bool = True,
    ) -> BuildReport:
        """Rebuild after one unit changed.

        Without TESLA only the changed unit is recompiled.  With TESLA, if
        the change touched (or may have touched) an assertion, the combined
        manifest changes and *every* unit is re-instrumented — the
        one-to-many property behind figure 10's incremental cliff.
        """
        unit = self._unit(changed_unit)
        report = BuildReport()
        with _Timer(report, "frontend"):
            self._frontend(unit)
        report.units_compiled += 1
        if not tesla:
            with _Timer(report, "optimise"):
                self._optimise(unit)
            return report
        with _Timer(report, "analyse"):
            self._analyse(unit)
        if assertion_changed:
            with _Timer(report, "combine"):
                manifests = [
                    UnitManifest(unit=u.name, assertions=list(u.assertions))
                    for u in self.units
                ]
                combined = self._combine(manifests)
            self._lint(combined, report)
            for other in self.units:
                with _Timer(report, "instrument"):
                    self._instrument(other, combined)
                report.units_instrumented += 1
            for other in self.units:
                with _Timer(report, "optimise"):
                    self._optimise(other)
        else:
            if self._combined is None:
                raise InstrumentationError("no prior clean TESLA build")
            with _Timer(report, "instrument"):
                self._instrument(unit, self._combined)
            report.units_instrumented += 1
            with _Timer(report, "optimise"):
                self._optimise(unit)
        return report

    def _unit(self, name: str) -> CompileUnit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise InstrumentationError(f"unknown unit {name!r}")
