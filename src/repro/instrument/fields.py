"""Structure-field assignment instrumentation.

TESLA's second concrete event type is assignment to a structure field
(section 3.4.1), hooked by rewriting the store instruction — "the code that
modifies the structure field is the code that must be modified" (there is
no callee context).  The Python equivalent intercepts attribute assignment:
substrate structures derive from :class:`TeslaStruct`, whose ``__setattr__``
consults a per-class hook table.  Uninstrumented classes pay one class
attribute load; instrumented fields synthesise FIELD_ASSIGN events carrying
the structure instance, the new value and the assignment operator.

Compound assignment (``s.foo += 1`` / ``s.foo++``) reaches ``__setattr__``
as a plain store in Python, so substrates use :func:`field_inc` /
:func:`field_add` where the C original uses compound operators; these emit
the correct :class:`~repro.core.ast.AssignOp` so assertions can distinguish
``=`` from ``+=`` exactly as the paper's grammar allows.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..core.ast import AssignOp
from ..core.events import RuntimeEvent, field_assign_event
from ..errors import InstrumentationError, TemporalAssertionError
from ..runtime import faultinject as _fi
from ..runtime.faultinject import fault_site
from .hooks import EventSink, contain_sink_fault

_FP_FIELD = fault_site("fields.dispatch")


def _deliver_field_event(sinks: List[EventSink], event: RuntimeEvent) -> None:
    """Fan a field-assign event out to its sinks, containing monitor faults.

    Shared by plain ``__setattr__`` stores and the compound-assignment
    helpers so the application's store always completes even when a sink's
    runtime misbehaves (fail-open supervisors swallow; others propagate).
    """
    for sink in sinks:
        try:
            if _fi._active is not None:
                _fi.fault_point(_FP_FIELD)
            sink(event)
        except TemporalAssertionError:
            raise
        except Exception as exc:
            if not contain_sink_fault(sink, "field", exc):
                raise


class TeslaStruct:
    """Base class for structures whose field assignments TESLA can observe.

    Subclasses behave like plain mutable objects until a field hook is
    attached via :func:`attach_field_hook`.  The struct's event name is the
    class name (override with ``TESLA_STRUCT_NAME`` when the C struct's
    name differs from the Python class's).
    """

    #: class-level: field name -> list of sinks.  ``None`` = fast path.
    _tesla_field_sinks: Optional[Dict[str, List[EventSink]]] = None

    def __setattr__(self, name: str, value: Any) -> None:
        sinks_map = type(self)._tesla_field_sinks
        if sinks_map is not None:
            sinks = sinks_map.get(name)
            if sinks is not None:
                event = field_assign_event(
                    struct=tesla_struct_name(type(self)),
                    field_name=name,
                    target=self,
                    value=value,
                    op=AssignOp.SET,
                )
                _deliver_field_event(sinks, event)
        object.__setattr__(self, name, value)


def tesla_struct_name(cls: Type) -> str:
    """The struct's event name: TESLA_STRUCT_NAME or the class name."""
    return getattr(cls, "TESLA_STRUCT_NAME", cls.__name__)


class FieldHookRegistry:
    """Struct classes registered for field instrumentation."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[TeslaStruct]] = {}

    def register(self, cls: Type[TeslaStruct]) -> Type[TeslaStruct]:
        name = tesla_struct_name(cls)
        existing = self._classes.get(name)
        if existing is not None and existing is not cls:
            raise InstrumentationError(
                f"struct name {name!r} registered by two classes"
            )
        self._classes[name] = cls
        return cls

    def require(self, name: str) -> Type[TeslaStruct]:
        cls = self._classes.get(name)
        if cls is None:
            raise InstrumentationError(
                f"no instrumentable struct named {name!r}; known: "
                f"{', '.join(sorted(self._classes)) or '(none)'}"
            )
        return cls

    def names(self) -> List[str]:
        return sorted(self._classes)

    def detach_all(self) -> None:
        for cls in self._classes.values():
            cls._tesla_field_sinks = None


#: Process-wide struct registry; substrates register at import.
field_registry = FieldHookRegistry()


def instrumentable_struct(cls: Type[TeslaStruct]) -> Type[TeslaStruct]:
    """Class decorator registering a struct for field instrumentation."""
    if not issubclass(cls, TeslaStruct):
        raise InstrumentationError(
            f"{cls.__name__} must derive from TeslaStruct to be instrumented"
        )
    return field_registry.register(cls)


def attach_field_hook(
    cls: Type[TeslaStruct], field_name: str, sink: EventSink
) -> None:
    """Instrument assignments to one field of one struct class."""
    if cls._tesla_field_sinks is None:
        # Each class gets its own dict (never inherit the parent's hooks).
        cls._tesla_field_sinks = {}
    elif "_tesla_field_sinks" not in cls.__dict__:
        cls._tesla_field_sinks = dict(cls._tesla_field_sinks)
    sinks = cls._tesla_field_sinks.setdefault(field_name, [])
    if sink not in sinks:
        sinks.append(sink)


def detach_field_hook(
    cls: Type[TeslaStruct], field_name: str, sink: EventSink
) -> None:
    """Remove a field sink; restores the fast path when none remain."""
    sinks_map = cls.__dict__.get("_tesla_field_sinks")
    if not sinks_map:
        return
    sinks = sinks_map.get(field_name)
    if sinks and sink in sinks:
        sinks.remove(sink)
        if not sinks:
            del sinks_map[field_name]
    if not sinks_map:
        cls._tesla_field_sinks = None


def _emit_compound(obj: TeslaStruct, field_name: str, value: Any, op: AssignOp) -> None:
    sinks_map = type(obj)._tesla_field_sinks
    if sinks_map is not None:
        sinks = sinks_map.get(field_name)
        if sinks is not None:
            event = field_assign_event(
                struct=tesla_struct_name(type(obj)),
                field_name=field_name,
                target=obj,
                value=value,
                op=op,
            )
            _deliver_field_event(sinks, event)
    object.__setattr__(obj, field_name, value)


def field_inc(obj: TeslaStruct, field_name: str) -> Any:
    """``s.field++`` — compound increment with the INCREMENT operator."""
    value = getattr(obj, field_name) + 1
    _emit_compound(obj, field_name, value, AssignOp.INCREMENT)
    return value


def field_dec(obj: TeslaStruct, field_name: str) -> Any:
    """``s.field--``."""
    value = getattr(obj, field_name) - 1
    _emit_compound(obj, field_name, value, AssignOp.DECREMENT)
    return value


def field_add(obj: TeslaStruct, field_name: str, delta: Any) -> Any:
    """``s.field += delta``."""
    value = getattr(obj, field_name) + delta
    _emit_compound(obj, field_name, value, AssignOp.ADD)
    return value


def field_or(obj: TeslaStruct, field_name: str, bits: int) -> int:
    """``s.field |= bits`` — how the kernel sets flags such as P_SUGID."""
    value = getattr(obj, field_name) | bits
    _emit_compound(obj, field_name, value, AssignOp.OR)
    return value


def field_and(obj: TeslaStruct, field_name: str, bits: int) -> int:
    """``s.field &= bits``."""
    value = getattr(obj, field_name) & bits
    _emit_compound(obj, field_name, value, AssignOp.AND)
    return value
