"""Exception and error-report types shared across the TESLA reproduction.

TESLA distinguishes *tool* errors (a malformed assertion, a manifest that
cannot be combined) from *temporal* errors (the program's observed behaviour
contradicts an assertion).  Temporal errors are ordinarily routed through the
runtime's event-notification framework (``repro.runtime.events``) so that the
fail-stop policy is configurable, exactly as in the paper (section 4.4.2);
the exception classes here are what the fail-stop policy raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class TeslaError(Exception):
    """Base class for every error raised by this library."""


class AssertionParseError(TeslaError):
    """An assertion expression is structurally invalid.

    Raised by the analyser during translation, mirroring a Clang-side
    diagnostic in the original tool.  When the analyser knows which
    assertion it was translating it attaches the attribution — the
    assertion's name, declared source ``location`` and DSL expression —
    and prefixes the message with it, so a rejection deep inside a batch
    install names its culprit.
    """

    def __init__(
        self,
        message: str,
        assertion: str = "",
        location: str = "",
        expression: str = "",
    ) -> None:
        self.assertion = assertion
        self.location = location
        self.expression = expression
        #: The diagnosis alone, without the attribution prefix.
        self.plain_message = message
        if assertion:
            where = f" (at {location})" if location else ""
            message = f"in assertion {assertion!r}{where}: {message}"
            if expression:
                message = f"{message} [{expression}]"
        super().__init__(message)


class ManifestError(TeslaError):
    """A ``.tesla`` manifest could not be read, written or combined."""


class LintError(TeslaError):
    """tesla-lint found errors and the caller asked for them to be fatal.

    Raised by ``TeslaRuntime(lint="error")`` and
    ``BuildSystem(..., lint="error")`` when a batch of assertions fails
    static verification; ``report`` carries the full
    :class:`~repro.analysis.diagnostics.LintReport`.
    """

    def __init__(self, report: Any) -> None:
        findings = "; ".join(f.format() for f in report.errors[:3])
        more = len(report.errors) - 3
        if more > 0:
            findings += f"; … ({more} more)"
        super().__init__(
            f"tesla-lint found {len(report.errors)} error(s): {findings}"
        )
        self.report = report


class InstrumentationError(TeslaError):
    """A target named by an automaton could not be instrumented.

    For example: a function event names a callable that does not exist in
    the target module, or a field event names a class without that field.
    """


class ContextError(TeslaError):
    """An automaton was used with the wrong store context.

    Global-context automata must live in the global store and thread-local
    ones in a per-thread store; mixing them up is a programming error, not a
    temporal violation.
    """


class JournalError(TeslaError):
    """A trace journal could not be written or read.

    Covers usage errors (journalling a synchronous runtime, an unsupported
    schema version) — anything wrong with how a journal is *used* rather
    than with its bytes.
    """


class JournalCorruption(JournalError):
    """A trace journal's bytes are damaged: bad magic, a CRC mismatch, or
    a record frame truncated mid-write.

    ``recovered`` counts the records decoded before the damage and
    ``offset`` is where in the byte stream it was found, so offline replay
    can report exactly how much of a crashed run's trace survives.
    """

    def __init__(self, message: str, recovered: int = 0, offset: int = 0) -> None:
        super().__init__(
            f"{message} (at byte {offset}; {recovered} record(s) recovered)"
        )
        self.recovered = recovered
        self.offset = offset


class BoundsOverflowError(TeslaError):
    """A preallocated instance pool overflowed.

    The kernel runtime preallocates a fixed-size block per thread (section
    4.4.1); overflow is *reported* so the preallocation size can be adjusted
    on the next run.  Whether it raises is a policy decision.
    """

    def __init__(self, automaton: str, limit: int) -> None:
        super().__init__(
            f"automaton {automaton!r}: instance pool overflow (limit={limit})"
        )
        self.automaton = automaton
        self.limit = limit


@dataclass(frozen=True)
class TemporalViolation:
    """A structured description of one temporal-assertion failure.

    Attributes mirror what libtesla reports through its notification
    framework: which automaton failed, the event that could not be matched,
    the variable binding observed at the failure point, and where in the
    instrumented program the failure was noticed.
    """

    automaton: str
    reason: str
    event: Optional[Any] = None
    binding: Tuple[Tuple[str, Any], ...] = field(default=())
    location: str = ""
    #: Honesty annotation for the overhead governor (DESIGN §5.8): the
    #: 1-in-N instantiation rate the automaton was running under when the
    #: violation was found.  1 means full coverage; a rate > 1 means the
    #: finding came from a sampled automaton and must never be read as
    #: exhaustive.  Defaults to 1 so unsampled findings — including every
    #: pre-governor caller — are byte-identical to before.
    sampling_rate: int = 1

    def describe(self) -> str:
        bind = ", ".join(f"{k}={v!r}" for k, v in self.binding)
        parts = [f"TESLA violation in {self.automaton}: {self.reason}"]
        if bind:
            parts.append(f"binding ({bind})")
        if self.event is not None:
            described = getattr(self.event, "describe", None)
            parts.append(f"on event {described() if described else self.event}")
        if self.location:
            parts.append(f"at {self.location}")
        if self.sampling_rate > 1:
            parts.append(
                f"found under 1-in-{self.sampling_rate} sampling "
                "(coverage is partial)"
            )
        return "; ".join(parts)


class TemporalAssertionError(TeslaError, AssertionError):
    """Raised by the default fail-stop policy on a temporal violation.

    Subclasses :class:`AssertionError` so test harnesses that catch plain
    assertion failures also catch temporal ones.
    """

    def __init__(self, violation: TemporalViolation) -> None:
        super().__init__(violation.describe())
        self.violation = violation
