"""The assembled kernel: boot state and the user-space entry point.

:class:`KernelSystem` glues together the root filesystem, the process
table and the syscall dispatcher.  It is the "machine" the benchmarks and
use cases run against: ``kernel.syscall(td, "open", ("/etc/passwd",))``
enters :func:`~repro.kernel.syscalls.amd64_syscall`, opening the temporal
bound every ``TESLA_SYSCALL_PREVIOUSLY`` automaton lives within.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .mac.framework import mac_framework
from .mac.policy import MacPolicy
from .syscalls import amd64_syscall
from .types import Proc, Thread, Ucred, crget
from .vfs.ufs import make_ufs_mount
from .vfs.vnode import VDIR, VREG, Inode, Mount


class KernelSystem:
    """One booted kernel instance."""

    def __init__(self) -> None:
        self.rootfs: Mount = make_ufs_mount("ufs-root")
        #: Bound socket addresses, the loopback "routing table".
        self.bound_sockets: dict = {}
        self.processes: List[Proc] = []
        self.threads: List[Thread] = []
        self.init_proc: Optional[Proc] = None
        self._booted = False

    # -- boot ---------------------------------------------------------------

    def boot(self, populate: bool = True) -> Thread:
        """Create init (pid ~100, uid 0) and optionally a standard tree."""
        cred = crget(cr_uid=0, cr_gid=0, cr_label=10)
        self.init_proc = Proc(cred, kernel=self, comm="init")
        self.processes.append(self.init_proc)
        td = Thread(self.init_proc)
        self.threads.append(td)
        if populate:
            self._populate()
        self._booted = True
        return td

    def _populate(self) -> None:
        root = self.rootfs.root_inode
        for name in ("etc", "bin", "tmp", "home", "boot"):
            root.i_entries[name] = Inode(VDIR, i_mode=0o755)
        etc = root.i_entries["etc"]
        passwd = Inode(VREG, i_mode=0o644)
        passwd.i_data = b"root:0:0\nuser:1001:1001\n"
        etc.i_entries["passwd"] = passwd
        motd = Inode(VREG, i_mode=0o644)
        motd.i_data = b"welcome to the TESLA reproduction kernel\n"
        etc.i_entries["motd"] = motd
        bindir = root.i_entries["bin"]
        sh = Inode(VREG, i_mode=0o755)
        sh.i_data = b"#!ELF sh"
        bindir.i_entries["sh"] = sh
        passwd_tool = Inode(VREG, i_mode=0o4755, i_uid=0)  # setuid root
        passwd_tool.i_data = b"#!ELF passwd"
        bindir.i_entries["passwd"] = passwd_tool
        boot = root.i_entries["boot"]
        module = Inode(VREG, i_mode=0o600)
        module.i_data = b"\x7fKLD mac_mls"
        boot.i_entries["mac_mls.ko"] = module

    # -- processes -----------------------------------------------------------

    def spawn(
        self, uid: int = 0, gid: int = 0, label: int = 10, comm: str = "proc"
    ) -> Thread:
        """Create a process with its own credential and return its thread."""
        proc = Proc(crget(cr_uid=uid, cr_gid=gid, cr_label=label), kernel=self, comm=comm)
        self.processes.append(proc)
        td = Thread(proc)
        self.threads.append(td)
        return td

    # -- entry ----------------------------------------------------------------

    def syscall(self, td: Thread, name: str, args: Tuple[Any, ...] = ()) -> Any:
        """Enter the kernel: the user-space trap into ``amd64_syscall``."""
        return amd64_syscall(td, name, args)

    # -- policy ----------------------------------------------------------------

    def load_policy(self, policy: MacPolicy) -> None:
        mac_framework.register(policy)

    def unload_policy(self, policy: MacPolicy) -> None:
        mac_framework.unregister(policy)
