"""Benchmark and test-suite workloads for the simulated kernel.

Synthetic equivalents of the paper's measurement programs, each driving the
same instrumented kernel paths with the same character:

* :func:`lmbench_open_close` — the lmbench suite's ``open close``
  microbenchmark (figure 11a): a tight open/close syscall loop.
* :func:`oltp_workload` — SysBench OLTP's socket-intensive profile
  (figure 11b): request/response transactions over kernel sockets against
  a small in-memory table.
* :func:`build_workload` — the Clang-build FS/compute profile
  (figure 11b): read source files, "compile" (hash/transform), write
  objects.
* :func:`interprocess_test_suite` — the analogue of FreeBSD's
  inter-process access-control regression tests: exercises signals,
  debugging, wait and exec, but *not* procfs, CPUSET or POSIX rtsched —
  reproducing the 26-of-37-unexercised coverage result.
* :func:`full_exercise` — touches every facility, including the
  deprecated ones; used to verify that assertions *can* all be exercised.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from .net.socket import AF_INET, POLLIN, SOCK_STREAM
from .procfs import READ_NODES, RW_NODES, procfs_mount, procfs_unmount
from .system import KernelSystem
from .types import FREAD, FWRITE, Thread


def lmbench_open_close(kernel: KernelSystem, td: Thread, iterations: int = 1000) -> int:
    """Open and close ``/etc/passwd`` in a tight loop; returns syscalls made."""
    for _ in range(iterations):
        error, fd = kernel.syscall(td, "open", ("/etc/passwd",))
        assert error == 0, f"open failed: errno {error}"
        error = kernel.syscall(td, "close", (fd,))
        assert error == 0, f"close failed: errno {error}"
    return iterations * 2


class MiniOltp:
    """A toy transaction server speaking over kernel sockets.

    One request = ``GET <key>`` or ``PUT <key> <value>`` against an
    in-memory table; the "network" is the kernel's loopback transport, so
    every transaction performs the create/connect/send/poll/recv syscall
    mix that makes SysBench OLTP socket-intensive.
    """

    def __init__(self, kernel: KernelSystem, server_td: Thread) -> None:
        self.kernel = kernel
        self.server_td = server_td
        self.table: Dict[str, str] = {f"row{i}": f"value{i}" for i in range(64)}
        error, self.listen_fd = kernel.syscall(server_td, "socket", (AF_INET, SOCK_STREAM))
        assert error == 0
        error = kernel.syscall(server_td, "bind", (self.listen_fd, ("127.0.0.1", 3306)))
        assert error == 0
        error = kernel.syscall(server_td, "listen", (self.listen_fd,))
        assert error == 0

    def transaction(self, client_td: Thread, query: str) -> str:
        kernel = self.kernel
        error, cfd = kernel.syscall(client_td, "socket", (AF_INET, SOCK_STREAM))
        assert error == 0
        error = kernel.syscall(client_td, "connect", (cfd, ("127.0.0.1", 3306)))
        assert error == 0
        error, sfd = kernel.syscall(self.server_td, "accept", (self.listen_fd,))
        assert error == 0
        error = kernel.syscall(client_td, "send", (cfd, query.encode()))
        assert error == 0
        # The server polls, receives, executes and replies.
        error, ready = kernel.syscall(self.server_td, "poll", ([sfd], POLLIN))
        assert error == 0
        error, raw = kernel.syscall(self.server_td, "recv", (sfd,))
        assert error == 0
        reply = self._execute(raw.decode())
        error = kernel.syscall(self.server_td, "send", (sfd, reply.encode()))
        assert error == 0
        # The client polls for and reads the reply.
        error, ready = kernel.syscall(client_td, "poll", ([cfd], POLLIN))
        assert error == 0
        error, raw = kernel.syscall(client_td, "recv", (cfd,))
        assert error == 0
        kernel.syscall(client_td, "close", (cfd,))
        self.kernel.syscall(self.server_td, "close", (sfd,))
        return raw.decode()

    def _execute(self, query: str) -> str:
        parts = query.split()
        if parts[0] == "GET":
            return self.table.get(parts[1], "NULL")
        if parts[0] == "PUT":
            self.table[parts[1]] = parts[2]
            return "OK"
        return "ERR"


def oltp_workload(
    kernel: KernelSystem, client_td: Thread, server_td: Thread, transactions: int = 100
) -> int:
    """Run ``transactions`` GET/PUT round trips; returns transactions done."""
    oltp = MiniOltp(kernel, server_td)
    for i in range(transactions):
        key = f"row{i % 64}"
        if i % 4 == 3:
            reply = oltp.transaction(client_td, f"PUT {key} v{i}")
            assert reply == "OK"
        else:
            reply = oltp.transaction(client_td, f"GET {key}")
            assert reply != "ERR"
    return transactions


def _prepare_build_tree(kernel: KernelSystem, td: Thread, n_sources: int) -> List[str]:
    kernel.syscall(td, "mkdir", ("/home/src",))
    kernel.syscall(td, "mkdir", ("/home/obj",))
    paths = []
    for i in range(n_sources):
        path = f"/home/src/file{i}.c"
        error, fd = kernel.syscall(td, "creat", (path,))
        if error != 0:  # already prepared by an earlier run: rewrite it
            error, fd = kernel.syscall(td, "open", (path, FWRITE))
        assert error == 0
        body = (f"int f{i}(int x) {{ return x * {i + 1}; }}\n" * 20).encode()
        error = kernel.syscall(td, "write", (fd, body))
        assert error == 0
        kernel.syscall(td, "close", (fd,))
        paths.append(path)
    return paths


def build_workload(
    kernel: KernelSystem, td: Thread, n_sources: int = 20, passes: int = 1
) -> int:
    """A compiler-like workload: stat + read each source, compute, write
    the object file.  FS- and compute-intensive, light on sockets."""
    sources = _prepare_build_tree(kernel, td, n_sources)
    compiled = 0
    for _ in range(passes):
        for index, path in enumerate(sources):
            error, attrs = kernel.syscall(td, "stat", (path,))
            assert error == 0
            error, fd = kernel.syscall(td, "open", (path,))
            assert error == 0
            error, source = kernel.syscall(td, "read", (fd, 1 << 16))
            assert error == 0
            kernel.syscall(td, "close", (fd,))
            # "Compile": a deterministic transform over the source text.
            digest = hashlib.sha256(source).digest()
            obj = digest * 8
            obj_path = f"/home/obj/file{index}.o"
            error, fd = kernel.syscall(td, "creat", (obj_path,))
            if error != 0:  # rebuild pass: the object exists, open instead
                error, fd = kernel.syscall(td, "open", (obj_path, FWRITE))
                assert error == 0
            error = kernel.syscall(td, "write", (fd, obj))
            assert error == 0
            kernel.syscall(td, "close", (fd,))
            compiled += 1
    return compiled


def interprocess_test_suite(kernel: KernelSystem, td: Thread) -> Dict[str, int]:
    """The FreeBSD inter-process access-control regression suite analogue.

    Exercises the core signal/debug/wait/exec/fork paths — but, like the
    real suite, predates CPUSET, ignores POSIX rtsched, and cannot reach
    procfs (disabled by default).  The coverage report over this run shows
    26 of the 37 P assertions unexercised.
    """
    results: Dict[str, int] = {}
    error, child = kernel.syscall(td, "fork", ())
    results["fork"] = error
    child_td = kernel.spawn(uid=td.td_ucred.cr_uid, label=td.td_ucred.cr_label)
    results["kill"] = kernel.syscall(td, "kill", (child.p_pid, 15))
    results["ptrace"] = kernel.syscall(td, "ptrace", (child.p_pid,))
    results["wait4"] = kernel.syscall(td, "wait4", (child.p_pid,))
    results["execve"] = kernel.syscall(td, "execve", ("/bin/sh",))
    results["setuid"] = kernel.syscall(td, "setuid", (td.td_ucred.cr_uid,))
    results["setgid"] = kernel.syscall(td, "setgid", (td.td_ucred.cr_gid,))
    return results


def full_exercise(kernel: KernelSystem, td: Thread) -> Dict[str, int]:
    """Touch every assertion-bearing facility, including procfs (mounted
    for the occasion), CPUSET and rtsched."""
    results = dict(interprocess_test_suite(kernel, td))
    error, child = kernel.syscall(td, "fork", ())
    pid = child.p_pid
    results["rtprio_set"] = kernel.syscall(td, "rtprio_set", (pid, 10))
    results["rtprio_get"] = kernel.syscall(td, "rtprio_get", (pid,))[0]
    results["sched_setparam"] = kernel.syscall(td, "sched_setparam", (pid, 5))
    results["sched_getparam"] = kernel.syscall(td, "sched_getparam", (pid,))[0]
    results["sched_setscheduler"] = kernel.syscall(td, "sched_setscheduler", (pid, 1, 5))
    results["cpuset_set"] = kernel.syscall(td, "cpuset_set", (pid, 1))
    results["cpuset_get"] = kernel.syscall(td, "cpuset_get", (pid,))[0]
    procfs_mount()
    try:
        for node in READ_NODES + RW_NODES:
            results[f"procfs_read_{node}"] = kernel.syscall(
                td, "procfs_read", (pid, node)
            )[0]
        for node in RW_NODES:
            results[f"procfs_write_{node}"] = kernel.syscall(
                td, "procfs_write", (pid, node, b"\x00")
            )
        results["procfs_ctl"] = kernel.syscall(td, "procfs_ctl", (pid, "attach"))
    finally:
        procfs_unmount()
    return results
