"""The MAC Framework mechanism: policy composition and hook dispatch.

Mirrors FreeBSD's ``mac_framework``: the kernel registers zero or more
policies; every ``mac_*_check_*`` entry point composes them with
AND-semantics — the first non-zero (denying) result wins.  An empty policy
list means "mechanism compiled in, no policy loaded": all checks return 0,
which is how the paper's assertions can verify *that checks happen* without
any policy actually denying.
"""

from __future__ import annotations

import threading
from typing import Any, List

from ..types import Ucred
from .policy import MacPolicy


class MacFramework:
    """Registered policies plus the composition loop."""

    def __init__(self) -> None:
        self._policies: List[MacPolicy] = []
        self._lock = threading.Lock()
        #: Count of hook invocations, per hook name (visible to tests).
        self.hook_counts: dict = {}

    def register(self, policy: MacPolicy) -> None:
        with self._lock:
            self._policies.append(policy)

    def unregister(self, policy: MacPolicy) -> None:
        with self._lock:
            if policy in self._policies:
                self._policies.remove(policy)

    def unregister_all(self) -> None:
        with self._lock:
            self._policies.clear()

    @property
    def policies(self) -> List[MacPolicy]:
        return list(self._policies)

    def check(self, hook: str, cred: Ucred, obj: Any, arg: Any = None) -> int:
        """Compose all policies: first denial wins, otherwise 0."""
        self.hook_counts[hook] = self.hook_counts.get(hook, 0) + 1
        for policy in self._policies:
            error = policy.check(hook, cred, obj, arg)
            if error != 0:
                return error
        return 0


#: The kernel-wide framework instance consulted by every check entry point.
mac_framework = MacFramework()
