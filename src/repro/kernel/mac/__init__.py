"""The Mandatory Access Control framework: mechanism, hooks and policies."""

from .framework import MacFramework, mac_framework
from .policy import DenyPolicy, MacPolicy, MlsPolicy

__all__ = ["MacFramework", "mac_framework", "DenyPolicy", "MacPolicy", "MlsPolicy"]
