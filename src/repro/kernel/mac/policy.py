"""MAC policies: the *policy* half of the FreeBSD MAC Framework split.

"The FreeBSD MAC Framework separates mechanism — hooks throughout the
kernel — " from policy modules that decide.  A policy here is an object
with ``check(hook, cred, obj, arg)`` returning 0 or an errno; the framework
(:mod:`repro.kernel.mac.framework`) composes registered policies with
AND-semantics (any denial denies), as the real framework does.
"""

from __future__ import annotations

from typing import Any, Optional

from ..types import EACCES, EPERM, Ucred


class MacPolicy:
    """Base policy: allow everything (the mechanism-only configuration)."""

    name = "mac_none"

    def check(self, hook: str, cred: Ucred, obj: Any, arg: Any = None) -> int:
        return 0


class MlsPolicy(MacPolicy):
    """A miniature MLS-style policy over integer sensitivity labels.

    Subjects (credentials) and objects (vnodes, sockets, processes) carry
    integer labels; reads require subject ≥ object ("no read up"), writes
    require subject ≤ object ("no write down"), and control operations
    (signal, debug, sched) require subject ≥ object.
    """

    name = "mac_mls_mini"

    READ_HOOKS = frozenset(
        {
            "vnode_check_open",
            "vnode_check_read",
            "vnode_check_readdir",
            "vnode_check_readlink",
            "vnode_check_stat",
            "vnode_check_lookup",
            "vnode_check_listextattr",
            "vnode_check_getextattr",
            "vnode_check_getacl",
            "vnode_check_exec",
            "vnode_check_mmap",
            "socket_check_receive",
            "socket_check_poll",
            "socket_check_stat",
            "socket_check_accept",
            "socket_check_getsockopt",
            "kld_check_load",
            "proc_check_wait",
        }
    )

    WRITE_HOOKS = frozenset(
        {
            "vnode_check_write",
            "vnode_check_create",
            "vnode_check_unlink",
            "vnode_check_rename_from",
            "vnode_check_rename_to",
            "vnode_check_link",
            "vnode_check_setmode",
            "vnode_check_setowner",
            "vnode_check_setutimes",
            "vnode_check_setextattr",
            "vnode_check_deleteextattr",
            "vnode_check_setacl",
            "vnode_check_deleteacl",
            "vnode_check_revoke",
            "socket_check_send",
            "socket_check_bind",
            "socket_check_connect",
            "socket_check_listen",
            "socket_check_create",
            "socket_check_setsockopt",
        }
    )

    CONTROL_HOOKS = frozenset(
        {
            "proc_check_signal",
            "proc_check_debug",
            "proc_check_sched",
            "proc_check_setuid",
            "proc_check_setgid",
            "proc_check_rtprio",
            "proc_check_cpuset",
            "cred_check_relabel",
            "cred_check_visible",
            "procfs_check_read",
            "procfs_check_write",
            "procfs_check_ctl",
        }
    )

    def _label_of(self, obj: Any) -> int:
        for attribute in ("v_label", "so_label", "p_label", "cr_label", "label"):
            value = getattr(obj, attribute, None)
            if value is not None:
                return value
        if hasattr(obj, "p_ucred"):
            return obj.p_ucred.cr_label
        return 0

    def check(self, hook: str, cred: Ucred, obj: Any, arg: Any = None) -> int:
        subject = cred.cr_label
        target = self._label_of(obj)
        if hook in self.READ_HOOKS:
            return 0 if subject >= target else EACCES
        if hook in self.WRITE_HOOKS:
            # "no write down": a high subject may not write a low object.
            return 0 if subject <= target else EACCES
        if hook in self.CONTROL_HOOKS:
            return 0 if subject >= target else EPERM
        return 0


class DenyPolicy(MacPolicy):
    """Deny a configurable set of hooks — handy for failure injection."""

    name = "mac_deny"

    def __init__(self, denied_hooks: Optional[frozenset] = None) -> None:
        self.denied_hooks = frozenset(denied_hooks or ())

    def check(self, hook: str, cred: Ucred, obj: Any, arg: Any = None) -> int:
        if hook in self.denied_hooks:
            return EACCES
        return 0
