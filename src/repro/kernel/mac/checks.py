"""The ``mac_*_check_*`` entry points — the hooks "throughout the kernel".

Each function is the kernel-side entry point for one MAC hook, mirroring
FreeBSD's ``mac.h`` surface for the facilities this reproduction models:
vnodes (25 hooks), sockets (11), processes/credentials (10), procfs,
CPUSET and POSIX real-time scheduling.  All are built instrumentable so
TESLA assertions can observe their calls and return values — these are
exactly the functions named by the Table-1 assertion sets.

Every entry point delegates to the framework's policy composition; with no
policy registered they return 0, with the mini-MLS policy they enforce
label dominance.
"""

from __future__ import annotations

from typing import Any

from ...instrument.hooks import instrumentable
from ..types import Thread, Ucred
from .framework import mac_framework

# ---------------------------------------------------------------------------
# vnode hooks (the MF assertion set)
# ---------------------------------------------------------------------------


@instrumentable()
def mac_vnode_check_open(cred: Ucred, vp: Any, accmode: int = 0) -> int:
    """Authorise opening ``vp`` (but *not* exec or module load — figure 7)."""
    return mac_framework.check("vnode_check_open", cred, vp, accmode)


@instrumentable()
def mac_vnode_check_read(cred: Ucred, file_cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_read``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_read", cred, vp, file_cred)


@instrumentable()
def mac_vnode_check_write(cred: Ucred, file_cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_write``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_write", cred, vp, file_cred)


@instrumentable()
def mac_vnode_check_exec(cred: Ucred, vp: Any) -> int:
    """Authorise executing a binary — one of the open-like operations with
    its own hook, which surprised the paper's authors."""
    return mac_framework.check("vnode_check_exec", cred, vp)


@instrumentable()
def mac_vnode_check_lookup(cred: Ucred, dvp: Any, name: str = "") -> int:
    """MAC hook ``vnode_check_lookup``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_lookup", cred, dvp, name)


@instrumentable()
def mac_vnode_check_create(cred: Ucred, dvp: Any, name: str = "") -> int:
    """MAC hook ``vnode_check_create``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_create", cred, dvp, name)


@instrumentable()
def mac_vnode_check_unlink(cred: Ucred, dvp: Any, vp: Any = None) -> int:
    """MAC hook ``vnode_check_unlink``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_unlink", cred, dvp, vp)


@instrumentable()
def mac_vnode_check_rename_from(cred: Ucred, dvp: Any, vp: Any = None) -> int:
    """MAC hook ``vnode_check_rename_from``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_rename_from", cred, dvp, vp)


@instrumentable()
def mac_vnode_check_rename_to(cred: Ucred, dvp: Any, vp: Any = None) -> int:
    """MAC hook ``vnode_check_rename_to``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_rename_to", cred, dvp, vp)


@instrumentable()
def mac_vnode_check_readdir(cred: Ucred, dvp: Any) -> int:
    """MAC hook ``vnode_check_readdir``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_readdir", cred, dvp)


@instrumentable()
def mac_vnode_check_readlink(cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_readlink``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_readlink", cred, vp)


@instrumentable()
def mac_vnode_check_stat(cred: Ucred, file_cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_stat``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_stat", cred, vp, file_cred)


@instrumentable()
def mac_vnode_check_setmode(cred: Ucred, vp: Any, mode: int = 0) -> int:
    """MAC hook ``vnode_check_setmode``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_setmode", cred, vp, mode)


@instrumentable()
def mac_vnode_check_setowner(cred: Ucred, vp: Any, uid: int = 0, gid: int = 0) -> int:
    """MAC hook ``vnode_check_setowner``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_setowner", cred, vp, (uid, gid))


@instrumentable()
def mac_vnode_check_setutimes(cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_setutimes``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_setutimes", cred, vp)


@instrumentable()
def mac_vnode_check_getextattr(cred: Ucred, vp: Any, name: str = "") -> int:
    """MAC hook ``vnode_check_getextattr``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_getextattr", cred, vp, name)


@instrumentable()
def mac_vnode_check_setextattr(cred: Ucred, vp: Any, name: str = "") -> int:
    """MAC hook ``vnode_check_setextattr``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_setextattr", cred, vp, name)


@instrumentable()
def mac_vnode_check_deleteextattr(cred: Ucred, vp: Any, name: str = "") -> int:
    """MAC hook ``vnode_check_deleteextattr``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_deleteextattr", cred, vp, name)


@instrumentable()
def mac_vnode_check_listextattr(cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_listextattr``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_listextattr", cred, vp)


@instrumentable()
def mac_vnode_check_getacl(cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_getacl``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_getacl", cred, vp)


@instrumentable()
def mac_vnode_check_setacl(cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_setacl``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_setacl", cred, vp)


@instrumentable()
def mac_vnode_check_deleteacl(cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_deleteacl``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_deleteacl", cred, vp)


@instrumentable()
def mac_vnode_check_link(cred: Ucred, dvp: Any, vp: Any = None) -> int:
    """MAC hook ``vnode_check_link``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_link", cred, dvp, vp)


@instrumentable()
def mac_vnode_check_mmap(cred: Ucred, vp: Any, prot: int = 0) -> int:
    """MAC hook ``vnode_check_mmap``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_mmap", cred, vp, prot)


@instrumentable()
def mac_vnode_check_revoke(cred: Ucred, vp: Any) -> int:
    """MAC hook ``vnode_check_revoke``: authorise via the policy composition."""
    return mac_framework.check("vnode_check_revoke", cred, vp)


@instrumentable()
def mac_kld_check_load(cred: Ucred, vp: Any) -> int:
    """Authorise loading a kernel module — the third open-like operation."""
    return mac_framework.check("kld_check_load", cred, vp)


# ---------------------------------------------------------------------------
# socket hooks (the MS assertion set)
# ---------------------------------------------------------------------------


@instrumentable()
def mac_socket_check_create(cred: Ucred, domain: int = 0, so_type: int = 0) -> int:
    """MAC hook ``socket_check_create``: authorise via the policy composition."""
    return mac_framework.check("socket_check_create", cred, (domain, so_type))


@instrumentable()
def mac_socket_check_bind(cred: Ucred, so: Any, addr: Any = None) -> int:
    """MAC hook ``socket_check_bind``: authorise via the policy composition."""
    return mac_framework.check("socket_check_bind", cred, so, addr)


@instrumentable()
def mac_socket_check_listen(cred: Ucred, so: Any) -> int:
    """MAC hook ``socket_check_listen``: authorise via the policy composition."""
    return mac_framework.check("socket_check_listen", cred, so)


@instrumentable()
def mac_socket_check_connect(cred: Ucred, so: Any, addr: Any = None) -> int:
    """MAC hook ``socket_check_connect``: authorise via the policy composition."""
    return mac_framework.check("socket_check_connect", cred, so, addr)


@instrumentable()
def mac_socket_check_accept(cred: Ucred, so: Any) -> int:
    """MAC hook ``socket_check_accept``: authorise via the policy composition."""
    return mac_framework.check("socket_check_accept", cred, so)


@instrumentable()
def mac_socket_check_send(cred: Ucred, so: Any) -> int:
    """MAC hook ``socket_check_send``: authorise via the policy composition."""
    return mac_framework.check("socket_check_send", cred, so)


@instrumentable()
def mac_socket_check_receive(cred: Ucred, so: Any) -> int:
    """MAC hook ``socket_check_receive``: authorise via the policy composition."""
    return mac_framework.check("socket_check_receive", cred, so)


@instrumentable()
def mac_socket_check_poll(cred: Ucred, so: Any) -> int:
    """The figure 4 check: poll/select (and kqueue!) must call this."""
    return mac_framework.check("socket_check_poll", cred, so)


@instrumentable()
def mac_socket_check_stat(cred: Ucred, so: Any) -> int:
    """MAC hook ``socket_check_stat``: authorise via the policy composition."""
    return mac_framework.check("socket_check_stat", cred, so)


@instrumentable()
def mac_socket_check_setsockopt(cred: Ucred, so: Any, opt: int = 0) -> int:
    """MAC hook ``socket_check_setsockopt``: authorise via the policy composition."""
    return mac_framework.check("socket_check_setsockopt", cred, so, opt)


@instrumentable()
def mac_socket_check_getsockopt(cred: Ucred, so: Any, opt: int = 0) -> int:
    """MAC hook ``socket_check_getsockopt``: authorise via the policy composition."""
    return mac_framework.check("socket_check_getsockopt", cred, so, opt)


# ---------------------------------------------------------------------------
# process & credential hooks (the MP assertion set)
# ---------------------------------------------------------------------------


@instrumentable()
def mac_proc_check_signal(cred: Ucred, proc: Any, signum: int = 0) -> int:
    """MAC hook ``proc_check_signal``: authorise via the policy composition."""
    return mac_framework.check("proc_check_signal", cred, proc, signum)


@instrumentable()
def mac_proc_check_debug(cred: Ucred, proc: Any) -> int:
    """MAC hook ``proc_check_debug``: authorise via the policy composition."""
    return mac_framework.check("proc_check_debug", cred, proc)


@instrumentable()
def mac_proc_check_sched(cred: Ucred, proc: Any) -> int:
    """MAC hook ``proc_check_sched``: authorise via the policy composition."""
    return mac_framework.check("proc_check_sched", cred, proc)


@instrumentable()
def mac_proc_check_wait(cred: Ucred, proc: Any) -> int:
    """MAC hook ``proc_check_wait``: authorise via the policy composition."""
    return mac_framework.check("proc_check_wait", cred, proc)


@instrumentable()
def mac_proc_check_setuid(cred: Ucred, uid: int = 0) -> int:
    """MAC hook ``proc_check_setuid``: authorise via the policy composition."""
    return mac_framework.check("proc_check_setuid", cred, uid)


@instrumentable()
def mac_proc_check_setgid(cred: Ucred, gid: int = 0) -> int:
    """MAC hook ``proc_check_setgid``: authorise via the policy composition."""
    return mac_framework.check("proc_check_setgid", cred, gid)


@instrumentable()
def mac_proc_check_rtprio(cred: Ucred, proc: Any, prio: int = 0) -> int:
    """POSIX real-time scheduling authorisation (the rtsched facility)."""
    return mac_framework.check("proc_check_rtprio", cred, proc, prio)


@instrumentable()
def mac_proc_check_cpuset(cred: Ucred, proc: Any, setid: int = 0) -> int:
    """CPU-affinity set authorisation (the CPUSET facility)."""
    return mac_framework.check("proc_check_cpuset", cred, proc, setid)


@instrumentable()
def mac_cred_check_relabel(cred: Ucred, newlabel: int = 0) -> int:
    """MAC hook ``cred_check_relabel``: authorise via the policy composition."""
    return mac_framework.check("cred_check_relabel", cred, newlabel)


@instrumentable()
def mac_cred_check_visible(cred: Ucred, other: Ucred = None) -> int:
    """MAC hook ``cred_check_visible``: authorise via the policy composition."""
    return mac_framework.check("cred_check_visible", cred, other)


# ---------------------------------------------------------------------------
# procfs hooks (the deprecated facility behind 19 unexercised assertions)
# ---------------------------------------------------------------------------


@instrumentable()
def mac_procfs_check_read(cred: Ucred, proc: Any, node: str = "") -> int:
    """MAC hook ``procfs_check_read``: authorise via the policy composition."""
    return mac_framework.check("procfs_check_read", cred, proc, node)


@instrumentable()
def mac_procfs_check_write(cred: Ucred, proc: Any, node: str = "") -> int:
    """MAC hook ``procfs_check_write``: authorise via the policy composition."""
    return mac_framework.check("procfs_check_write", cred, proc, node)


@instrumentable()
def mac_procfs_check_ctl(cred: Ucred, proc: Any, command: str = "") -> int:
    """MAC hook ``procfs_check_ctl``: authorise via the policy composition."""
    return mac_framework.check("procfs_check_ctl", cred, proc, command)
