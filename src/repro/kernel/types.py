"""Core kernel structures: credentials, processes, threads, files.

A miniature analogue of the FreeBSD structures the paper's assertions talk
about.  Field and structure names follow the originals (``ucred``,
``proc``, ``thread``, ``file``, ``fileops``) so the assertions in
:mod:`repro.kernel.assertions` read like the paper's figures.  Mutable
structures derive from :class:`~repro.instrument.fields.TeslaStruct` so
field assignments (``p_flag |= P_SUGID``) are observable events.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ..instrument.fields import TeslaStruct, instrumentable_struct

# --------------------------------------------------------------------------
# errno values (the subset the simulated kernel returns)
# --------------------------------------------------------------------------

EPERM = 1
ENOENT = 2
ESRCH = 3
EBADF = 9
EACCES = 13
EEXIST = 17
ENOTDIR = 20
ELOOP = 62
EISDIR = 21
EINVAL = 22
ENOSYS = 78

# --------------------------------------------------------------------------
# process flags
# --------------------------------------------------------------------------

#: Set when a process changed credentials; debuggers must honour it.
P_SUGID = 0x0001
#: Process is being traced.
P_TRACED = 0x0002

# --------------------------------------------------------------------------
# vn_rdwr flags
# --------------------------------------------------------------------------

#: Internal I/O: MAC checks are intentionally skipped (figure 7).
IO_NOMACCHECK = 0x0100
IO_UNIT = 0x0001
IO_APPEND = 0x0002

# file open modes
FREAD = 0x0001
FWRITE = 0x0002
FEXEC = 0x0004

_pid_counter = itertools.count(100)
_tid_counter = itertools.count(100000)


@instrumentable_struct
class Ucred(TeslaStruct):
    """A credential (``struct ucred``): uid/gid plus a MAC label.

    ``cr_label`` is an integer sensitivity level consumed by the sample
    MLS-style policy in :mod:`repro.kernel.mac.policy` (higher = more
    privileged).
    """

    TESLA_STRUCT_NAME = "ucred"

    def __init__(self, cr_uid: int = 0, cr_gid: int = 0, cr_label: int = 0) -> None:
        self.cr_uid = cr_uid
        self.cr_gid = cr_gid
        self.cr_label = cr_label
        self.cr_ref = 1

    def __repr__(self) -> str:
        return f"<ucred uid={self.cr_uid} label={self.cr_label}>"


def crget(cr_uid: int = 0, cr_gid: int = 0, cr_label: int = 0) -> Ucred:
    """Allocate a credential."""
    return Ucred(cr_uid=cr_uid, cr_gid=cr_gid, cr_label=cr_label)


def crcopy(cred: Ucred) -> Ucred:
    """Copy-on-write credential duplication."""
    return Ucred(cr_uid=cred.cr_uid, cr_gid=cred.cr_gid, cr_label=cred.cr_label)


@instrumentable_struct
class Proc(TeslaStruct):
    """A process (``struct proc``)."""

    TESLA_STRUCT_NAME = "proc"

    def __init__(self, cred: Ucred, kernel: "Any" = None, comm: str = "init") -> None:
        self.p_pid = next(_pid_counter)
        self.p_comm = comm
        self.p_ucred = cred
        self.p_flag = 0
        self.p_kernel = kernel
        self.p_fd: List[Optional["File"]] = []
        self.p_children: List["Proc"] = []
        #: POSIX real-time scheduling parameters (the rtsched facility).
        self.p_rtprio = 0
        #: CPU affinity set id (the CPUSET facility).
        self.p_cpuset = 0

    def __repr__(self) -> str:
        return f"<proc {self.p_pid} {self.p_comm!r}>"


@instrumentable_struct
class Thread(TeslaStruct):
    """A kernel thread (``struct thread``).

    ``td_ucred`` is the *active* credential — the one MAC checks must use.
    The cached per-file credential (``File.f_cred``) is the one the wrong-
    credential bug passes instead.
    """

    TESLA_STRUCT_NAME = "thread"

    def __init__(self, proc: Proc) -> None:
        self.td_tid = next(_tid_counter)
        self.td_proc = proc
        self.td_ucred = proc.p_ucred
        self.td_retval = 0

    def __repr__(self) -> str:
        return f"<thread {self.td_tid} of {self.td_proc!r}>"


class Fileops:
    """The per-file operations vector (``struct fileops``) — the first
    layer of indirection in figure 3."""

    __slots__ = ("fo_read", "fo_write", "fo_poll", "fo_close", "fo_kqfilter")

    def __init__(
        self,
        fo_read: Optional[Callable] = None,
        fo_write: Optional[Callable] = None,
        fo_poll: Optional[Callable] = None,
        fo_close: Optional[Callable] = None,
        fo_kqfilter: Optional[Callable] = None,
    ) -> None:
        self.fo_read = fo_read
        self.fo_write = fo_write
        self.fo_poll = fo_poll
        self.fo_close = fo_close
        self.fo_kqfilter = fo_kqfilter


@instrumentable_struct
class File(TeslaStruct):
    """An open file (``struct file``): data pointer, ops vector, and the
    credential cached at open time (``f_cred``)."""

    TESLA_STRUCT_NAME = "file"

    def __init__(self, f_data: Any, f_ops: Fileops, f_cred: Ucred, f_flag: int = 0) -> None:
        self.f_data = f_data
        self.f_ops = f_ops
        self.f_cred = f_cred
        self.f_flag = f_flag
        self.f_count = 1
        self.f_offset = 0

    def __repr__(self) -> str:
        return f"<file data={self.f_data!r}>"


def fo_poll(fp: File, events: int, active_cred: Ucred, td: Thread) -> int:
    """The static inline dispatcher of figure 3: one indirection hop."""
    return fp.f_ops.fo_poll(fp, events, active_cred, td)


def fo_read(fp: File, uio: Any, active_cred: Ucred, flags: int, td: Thread) -> int:
    """Dispatch a read through the file's operations vector."""
    return fp.f_ops.fo_read(fp, uio, active_cred, flags, td)


def fo_write(fp: File, uio: Any, active_cred: Ucred, flags: int, td: Thread) -> int:
    """Dispatch a write through the file's operations vector."""
    return fp.f_ops.fo_write(fp, uio, active_cred, flags, td)
