"""The kernel assertion sets of Table 1.

"We annotated the FreeBSD kernel with 84 assertions documenting 37
inter-process security properties and 47 Mandatory Access Control (MAC)
properties", benchmarked as the sets:

========  =========================  ==========
Symbol    Description                Assertions
========  =========================  ==========
MF        MAC (filesystem)                   25
MS        MAC (sockets)                      11
MP        MAC (processes)                    10
M         All MAC assertions                 48
P         Process lifetimes                  37
All       All TESLA assertions               96
========  =========================  ==========

``M`` is MF ∪ MS ∪ MP plus two facility-spanning assertions (exec and
kernel-module loading); ``All`` is M ∪ P plus the 11 infrastructure test
assertions enabled in the "Infrastructure" benchmark configuration.

Every assertion here is anchored at a real ``tesla_site`` in the kernel
code and references real ``mac_*`` hook functions, so instrumenting a set
genuinely hooks those code paths.  ``TESLA_SYSCALL_PREVIOUSLY`` is the
paper's convenience macro: bounded by ``amd64_syscall`` entry/exit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.ast import AssignOp, Context, Expression, FieldAssign, TemporalAssertion
from ..core.dsl import (
    ANY,
    call,
    incallstack,
    either,
    eventually,
    flags,
    fn,
    optionally,
    previously,
    returned,
    tesla_within,
    tsequence,
    var,
)
from .procfs import READ_NODES, RW_NODES
from .types import IO_NOMACCHECK, P_SUGID, P_TRACED

#: The function bounding every syscall-scoped assertion (figure 9).
SYSCALL = "amd64_syscall"
#: The second temporal bound: page-fault–initiated file-system I/O.
PFAULT = "trap_pfault"


def tesla_syscall_previously(
    expression: Any, name: str, tags: Tuple[str, ...]
) -> TemporalAssertion:
    """``TESLA_SYSCALL_PREVIOUSLY(expr)`` — within the current system call,
    ``expr`` must already have happened when the site is reached."""
    return tesla_within(
        SYSCALL, previously(expression), name=name, tags=tags, location="kernel"
    )


def tesla_syscall_eventually(
    expression: Any, name: str, tags: Tuple[str, ...]
) -> TemporalAssertion:
    """Within the current system call, ``expr`` must happen after the site."""
    return tesla_within(
        SYSCALL, eventually(expression), name=name, tags=tags, location="kernel"
    )


# ---------------------------------------------------------------------------
# MF: MAC (filesystem) — 25 assertions
# ---------------------------------------------------------------------------


def _mf_assertions() -> List[TemporalAssertion]:
    mf: List[TemporalAssertion] = []
    tags = ("MF", "mac", "filesystem")

    # Figure 7, first assertion: three authorisation paths into ufs_open.
    mf.append(
        tesla_syscall_previously(
            either(
                fn("mac_kld_check_load", ANY("cred"), var("vp")) == 0,
                fn("mac_vnode_check_exec", ANY("cred"), var("vp")) == 0,
                fn("mac_vnode_check_open", ANY("cred"), var("vp"), ANY("accmode")) == 0,
            ),
            name="MF.ufs_open.prior-check",
            tags=tags,
        )
    )

    # Figure 7, second assertion: reads are authorised unless internal.
    # The first alternative is the paper's ``incallstack(ufs_readdir)``:
    # directories re-reading their own data are inside the readdir
    # activation at the time of the read.
    read_alternatives = either(
        incallstack("ufs_readdir"),
        call(
            fn(
                "vn_rdwr",
                ANY("td"),
                "read",
                var("vp"),
                ANY("offset"),
                ANY("length"),
                flags(IO_NOMACCHECK),
            )
        ),
        fn("mac_vnode_check_read", ANY("cred"), ANY("file_cred"), var("vp")) == 0,
    )
    mf.append(
        tesla_syscall_previously(
            read_alternatives, name="MF.ffs_read.prior-check", tags=tags
        )
    )

    # The same expectation under the page-fault bound.
    mf.append(
        tesla_within(
            PFAULT,
            previously(
                fn("mac_vnode_check_read", ANY("cred"), ANY("file_cred"), var("vp")) == 0
            ),
            name="MF.ffs_read.pfault.prior-check",
            tags=tags + ("pfault",),
        )
    )

    # Writes: authorised unless issued internally with IO_NOMACCHECK.
    mf.append(
        tesla_syscall_previously(
            either(
                call(
                    fn(
                        "vn_rdwr",
                        ANY("td"),
                        "write",
                        var("vp"),
                        ANY("offset"),
                        ANY("data"),
                        flags(IO_NOMACCHECK),
                    )
                ),
                fn("mac_vnode_check_write", ANY("cred"), ANY("file_cred"), var("vp")) == 0,
            ),
            name="MF.ffs_write.prior-check",
            tags=tags,
        )
    )

    # One assertion per remaining vnode operation: the check that governs
    # the operation must have succeeded, with the right vnode, earlier in
    # the same system call.
    simple = [
        ("MF.ufs_lookup.prior-check",
         fn("mac_vnode_check_lookup", ANY("cred"), var("dvp"), ANY("name")) == 0),
        ("MF.ufs_readdir.prior-check",
         fn("mac_vnode_check_readdir", ANY("cred"), var("dvp")) == 0),
        ("MF.ufs_create.prior-check",
         fn("mac_vnode_check_create", ANY("cred"), var("dvp"), ANY("name")) == 0),
        ("MF.ufs_remove.prior-check",
         fn("mac_vnode_check_unlink", ANY("cred"), var("dvp"), ANY("vp")) == 0),
        ("MF.ufs_rename.prior-check",
         fn("mac_vnode_check_rename_from", ANY("cred"), var("fdvp")) == 0),
        ("MF.ufs_link.prior-check",
         fn("mac_vnode_check_link", ANY("cred"), var("dvp"), var("vp")) == 0),
        ("MF.ufs_symlink.prior-check",
         fn("mac_vnode_check_create", ANY("cred"), var("dvp"), ANY("name")) == 0),
        ("MF.ufs_readlink.prior-check",
         fn("mac_vnode_check_readlink", ANY("cred"), var("vp")) == 0),
        ("MF.ufs_getattr.prior-check",
         fn("mac_vnode_check_stat", ANY("cred"), ANY("file_cred"), var("vp")) == 0),
        ("MF.ufs_setmode.prior-check",
         fn("mac_vnode_check_setmode", ANY("cred"), var("vp"), ANY("mode")) == 0),
        ("MF.ufs_setowner.prior-check",
         fn("mac_vnode_check_setowner", ANY("cred"), var("vp"), ANY("uid"), ANY("gid")) == 0),
        ("MF.ufs_setutimes.prior-check",
         fn("mac_vnode_check_setutimes", ANY("cred"), var("vp")) == 0),
        ("MF.ufs_getextattr.prior-check",
         fn("mac_vnode_check_getextattr", ANY("cred"), var("vp"), ANY("name")) == 0),
        ("MF.ufs_setextattr.prior-check",
         fn("mac_vnode_check_setextattr", ANY("cred"), var("vp"), ANY("name")) == 0),
        ("MF.ufs_deleteextattr.prior-check",
         fn("mac_vnode_check_deleteextattr", ANY("cred"), var("vp"), ANY("name")) == 0),
        ("MF.ufs_listextattr.prior-check",
         fn("mac_vnode_check_listextattr", ANY("cred"), var("vp")) == 0),
        ("MF.ufs_getacl.prior-check",
         fn("mac_vnode_check_getacl", ANY("cred"), var("vp")) == 0),
        ("MF.ufs_setacl.prior-check",
         fn("mac_vnode_check_setacl", ANY("cred"), var("vp")) == 0),
        ("MF.ufs_deleteacl.prior-check",
         fn("mac_vnode_check_deleteacl", ANY("cred"), var("vp")) == 0),
        ("MF.ufs_mmap.prior-check",
         fn("mac_vnode_check_mmap", ANY("cred"), var("vp"), ANY("prot")) == 0),
        ("MF.ufs_revoke.prior-check",
         fn("mac_vnode_check_revoke", ANY("cred"), var("vp")) == 0),
    ]
    for name, expression in simple:
        mf.append(tesla_syscall_previously(expression, name=name, tags=tags))
    return mf


# ---------------------------------------------------------------------------
# MS: MAC (sockets) — 11 assertions
# ---------------------------------------------------------------------------


def _ms_assertions() -> List[TemporalAssertion]:
    tags = ("MS", "mac", "sockets")
    ms: List[TemporalAssertion] = []

    # Figure 4: the headline assertion, binding the *active* credential so
    # the wrong-credential bug is detectable.
    ms.append(
        tesla_syscall_previously(
            fn("mac_socket_check_poll", var("active_cred"), var("so")) == 0,
            name="MS.sopoll.prior-check",
            tags=tags,
        )
    )

    simple = [
        ("MS.socreate.post-check",
         returned("mac_socket_check_create", 0)),
        ("MS.sobind.prior-check",
         fn("mac_socket_check_bind", ANY("cred"), var("so"), ANY("addr")) == 0),
        ("MS.solisten.prior-check",
         fn("mac_socket_check_listen", ANY("cred"), var("so")) == 0),
        ("MS.soconnect.prior-check",
         fn("mac_socket_check_connect", ANY("cred"), var("so"), ANY("addr")) == 0),
        ("MS.soaccept.prior-check",
         fn("mac_socket_check_accept", ANY("cred"), var("so")) == 0),
        ("MS.sosend.prior-check",
         fn("mac_socket_check_send", ANY("cred"), var("so")) == 0),
        ("MS.soreceive.prior-check",
         fn("mac_socket_check_receive", ANY("cred"), var("so")) == 0),
        ("MS.setsockopt.prior-check",
         fn("mac_socket_check_setsockopt", ANY("cred"), var("so"), ANY("opt")) == 0),
        ("MS.getsockopt.prior-check",
         fn("mac_socket_check_getsockopt", ANY("cred"), var("so"), ANY("opt")) == 0),
        ("MS.sockstat.prior-check",
         fn("mac_socket_check_stat", ANY("cred"), var("so")) == 0),
    ]
    for name, expression in simple:
        ms.append(tesla_syscall_previously(expression, name=name, tags=tags))
    return ms


# ---------------------------------------------------------------------------
# MP: MAC (processes) — 10 assertions
# ---------------------------------------------------------------------------


def _mp_assertions() -> List[TemporalAssertion]:
    tags = ("MP", "mac", "processes")
    simple = [
        ("MP.psignal.prior-check",
         fn("mac_proc_check_signal", ANY("cred"), var("p"), ANY("sig")) == 0),
        ("MP.ptrace.prior-check",
         fn("mac_proc_check_debug", ANY("cred"), var("p")) == 0),
        ("MP.rtprio.prior-check",
         fn("mac_proc_check_rtprio", ANY("cred"), var("p"), ANY("prio")) == 0),
        ("MP.sched.setparam.prior-check",
         fn("mac_proc_check_sched", ANY("cred"), var("p")) == 0),
        ("MP.sched.setscheduler.prior-check",
         fn("mac_proc_check_sched", ANY("cred"), var("p")) == 0),
        ("MP.setuid.prior-check",
         returned("mac_proc_check_setuid", 0)),
        ("MP.setgid.prior-check",
         returned("mac_proc_check_setgid", 0)),
        ("MP.wait.prior-check",
         fn("mac_proc_check_wait", ANY("cred"), var("p")) == 0),
        ("MP.cansee.prior-check",
         returned("mac_cred_check_visible", 0)),
        ("MP.cpuset.prior-check",
         fn("mac_proc_check_cpuset", ANY("cred"), var("p"), ANY("setid")) == 0),
    ]
    return [
        tesla_syscall_previously(expression, name=name, tags=tags)
        for name, expression in simple
    ]


# ---------------------------------------------------------------------------
# M: all MAC — MF ∪ MS ∪ MP + two facility-spanning assertions (48 total)
# ---------------------------------------------------------------------------


def _m_general_assertions() -> List[TemporalAssertion]:
    tags = ("M", "mac")
    return [
        tesla_syscall_previously(
            fn("mac_vnode_check_exec", ANY("cred"), var("vp")) == 0,
            name="M.execve.prior-check",
            tags=tags + ("exec",),
        ),
        tesla_syscall_previously(
            fn("mac_kld_check_load", ANY("cred"), var("vp")) == 0,
            name="M.kldload.prior-check",
            tags=tags + ("kld",),
        ),
    ]


# ---------------------------------------------------------------------------
# P: process lifetimes / inter-process — 37 assertions
# ---------------------------------------------------------------------------


def _p_procfs_assertions() -> List[TemporalAssertion]:
    """19 procfs assertions: the facility behind the coverage result."""
    tags = ("P", "procfs")
    assertions: List[TemporalAssertion] = []
    for node in READ_NODES + RW_NODES:
        assertions.append(
            tesla_syscall_previously(
                fn("mac_procfs_check_read", ANY("cred"), var("p"), node) == 0,
                name=f"P.procfs.{node}.read.prior-check",
                tags=tags,
            )
        )
    for node in RW_NODES:
        assertions.append(
            tesla_syscall_previously(
                fn("mac_procfs_check_write", ANY("cred"), var("p"), node) == 0,
                name=f"P.procfs.{node}.write.prior-check",
                tags=tags,
            )
        )
    return assertions


def _p_cpuset_assertions() -> List[TemporalAssertion]:
    """2 CPUSET assertions — "added after the test suite was written"."""
    tags = ("P", "cpuset")
    return [
        tesla_syscall_previously(
            fn("mac_proc_check_cpuset", ANY("cred"), var("p"), ANY("setid")) == 0,
            name="P.cpuset.set.prior-check",
            tags=tags,
        ),
        tesla_syscall_previously(
            fn("mac_proc_check_cpuset", ANY("cred"), var("p"), ANY("setid")) == 0,
            name="P.cpuset.get.prior-check",
            tags=tags,
        ),
    ]


def _p_rtsched_assertions() -> List[TemporalAssertion]:
    """5 POSIX real-time scheduling assertions."""
    tags = ("P", "rtsched")
    simple = [
        ("P.rtsched.rtprio-set.prior-check",
         fn("p_cansched", ANY("td"), var("p")) == 0),
        ("P.rtsched.rtprio-get.prior-check",
         fn("p_cansee", ANY("td"), var("p")) == 0),
        ("P.rtsched.setparam.prior-check",
         fn("p_cansched", ANY("td"), var("p")) == 0),
        ("P.rtsched.getparam.prior-check",
         fn("p_cansee", ANY("td"), var("p")) == 0),
        ("P.rtsched.setscheduler.prior-check",
         fn("p_cansched", ANY("td"), var("p")) == 0),
    ]
    return [
        tesla_syscall_previously(expression, name=name, tags=tags)
        for name, expression in simple
    ]


def _p_core_assertions() -> List[TemporalAssertion]:
    """11 core inter-process assertions, including the temporal showpieces:
    the P_SUGID ``eventually``, the P_TRACED ``eventually`` on a compound
    field assignment, and a call/return TSEQUENCE."""
    tags = ("P", "interprocess")
    assertions: List[TemporalAssertion] = []

    assertions.append(
        tesla_syscall_previously(
            fn("p_cansignal", ANY("td"), var("p"), ANY("sig")) == 0,
            name="P.psignal.prior-check",
            tags=tags,
        )
    )
    assertions.append(
        tesla_syscall_previously(
            fn("p_candebug", ANY("td"), var("p")) == 0,
            name="P.ptrace.prior-check",
            tags=tags,
        )
    )
    # The eventually use case: credential modified => P_SUGID must be set
    # before the system call returns.
    assertions.append(
        tesla_syscall_eventually(
            call(fn("setsugid", var("p"))),
            name="P.setcred.sugid-eventually",
            tags=tags + ("sugid",),
        )
    )
    assertions.append(
        tesla_syscall_previously(
            fn("p_cansee", ANY("td"), var("p")) == 0,
            name="P.wait.prior-check",
            tags=tags,
        )
    )
    # A field-assignment event: fork installs the child's credential.
    assertions.append(
        tesla_syscall_previously(
            FieldAssign(
                struct="proc",
                field_name="p_ucred",
                op=AssignOp.SET,
                target=var("p"),
            ),
            name="P.fork.cred-copied",
            tags=tags + ("fork",),
        )
    )
    assertions.append(
        tesla_syscall_previously(
            fn("mac_vnode_check_exec", ANY("cred"), var("vp")) == 0,
            name="P.execve.prior-check",
            tags=tags + ("exec",),
        )
    )
    assertions.append(
        tesla_syscall_previously(
            fn("p_cansee", ANY("td"), var("p")) == 0,
            name="P.psignal.cansee",
            tags=tags,
        )
    )
    # A field-assignment event mid-sequence: by the time the new
    # credential is reported installed, the p_ucred store must have
    # happened on exactly this process.
    assertions.append(
        tesla_syscall_previously(
            FieldAssign(
                struct="proc",
                field_name="p_ucred",
                op=AssignOp.SET,
                target=var("p"),
            ),
            name="P.setcred.cred-installed",
            tags=tags + ("setcred",),
        )
    )
    # A compound-assignment event: P_TRACED must be OR-ed into p_flag
    # after attachment begins.
    assertions.append(
        tesla_syscall_eventually(
            FieldAssign(
                struct="proc",
                field_name="p_flag",
                op=AssignOp.OR,
                target=var("p"),
                value=flags(P_TRACED),
            ),
            name="P.ptrace.traced-eventually",
            tags=tags + ("traced",),
        )
    )
    assertions.append(
        tesla_syscall_previously(
            fn("p_cansee", ANY("td"), var("p")) == 0,
            name="P.ptrace.cansee",
            tags=tags,
        )
    )
    # TSEQUENCE of a call and its successful return: the authorisation
    # must both begin and complete before delivery.
    assertions.append(
        tesla_syscall_previously(
            tsequence(
                call("p_cansignal"),
                fn("p_cansignal", ANY("td"), var("p"), ANY("sig")) == 0,
            ),
            name="P.psignal.seq",
            tags=tags + ("tsequence",),
        )
    )
    return assertions


# ---------------------------------------------------------------------------
# Infrastructure test assertions — 11 (the "Infrastructure" configuration)
# ---------------------------------------------------------------------------

#: Functions the infrastructure *test* assertions hook.  Like the paper's
#: test assertions, they live off the hot paths (process-lifecycle and
#: procfs facilities), so the "Infrastructure" configuration pays bound
#: tracking and framework costs but almost no per-event work — its bar
#: sits just above Release in figure 11a.
_INFRA_HOOKED = (
    "psignal",
    "p_cansee",
    "kern_fork",
    "kern_wait",
    "proc_set_cred",
    "setsugid",
    "kern_ptrace",
    "rtp_set",
    "kern_execve",
    "procfs_read",
    "procfs_ctl",
)


def _infrastructure_assertions() -> List[TemporalAssertion]:
    tags = ("T", "infrastructure")
    assertions = []
    for index, hooked in enumerate(_INFRA_HOOKED, start=1):
        assertions.append(
            tesla_syscall_previously(
                optionally(call(hooked)),
                name=f"T.infra{index:02d}.{hooked}",
                tags=tags,
            )
        )
    return assertions


# ---------------------------------------------------------------------------
# Public sets
# ---------------------------------------------------------------------------


def assertion_sets() -> Dict[str, List[TemporalAssertion]]:
    """The Table-1 sets, built fresh (assertions are immutable, so sharing
    would also be fine; fresh lists keep callers honest)."""
    mf = _mf_assertions()
    ms = _ms_assertions()
    mp = _mp_assertions()
    m = mf + ms + mp + _m_general_assertions()
    p = (
        _p_procfs_assertions()
        + _p_cpuset_assertions()
        + _p_rtsched_assertions()
        + _p_core_assertions()
    )
    infra = _infrastructure_assertions()
    return {
        "MF": mf,
        "MS": ms,
        "MP": mp,
        "M": m,
        "P": p,
        "Infrastructure": infra,
        "All": m + p + infra,
    }


#: Expected sizes, straight from Table 1.
TABLE1_SIZES = {"MF": 25, "MS": 11, "MP": 10, "M": 48, "P": 37, "All": 96}
