"""procfs — the deprecated process filesystem.

"Most omissions (19) were in procfs — a deprecated facility disabled by
default": the paper's coverage result hinges on a facility whose assertions
exist but whose code paths ordinary test suites never reach.  This module
provides those 19 assertion-bearing operations: reads of seven
informational nodes and read/write access to six control nodes.

procfs is *disabled by default* (matching FreeBSD); :func:`procfs_mount` /
:func:`procfs_unmount` flip it, and every operation fails with ``ENOENT``
while unmounted — which is precisely why the coverage experiment finds
these 19 assertions unexercised.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..instrument.hooks import instrumentable, tesla_site
from .mac import checks as mac
from .types import ENOENT, EPERM, ESRCH, Proc, Thread

#: Informational nodes: readable only.
READ_NODES = ("status", "map", "cmdline", "environ", "osrel", "rlimit", "file")
#: Control nodes: readable and writable.
RW_NODES = ("mem", "regs", "fpregs", "dbregs", "note", "notepg")

_mounted = False


def procfs_mount() -> None:
    """Enable procfs (it ships disabled, as in FreeBSD)."""
    global _mounted
    _mounted = True


def procfs_unmount() -> None:
    """Disable procfs (its shipped state)."""
    global _mounted
    _mounted = False


def procfs_mounted() -> bool:
    """Whether procfs is currently enabled."""
    return _mounted


def _node_contents(p: Proc, node: str) -> bytes:
    if node == "status":
        return f"{p.p_comm} {p.p_pid} flags={p.p_flag:#x}".encode()
    if node == "map":
        return b"0x1000-0x2000 r-x\n0x2000-0x3000 rw-"
    if node == "cmdline":
        return p.p_comm.encode()
    if node == "environ":
        return b"PATH=/bin"
    if node == "osrel":
        return b"1400000"
    if node == "rlimit":
        return b"cpu -1 -1"
    if node == "file":
        return f"fds={sum(1 for f in p.p_fd if f is not None)}".encode()
    # control nodes read back their register/memory images
    return b"\x00" * 16


@instrumentable()
def procfs_read(td: Thread, p: Proc, node: str) -> Tuple[int, bytes]:
    """Read a procfs node of process ``p``."""
    if not _mounted:
        return ENOENT, b""
    if node not in READ_NODES and node not in RW_NODES:
        return ENOENT, b""
    error = mac.mac_procfs_check_read(td.td_ucred, p, node)
    if error != 0:
        return error, b""
    tesla_site(f"P.procfs.{node}.read.prior-check", p=p)
    return 0, _node_contents(p, node)


@instrumentable()
def procfs_write(td: Thread, p: Proc, node: str, data: bytes) -> int:
    """Write a procfs control node — includes poking another process's
    memory and registers, the facility's sharpest edge."""
    if not _mounted:
        return ENOENT
    if node not in RW_NODES:
        return EPERM
    error = mac.mac_procfs_check_write(td.td_ucred, p, node)
    if error != 0:
        return error
    tesla_site(f"P.procfs.{node}.write.prior-check", p=p)
    return 0


@instrumentable()
def procfs_ctl(td: Thread, p: Proc, command: str) -> int:
    """The ``ctl`` node: attach/detach/step/run control commands."""
    if not _mounted:
        return ENOENT
    error = mac.mac_procfs_check_ctl(td.td_ucred, p, command)
    if error != 0:
        return error
    tesla_site("P.procfs.ctl.prior-check", p=p)
    return 0


def procfs_assertion_sites() -> List[str]:
    """The 19 assertion names this facility carries.

    Reads of the seven informational nodes (7), reads of the six control
    nodes (6) and writes of the six control nodes (6) — 19 operations, one
    assertion each, matching the paper's "most omissions (19) were in
    procfs".  (The ``ctl`` node's assertion is counted in the core
    inter-process set, not here.)
    """
    names = [f"P.procfs.{node}.read.prior-check" for node in READ_NODES]
    names += [f"P.procfs.{node}.read.prior-check" for node in RW_NODES]
    names += [f"P.procfs.{node}.write.prior-check" for node in RW_NODES]
    return names
