"""Process lifecycle and inter-process access control.

Home of the ``eventually`` use case: "if a process credential is modified,
then the ``P_SUGID`` process flag must be set to prevent privilege
escalation attacks via debuggers."  :func:`proc_set_cred` is the credential
modification point (and assertion site); :func:`setsugid` is the side
effect that must *eventually* happen within the same system call.  The
injectable ``sugid_not_set`` bug omits it.

Also implements the classic inter-process authorisation points —
``p_cansignal``, ``p_candebug``, ``p_cansee``, ``p_cansched`` — each
pairing a MAC hook with a TESLA site in the code the hook governs.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..instrument.fields import field_or
from ..instrument.hooks import instrumentable, tesla_site
from .bugs import bugs
from .mac import checks as mac
from .types import (
    EACCES,
    EPERM,
    ESRCH,
    FEXEC,
    P_SUGID,
    P_TRACED,
    Proc,
    Thread,
    Ucred,
    crcopy,
)

# ---------------------------------------------------------------------------
# credential modification and the P_SUGID side effect
# ---------------------------------------------------------------------------


@instrumentable()
def setsugid(p: Proc) -> None:
    """Mark the process as having changed credentials (``P_SUGID``)."""
    field_or(p, "p_flag", P_SUGID)


@instrumentable()
def proc_set_cred(td: Thread, p: Proc, newcred: Ucred) -> None:
    """Install a new credential on a process.

    The assertion site for the ``eventually`` property sits here: after a
    credential change, ``setsugid`` must run before the system call
    returns.
    """
    tesla_site("P.setcred.sugid-eventually", p=p)
    p.p_ucred = newcred
    for thread in _threads_of(p):
        thread.td_ucred = newcred
    tesla_site("P.setcred.cred-installed", p=p)
    if not bugs.enabled("sugid_not_set"):
        setsugid(p)


def _threads_of(p: Proc) -> List[Thread]:
    kernel = p.p_kernel
    if kernel is None:
        return []
    return [td for td in kernel.threads if td.td_proc is p]


@instrumentable()
def kern_setuid(td: Thread, uid: int) -> int:
    """setuid(2)."""
    error = mac.mac_proc_check_setuid(td.td_ucred, uid)
    if error != 0:
        return error
    if td.td_ucred.cr_uid != 0 and uid != td.td_ucred.cr_uid:
        return EPERM
    newcred = crcopy(td.td_ucred)
    newcred.cr_uid = uid
    proc_set_cred(td, td.td_proc, newcred)
    tesla_site("MP.setuid.prior-check", p=td.td_proc)
    return 0


@instrumentable()
def kern_setgid(td: Thread, gid: int) -> int:
    """setgid(2)."""
    error = mac.mac_proc_check_setgid(td.td_ucred, gid)
    if error != 0:
        return error
    if td.td_ucred.cr_uid != 0 and gid != td.td_ucred.cr_gid:
        return EPERM
    newcred = crcopy(td.td_ucred)
    newcred.cr_gid = gid
    proc_set_cred(td, td.td_proc, newcred)
    tesla_site("MP.setgid.prior-check", p=td.td_proc)
    return 0


# ---------------------------------------------------------------------------
# inter-process authorisation (p_can*)
# ---------------------------------------------------------------------------


@instrumentable()
def p_cansee(td: Thread, p: Proc) -> int:
    """May ``td`` observe ``p`` at all (ps, sysctl)?"""
    error = mac.mac_cred_check_visible(td.td_ucred, p.p_ucred)
    if error != 0:
        return error
    tesla_site("MP.cansee.prior-check", p=p)
    return 0


@instrumentable()
def p_cansignal(td: Thread, p: Proc, signum: int) -> int:
    """Inter-process authorisation: may ``td`` signal ``p``?"""
    error = p_cansee(td, p)
    if error != 0:
        return error
    error = mac.mac_proc_check_signal(td.td_ucred, p, signum)
    if error != 0:
        return error
    if td.td_ucred.cr_uid != 0 and td.td_ucred.cr_uid != p.p_ucred.cr_uid:
        return EPERM
    return 0


@instrumentable()
def p_candebug(td: Thread, p: Proc) -> int:
    """May ``td`` attach a debugger to ``p``?

    Refuses set-ugid processes for non-root — the attack ``P_SUGID``
    exists to prevent.  If :func:`setsugid` was skipped after a credential
    change (the injected bug), this guard silently stops protecting.
    """
    error = p_cansee(td, p)
    if error != 0:
        return error
    error = mac.mac_proc_check_debug(td.td_ucred, p)
    if error != 0:
        return error
    if td.td_ucred.cr_uid != 0:
        if p.p_flag & P_SUGID:
            return EPERM
        if td.td_ucred.cr_uid != p.p_ucred.cr_uid:
            return EPERM
    return 0


@instrumentable()
def p_cansched(td: Thread, p: Proc) -> int:
    """Inter-process authorisation: may ``td`` reschedule ``p``?"""
    error = p_cansee(td, p)
    if error != 0:
        return error
    error = mac.mac_proc_check_sched(td.td_ucred, p)
    if error != 0:
        return error
    if td.td_ucred.cr_uid != 0 and td.td_ucred.cr_uid != p.p_ucred.cr_uid:
        return EPERM
    return 0


# ---------------------------------------------------------------------------
# signal delivery, debugging, scheduling, wait
# ---------------------------------------------------------------------------


@instrumentable()
def psignal(td: Thread, p: Proc, signum: int) -> int:
    """Deliver a signal — expects authorisation already happened.

    Three assertions anchor here: the MAC-layer check (MP), the
    inter-process ``p_cansignal`` authorisation (P), and the visibility
    pre-condition ``p_cansee`` that p_cansignal itself relies on.
    """
    tesla_site("MP.psignal.prior-check", p=p)
    tesla_site("P.psignal.prior-check", p=p)
    tesla_site("P.psignal.cansee", p=p)
    tesla_site("P.psignal.seq", p=p)
    return 0


@instrumentable()
def kern_kill(td: Thread, pid: int, signum: int) -> int:
    """Kernel implementation of ``kill``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH
    error = p_cansignal(td, p, signum)
    if error != 0:
        return error
    return psignal(td, p, signum)


@instrumentable()
def proc_attach(td: Thread, p: Proc) -> int:
    """Begin tracing — expects ``p_candebug`` already succeeded.

    The ``P.ptrace.traced-eventually`` site anchors an ``eventually``
    assertion: once attachment begins, ``P_TRACED`` must be OR-ed into
    ``p_flag`` before the system call returns.
    """
    tesla_site("MP.ptrace.prior-check", p=p)
    tesla_site("P.ptrace.prior-check", p=p)
    tesla_site("P.ptrace.cansee", p=p)
    tesla_site("P.ptrace.traced-eventually", p=p)
    field_or(p, "p_flag", P_TRACED)
    return 0


@instrumentable()
def kern_ptrace(td: Thread, pid: int) -> int:
    """Kernel implementation of ``ptrace``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH
    error = p_candebug(td, p)
    if error != 0:
        return error
    return proc_attach(td, p)


@instrumentable()
def rtp_set(td: Thread, p: Proc, prio: int) -> int:
    """Apply a real-time priority — the rtsched facility's mutator."""
    tesla_site("MP.rtprio.prior-check", p=p)
    tesla_site("P.rtsched.rtprio-set.prior-check", p=p)
    p.p_rtprio = prio
    return 0


@instrumentable()
def kern_rtprio_set(td: Thread, pid: int, prio: int) -> int:
    """Kernel implementation of ``rtprio_set``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH
    error = p_cansched(td, p)
    if error != 0:
        return error
    error = mac.mac_proc_check_rtprio(td.td_ucred, p, prio)
    if error != 0:
        return error
    return rtp_set(td, p, prio)


@instrumentable()
def kern_rtprio_get(td: Thread, pid: int) -> Tuple[int, int]:
    """Kernel implementation of ``rtprio_get``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH, 0
    error = p_cansee(td, p)
    if error != 0:
        return error, 0
    tesla_site("P.rtsched.rtprio-get.prior-check", p=p)
    return 0, p.p_rtprio


@instrumentable()
def kern_sched_setparam(td: Thread, pid: int, prio: int) -> int:
    """Kernel implementation of ``sched_setparam``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH
    error = p_cansched(td, p)
    if error != 0:
        return error
    tesla_site("MP.sched.setparam.prior-check", p=p)
    tesla_site("P.rtsched.setparam.prior-check", p=p)
    p.p_rtprio = prio
    return 0


@instrumentable()
def kern_sched_getparam(td: Thread, pid: int) -> Tuple[int, int]:
    """Kernel implementation of ``sched_getparam``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH, 0
    error = p_cansee(td, p)
    if error != 0:
        return error, 0
    tesla_site("P.rtsched.getparam.prior-check", p=p)
    return 0, p.p_rtprio


@instrumentable()
def kern_sched_setscheduler(td: Thread, pid: int, policy: int, prio: int) -> int:
    """Kernel implementation of ``sched_setscheduler``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH
    error = p_cansched(td, p)
    if error != 0:
        return error
    tesla_site("MP.sched.setscheduler.prior-check", p=p)
    tesla_site("P.rtsched.setscheduler.prior-check", p=p)
    p.p_rtprio = prio
    return 0


@instrumentable()
def kern_cpuset_set(td: Thread, pid: int, setid: int) -> int:
    """CPU-affinity assignment — the CPUSET facility (added after the
    FreeBSD test suite was written, hence unexercised by it)."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH
    error = mac.mac_proc_check_cpuset(td.td_ucred, p, setid)
    if error != 0:
        return error
    tesla_site("MP.cpuset.prior-check", p=p)
    tesla_site("P.cpuset.set.prior-check", p=p)
    p.p_cpuset = setid
    return 0


@instrumentable()
def kern_cpuset_get(td: Thread, pid: int) -> Tuple[int, int]:
    """Kernel implementation of ``cpuset_get``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH, 0
    error = mac.mac_proc_check_cpuset(td.td_ucred, p, p.p_cpuset)
    if error != 0:
        return error, 0
    tesla_site("P.cpuset.get.prior-check", p=p)
    return 0, p.p_cpuset


@instrumentable()
def kern_wait(td: Thread, pid: int) -> int:
    """Kernel implementation of ``wait``, authorisation included."""
    p = _find_proc(td, pid)
    if p is None:
        return ESRCH
    error = p_cansee(td, p)
    if error != 0:
        return error
    error = mac.mac_proc_check_wait(td.td_ucred, p)
    if error != 0:
        return error
    tesla_site("MP.wait.prior-check", p=p)
    tesla_site("P.wait.prior-check", p=p)
    return 0


# ---------------------------------------------------------------------------
# fork and exec
# ---------------------------------------------------------------------------


@instrumentable()
def kern_fork(td: Thread) -> Tuple[int, Optional[Proc]]:
    """fork(2): the child inherits a *copy* of the parent's credential."""
    kernel = td.td_proc.p_kernel
    child = Proc(crcopy(td.td_ucred), kernel=kernel, comm=td.td_proc.p_comm)
    td.td_proc.p_children.append(child)
    if kernel is not None:
        kernel.processes.append(child)
    tesla_site("P.fork.cred-copied", p=child)
    return 0, child


@instrumentable()
def kern_execve(td: Thread, path: str) -> int:
    """execve(2): authorised by ``mac_vnode_check_exec`` (not check_open!),
    and set-uid binaries change credentials — which must set P_SUGID."""
    from .vfs.vfs_ops import OPEN_AS_EXEC, vn_open

    error, vp = vn_open(td, path, flags=FEXEC, kind=OPEN_AS_EXEC)
    if error != 0:
        return error
    tesla_site("M.execve.prior-check", vp=vp)
    tesla_site("P.execve.prior-check", vp=vp)
    inode = vp.v_data
    setuid_bit = inode.i_mode & 0o4000
    if setuid_bit and inode.i_uid != td.td_ucred.cr_uid:
        newcred = crcopy(td.td_ucred)
        newcred.cr_uid = inode.i_uid
        proc_set_cred(td, td.td_proc, newcred)
    td.td_proc.p_comm = path.rsplit("/", 1)[-1]
    return 0


def _find_proc(td: Thread, pid: int) -> Optional[Proc]:
    kernel = td.td_proc.p_kernel
    if kernel is None:
        return None
    for p in kernel.processes:
        if p.p_pid == pid:
            return p
    return None
