"""Timed SLO assertions for the VFS workload (ROADMAP open item).

PR 9 gave the runtime clock guards (``within_ms``/``deadline``); these
assertions put them to paper-shaped work on the kernel model's hottest
path — name resolution.  They live in their own ``slo`` corpus suite so
the pinned 99-assertion Table-1 counts stay untouched.

Two shapes:

* ``T.slo.vop_lookup.within1ms`` — within a ``namei`` activation, the
  first ``VOP_LOOKUP`` completes within 1 ms of its call.  A late lookup
  leaves the automaton before its site state, so the ``tesla_site`` at
  the end of :func:`~repro.kernel.vfs.vfs_ops.namei` reports the latency
  violation at the point the path resolution finished.
* ``T.slo.namei.deadline5ms`` — a ``vn_open`` activation must see
  ``namei`` return within 5 ms of entering the open path; expiry is
  reported even when no successor event ever arrives (the deadline
  semantics of DESIGN §5.9).

``VOP_LOOKUP`` dispatches through the vnode op vector and is not
``@instrumentable``, so its events need caller-side weaving: instrument
with ``Instrumenter(runtime, caller_modules=[vfs_ops])``.
"""

from __future__ import annotations

from typing import List

from ..core.ast import TemporalAssertion
from ..core.dsl import (
    call,
    deadline,
    eventually,
    previously,
    returnfrom,
    tesla_within,
    within_ms,
)

#: The lookup-latency budget: "every ``VOP_LOOKUP`` completes within 1 ms".
VOP_LOOKUP_BUDGET_MS = 1.0
#: The end-to-end resolution deadline inside ``vn_open``.
NAMEI_DEADLINE_MS = 5.0


def vop_lookup_slo() -> TemporalAssertion:
    """Within ``namei``, ``VOP_LOOKUP`` completes within 1 ms of its call."""
    return tesla_within(
        "namei",
        previously(
            call("VOP_LOOKUP"),
            within_ms(VOP_LOOKUP_BUDGET_MS, returnfrom("VOP_LOOKUP")),
        ),
        name="T.slo.vop_lookup.within1ms",
        location="kernel/vfs/vfs_ops.py:namei",
        tags=("slo", "timed", "vfs"),
    )


def namei_deadline_slo() -> TemporalAssertion:
    """Within ``vn_open``, ``namei`` returns within 5 ms of bound entry."""
    return tesla_within(
        "vn_open",
        eventually(deadline(NAMEI_DEADLINE_MS, returnfrom("namei"))),
        name="T.slo.namei.deadline5ms",
        location="kernel/vfs/vfs_ops.py:vn_open",
        tags=("slo", "timed", "vfs"),
    )


def slo_assertions() -> List[TemporalAssertion]:
    """The full timed SLO set, in declaration order."""
    return [vop_lookup_slo(), namei_deadline_slo()]
