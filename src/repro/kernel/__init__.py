"""A miniature FreeBSD-like kernel: the paper's primary substrate.

Provides the system-call layer (the ``TESLA_SYSCALL`` temporal bound), a
VFS with a UFS/FFS filesystem, a socket stack with the figure-3 indirection
chain, the MAC Framework with its ``mac_*_check_*`` hooks, process
lifecycle (including ``P_SUGID``), procfs/CPUSET/rtsched facilities, the
Table-1 assertion sets, injectable reproductions of the bugs TESLA found,
and the benchmark workloads of figures 11–13.
"""

from .assertions import TABLE1_SIZES, assertion_sets
from .bugs import BugRegistry, bugs
from .system import KernelSystem
from .types import (
    EACCES,
    EPERM,
    IO_NOMACCHECK,
    P_SUGID,
    P_TRACED,
    File,
    Proc,
    Thread,
    Ucred,
    crcopy,
    crget,
)
from .workloads import (
    MiniOltp,
    build_workload,
    full_exercise,
    interprocess_test_suite,
    lmbench_open_close,
    oltp_workload,
)

__all__ = [
    "TABLE1_SIZES",
    "assertion_sets",
    "BugRegistry",
    "bugs",
    "KernelSystem",
    "EACCES",
    "EPERM",
    "IO_NOMACCHECK",
    "P_SUGID",
    "P_TRACED",
    "File",
    "Proc",
    "Thread",
    "Ucred",
    "crcopy",
    "crget",
    "MiniOltp",
    "build_workload",
    "full_exercise",
    "interprocess_test_suite",
    "lmbench_open_close",
    "oltp_workload",
]
