"""Injectable reproductions of the bugs TESLA found (section 3.5.2).

The paper's FreeBSD study "uncovered five functionality bugs with subtle
security implications".  This registry lets tests, examples and benchmarks
flip each bug on to demonstrate detection and off to demonstrate the fixed
behaviour:

``kqueue_missing_mac_check``
    "the MAC check ``mac_socket_check_poll`` was being invoked for the
    select and poll system calls, but not kqueue."

``sopoll_wrong_cred``
    "one of two present checks was performed using the wrong credential …
    an error in one dynamic call graph caused the cached ``file_cred`` to
    be passed down instead of ``active_cred``" — authorisation with the
    credential that *created* the file rather than the current thread's.

``sugid_not_set``
    the ``eventually`` use case: "if a process credential is modified, then
    the ``P_SUGID`` process flag must be set to prevent privilege
    escalation attacks via debuggers."

``kld_check_skipped``
    the figure 7 subtlety: kernel-module loading is an open-like operation
    authorised by ``mac_kld_check_load``, not ``mac_vnode_check_open``;
    this bug skips it entirely.

``extattr_wrong_check``
    extended attributes "may be accessed via system calls, as well as by
    UFS itself in implementing access-control lists, requiring different
    enforcement depending on the code path"; this bug applies the syscall
    check on the internal path too little (skips it).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, List

from ..errors import TeslaError

KNOWN_BUGS = (
    "kqueue_missing_mac_check",
    "sopoll_wrong_cred",
    "sugid_not_set",
    "kld_check_skipped",
    "extattr_wrong_check",
)


class BugRegistry:
    """Process-wide switches for the injectable kernel bugs."""

    def __init__(self) -> None:
        self._enabled: Dict[str, bool] = {name: False for name in KNOWN_BUGS}
        self._lock = threading.Lock()

    def enabled(self, name: str) -> bool:
        try:
            return self._enabled[name]
        except KeyError:
            raise TeslaError(f"unknown kernel bug {name!r}") from None

    def enable(self, name: str) -> None:
        self.enabled(name)  # validate
        with self._lock:
            self._enabled[name] = True

    def disable(self, name: str) -> None:
        self.enabled(name)  # validate
        with self._lock:
            self._enabled[name] = False

    def disable_all(self) -> None:
        with self._lock:
            for name in self._enabled:
                self._enabled[name] = False

    def active(self) -> List[str]:
        return sorted(name for name, on in self._enabled.items() if on)

    @contextlib.contextmanager
    def injected(self, *names: str) -> Iterator[None]:
        """Temporarily enable bugs — how tests reproduce detections."""
        for name in names:
            self.enable(name)
        try:
            yield
        finally:
            for name in names:
                self.disable(name)


#: The registry consulted by the kernel code paths.
bugs = BugRegistry()
