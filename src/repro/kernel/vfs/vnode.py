"""Vnodes and the in-memory filesystem objects behind them.

A :class:`Vnode` is the VFS-level handle (``struct vnode``); the
filesystem-specific state lives in an :class:`Inode` reached through
``v_data``, and filesystem operations are reached through the ``v_op``
vector — the same two layers of indirection figure 3 illustrates for
sockets.  Vnodes are :class:`~repro.instrument.fields.TeslaStruct` so label
and type changes are observable field-assignment events.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ...instrument.fields import TeslaStruct, instrumentable_struct

# vnode types
VNON = 0
VREG = 1
VDIR = 2
VLNK = 3

_ino_counter = itertools.count(2)  # inode 1 is reserved for the root


class Inode:
    """Filesystem-private per-file state (a UFS ``struct inode``)."""

    __slots__ = (
        "i_number",
        "i_type",
        "i_mode",
        "i_uid",
        "i_gid",
        "i_label",
        "i_data",
        "i_entries",
        "i_target",
        "i_extattrs",
        "i_nlink",
    )

    def __init__(
        self,
        i_type: int,
        i_mode: int = 0o644,
        i_uid: int = 0,
        i_gid: int = 0,
        i_label: int = 0,
        i_number: Optional[int] = None,
    ) -> None:
        self.i_number = i_number if i_number is not None else next(_ino_counter)
        self.i_type = i_type
        self.i_mode = i_mode
        self.i_uid = i_uid
        self.i_gid = i_gid
        self.i_label = i_label
        #: Regular-file contents.
        self.i_data = b""
        #: Directory entries: name -> Inode.
        self.i_entries: Dict[str, "Inode"] = {}
        #: Symlink target path.
        self.i_target = ""
        #: Extended attributes: name -> bytes.  ACLs are stored here, as in
        #: real UFS ("extended attributes … in implementing access-control
        #: lists" — figure 7's surrounding discussion).
        self.i_extattrs: Dict[str, bytes] = {}
        self.i_nlink = 1


@instrumentable_struct
class Vnode(TeslaStruct):
    """The VFS vnode: type, label, fs-private data and the op vector."""

    TESLA_STRUCT_NAME = "vnode"

    def __init__(self, inode: Inode, v_op: Dict[str, Callable], v_mount: Any = None) -> None:
        self.v_type = inode.i_type
        self.v_label = inode.i_label
        self.v_data = inode
        self.v_op = v_op
        self.v_mount = v_mount
        self.v_usecount = 0

    def __repr__(self) -> str:
        kinds = {VREG: "reg", VDIR: "dir", VLNK: "lnk", VNON: "non"}
        return f"<vnode ino={self.v_data.i_number} {kinds.get(self.v_type, '?')}>"


class Mount:
    """A mounted filesystem: root inode plus a vnode cache.

    The cache guarantees one vnode per inode, so TESLA variable bindings on
    ``vp`` are stable across lookups — matching the kernel's vnode
    identity semantics that the paper's per-``vp`` automaton instances
    depend on.
    """

    def __init__(self, name: str, v_op: Dict[str, Callable]) -> None:
        self.name = name
        self.v_op = v_op
        self.root_inode = Inode(VDIR, i_mode=0o755, i_number=1)
        self._vnode_cache: Dict[int, Vnode] = {}

    def vget(self, inode: Inode) -> Vnode:
        vnode = self._vnode_cache.get(inode.i_number)
        if vnode is None:
            vnode = Vnode(inode, self.v_op, v_mount=self)
            self._vnode_cache[inode.i_number] = vnode
        return vnode

    @property
    def root(self) -> Vnode:
        return self.vget(self.root_inode)
