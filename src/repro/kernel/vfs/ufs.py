"""UFS/FFS: the filesystem-specific implementations behind the VFS.

These are the *object implementations* in which the paper placed its
``previously`` assertions: "frequently placed within object implementations
(e.g., specific filesystems) but refer to checks in higher-level frameworks
(e.g., the Virtual File System)".  Each operation carries a
:func:`~repro.instrument.hooks.tesla_site` marker named after the MF
assertion that governs it; the assertions themselves live in
:mod:`repro.kernel.assertions`.

The two figure 7 sites are reproduced exactly:

* ``ufs_open`` expects that *one of* ``mac_kld_check_load``,
  ``mac_vnode_check_exec`` or ``mac_vnode_check_open`` previously succeeded
  for this vnode — open-like operations arrive via three different
  authorisation paths.
* ``ffs_read`` expects that the read was authorised by
  ``mac_vnode_check_read`` — *unless* it is an internal read: one issued
  from ``ufs_readdir`` (directories re-read their own data without passing
  back through the VFS) or via ``vn_rdwr`` with ``IO_NOMACCHECK`` (how UFS
  itself reads the extended attributes that implement ACLs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...instrument.hooks import instrumentable, tesla_site
from ..types import EACCES, EEXIST, EISDIR, ENOENT, ENOTDIR, IO_NOMACCHECK, Thread
from .vnode import VDIR, VLNK, VREG, Inode, Mount, Vnode

#: The extended attribute UFS stores POSIX.1e ACLs in.
ACL_EXTATTR_NAME = "posix1e.acl_access"


# ---------------------------------------------------------------------------
# open / lookup
# ---------------------------------------------------------------------------


@instrumentable()
def ufs_open(td: Thread, vp: Vnode, mode: int = 0) -> int:
    """UFS open — figure 7's first assertion site."""
    tesla_site("MF.ufs_open.prior-check", vp=vp)
    vp.v_usecount = vp.v_usecount + 1
    return 0


@instrumentable()
def ufs_lookup(td: Thread, dvp: Vnode, name: str) -> Tuple[int, Optional[Vnode]]:
    """Resolve one path component inside a directory."""
    tesla_site("MF.ufs_lookup.prior-check", dvp=dvp)
    if dvp.v_type != VDIR:
        return ENOTDIR, None
    inode = dvp.v_data.i_entries.get(name)
    if inode is None:
        return ENOENT, None
    return 0, dvp.v_mount.vget(inode)


# ---------------------------------------------------------------------------
# read / write (FFS, the on-disk layer)
# ---------------------------------------------------------------------------


@instrumentable()
def ffs_read(td: Thread, vp: Vnode, offset: int, length: int, ioflag: int = 0) -> Tuple[int, bytes]:
    """FFS read — figure 7's second assertion site.

    Carries two sites for the same expectation under different temporal
    bounds: reads within a system call and reads within a page-fault
    handler ("file-system I/O initiated by virtual-memory page faults").
    Whichever bound is not currently open simply ignores its site event.
    """
    tesla_site("MF.ffs_read.prior-check", vp=vp)
    tesla_site("MF.ffs_read.pfault.prior-check", vp=vp)
    inode = vp.v_data
    if inode.i_type == VDIR:
        # Directory "data": a rendering of its entries, as UFS stores
        # directories as files containing dirents.
        data = "\n".join(sorted(inode.i_entries)).encode()
    else:
        data = inode.i_data
    return 0, data[offset : offset + length]


@instrumentable()
def ffs_write(td: Thread, vp: Vnode, offset: int, data: bytes, ioflag: int = 0) -> int:
    """UFS ``write`` — carries this operation's MF assertion site."""
    tesla_site("MF.ffs_write.prior-check", vp=vp)
    inode = vp.v_data
    if inode.i_type == VDIR:
        return EISDIR
    existing = inode.i_data
    if offset > len(existing):
        existing = existing + b"\x00" * (offset - len(existing))
    inode.i_data = existing[:offset] + data + existing[offset + len(data):]
    return 0


@instrumentable()
def ufs_readdir(td: Thread, dvp: Vnode) -> Tuple[int, List[str]]:
    """List a directory.

    Internally re-reads the directory's own data through :func:`ffs_read`
    *without* passing back through the VFS — "one additional instance of
    ufs_readdir occurs within the file system without passing back through
    VFS" — which is why the ``ffs_read`` assertion allows the
    ``incallstack(ufs_readdir)`` code path, exactly as figure 7 writes it.
    """
    tesla_site("MF.ufs_readdir.prior-check", dvp=dvp)
    if dvp.v_type != VDIR:
        return ENOTDIR, []
    error, data = ffs_read(td, dvp, 0, 1 << 20)
    if error != 0:
        return error, []
    names = [n for n in data.decode().split("\n") if n]
    return 0, names


# ---------------------------------------------------------------------------
# namespace modification
# ---------------------------------------------------------------------------


@instrumentable()
def ufs_create(td: Thread, dvp: Vnode, name: str, vtype: int = VREG, mode: int = 0o644) -> Tuple[int, Optional[Vnode]]:
    """UFS ``create`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_create.prior-check", dvp=dvp)
    if dvp.v_type != VDIR:
        return ENOTDIR, None
    if name in dvp.v_data.i_entries:
        return EEXIST, None
    inode = Inode(vtype, i_mode=mode, i_label=dvp.v_data.i_label)
    dvp.v_data.i_entries[name] = inode
    return 0, dvp.v_mount.vget(inode)


@instrumentable()
def ufs_remove(td: Thread, dvp: Vnode, name: str) -> int:
    """UFS ``remove`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_remove.prior-check", dvp=dvp)
    if name not in dvp.v_data.i_entries:
        return ENOENT
    del dvp.v_data.i_entries[name]
    return 0


@instrumentable()
def ufs_rename(td: Thread, fdvp: Vnode, fname: str, tdvp: Vnode, tname: str) -> int:
    """UFS ``rename`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_rename.prior-check", fdvp=fdvp, tdvp=tdvp)
    inode = fdvp.v_data.i_entries.get(fname)
    if inode is None:
        return ENOENT
    del fdvp.v_data.i_entries[fname]
    tdvp.v_data.i_entries[tname] = inode
    return 0


@instrumentable()
def ufs_link(td: Thread, dvp: Vnode, name: str, vp: Vnode) -> int:
    """UFS ``link`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_link.prior-check", dvp=dvp, vp=vp)
    if name in dvp.v_data.i_entries:
        return EEXIST
    dvp.v_data.i_entries[name] = vp.v_data
    vp.v_data.i_nlink += 1
    return 0


@instrumentable()
def ufs_symlink(td: Thread, dvp: Vnode, name: str, target: str) -> Tuple[int, Optional[Vnode]]:
    """UFS ``symlink`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_symlink.prior-check", dvp=dvp)
    error, vp = ufs_create(td, dvp, name, vtype=VLNK)
    if error != 0:
        return error, None
    vp.v_data.i_target = target
    return 0, vp


@instrumentable()
def ufs_readlink(td: Thread, vp: Vnode) -> Tuple[int, str]:
    """UFS ``readlink`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_readlink.prior-check", vp=vp)
    if vp.v_type != VLNK:
        return ENOENT, ""
    return 0, vp.v_data.i_target


# ---------------------------------------------------------------------------
# attributes
# ---------------------------------------------------------------------------


@instrumentable()
def ufs_getattr(td: Thread, vp: Vnode) -> Tuple[int, Dict[str, Any]]:
    """UFS ``getattr`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_getattr.prior-check", vp=vp)
    inode = vp.v_data
    return 0, {
        "ino": inode.i_number,
        "mode": inode.i_mode,
        "uid": inode.i_uid,
        "gid": inode.i_gid,
        "size": len(inode.i_data),
        "nlink": inode.i_nlink,
        "type": inode.i_type,
    }


@instrumentable()
def ufs_setmode(td: Thread, vp: Vnode, mode: int) -> int:
    """UFS ``setmode`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_setmode.prior-check", vp=vp)
    vp.v_data.i_mode = mode
    return 0


@instrumentable()
def ufs_setowner(td: Thread, vp: Vnode, uid: int, gid: int) -> int:
    """UFS ``setowner`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_setowner.prior-check", vp=vp)
    vp.v_data.i_uid = uid
    vp.v_data.i_gid = gid
    return 0


@instrumentable()
def ufs_setutimes(td: Thread, vp: Vnode) -> int:
    """UFS ``setutimes`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_setutimes.prior-check", vp=vp)
    return 0


# ---------------------------------------------------------------------------
# extended attributes (also the storage layer for ACLs)
# ---------------------------------------------------------------------------


@instrumentable()
def ufs_getextattr(td: Thread, vp: Vnode, name: str) -> Tuple[int, bytes]:
    """UFS ``getextattr`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_getextattr.prior-check", vp=vp)
    value = vp.v_data.i_extattrs.get(name)
    if value is None:
        return ENOENT, b""
    return 0, value


@instrumentable()
def ufs_setextattr(td: Thread, vp: Vnode, name: str, value: bytes) -> int:
    """UFS ``setextattr`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_setextattr.prior-check", vp=vp)
    vp.v_data.i_extattrs[name] = value
    return 0


@instrumentable()
def ufs_deleteextattr(td: Thread, vp: Vnode, name: str) -> int:
    """UFS ``deleteextattr`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_deleteextattr.prior-check", vp=vp)
    if name not in vp.v_data.i_extattrs:
        return ENOENT
    del vp.v_data.i_extattrs[name]
    return 0


@instrumentable()
def ufs_listextattr(td: Thread, vp: Vnode) -> Tuple[int, List[str]]:
    """UFS ``listextattr`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_listextattr.prior-check", vp=vp)
    return 0, sorted(vp.v_data.i_extattrs)


# ---------------------------------------------------------------------------
# ACLs — implemented over extattrs, read with MAC checks disabled
# ---------------------------------------------------------------------------


@instrumentable()
def ufs_getacl(td: Thread, vp: Vnode) -> Tuple[int, List[str]]:
    """Read the POSIX.1e ACL.

    UFS reads the backing extended attribute through the file-system
    independent :func:`~repro.kernel.vfs.vfs_ops.vn_rdwr` with
    ``IO_NOMACCHECK`` — the "used internally" path of figure 7, which the
    ``ffs_read`` assertion must tolerate.
    """
    tesla_site("MF.ufs_getacl.prior-check", vp=vp)
    from . import vfs_ops  # deferred: vfs_ops imports this module's ops table

    raw = vp.v_data.i_extattrs.get(ACL_EXTATTR_NAME)
    if raw is None:
        return 0, []
    # Touch the file data via the internal, MAC-exempt read path.
    error, _ = vfs_ops.vn_rdwr(
        td, "read", vp, offset=0, length=0, flags=IO_NOMACCHECK
    )
    if error != 0:
        return error, []
    return 0, [entry for entry in raw.decode().split(",") if entry]


@instrumentable()
def ufs_setacl(td: Thread, vp: Vnode, acl: List[str]) -> int:
    """UFS ``setacl`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_setacl.prior-check", vp=vp)
    vp.v_data.i_extattrs[ACL_EXTATTR_NAME] = ",".join(acl).encode()
    return 0


@instrumentable()
def ufs_deleteacl(td: Thread, vp: Vnode) -> int:
    """UFS ``deleteacl`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_deleteacl.prior-check", vp=vp)
    vp.v_data.i_extattrs.pop(ACL_EXTATTR_NAME, None)
    return 0


# ---------------------------------------------------------------------------
# mmap / revoke
# ---------------------------------------------------------------------------


@instrumentable()
def ufs_mmap(td: Thread, vp: Vnode, prot: int = 0) -> int:
    """UFS ``mmap`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_mmap.prior-check", vp=vp)
    return 0


@instrumentable()
def ufs_revoke(td: Thread, vp: Vnode) -> int:
    """UFS ``revoke`` — carries this operation's MF assertion site."""
    tesla_site("MF.ufs_revoke.prior-check", vp=vp)
    return 0


#: The UFS VOP vector: the indirection VFS dispatches through (figure 3).
UFS_VOPS: Dict[str, Any] = {
    "open": ufs_open,
    "lookup": ufs_lookup,
    "read": ffs_read,
    "write": ffs_write,
    "readdir": ufs_readdir,
    "create": ufs_create,
    "remove": ufs_remove,
    "rename": ufs_rename,
    "link": ufs_link,
    "symlink": ufs_symlink,
    "readlink": ufs_readlink,
    "getattr": ufs_getattr,
    "setmode": ufs_setmode,
    "setowner": ufs_setowner,
    "setutimes": ufs_setutimes,
    "getextattr": ufs_getextattr,
    "setextattr": ufs_setextattr,
    "deleteextattr": ufs_deleteextattr,
    "listextattr": ufs_listextattr,
    "getacl": ufs_getacl,
    "setacl": ufs_setacl,
    "deleteacl": ufs_deleteacl,
    "mmap": ufs_mmap,
    "revoke": ufs_revoke,
}


def make_ufs_mount(name: str = "ufs0") -> Mount:
    """Create a fresh UFS filesystem instance."""
    return Mount(name=name, v_op=UFS_VOPS)
