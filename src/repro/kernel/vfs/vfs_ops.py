"""The file-system independent VFS layer.

This is the "central, protocol-agnostic code" where access-control checks
belong: :func:`vn_open` authorises opens (routing exec and kernel-module
loads to *their* hooks, per figure 7), :func:`vn_rdwr` authorises reads and
writes unless the caller passes ``IO_NOMACCHECK``, and the ``VOP_*``
helpers dispatch through the vnode's op vector into UFS — the indirection
that separates checks from the code they govern (figure 3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...instrument.hooks import instrumentable, tesla_site
from ..bugs import bugs
from ..mac import checks as mac
from ..types import (
    EACCES,
    EINVAL,
    ELOOP,
    ENOENT,
    FEXEC,
    FREAD,
    FWRITE,
    IO_NOMACCHECK,
    File,
    Fileops,
    Thread,
)
from .vnode import VDIR, VLNK, VREG, Mount, Vnode

#: ``vn_open`` authorisation kinds — three different hooks govern
#: open-like operations (figure 7's lesson).
OPEN_AS_OPEN = "open"
OPEN_AS_EXEC = "exec"
OPEN_AS_KLD = "kld"


#: Symlink resolution budget, after which lookup fails with ELOOP.
MAXSYMLINKS = 8


@instrumentable()
def namei(td: Thread, path: str, _link_budget: int = MAXSYMLINKS) -> Tuple[int, Optional[Vnode]]:
    """Resolve a path to a vnode, checking lookup permission per component.

    Symlinks are followed up to ``MAXSYMLINKS`` deep; cycles (or silly
    chains) fail with ``ELOOP`` as in the real VFS.
    """
    kernel = td.td_proc.p_kernel
    vp = kernel.rootfs.root
    parts = [p for p in path.split("/") if p]
    for name in parts:
        error = mac.mac_vnode_check_lookup(td.td_ucred, vp, name)
        if error != 0:
            return error, None
        error, nxt = VOP_LOOKUP(td, vp, name)
        if error != 0:
            return error, None
        if nxt.v_type == VLNK:
            if _link_budget <= 0:
                return ELOOP, None
            error, target = VOP_READLINK(td, nxt)
            if error != 0:
                return error, None
            error, nxt = namei(td, target, _link_budget - 1)
            if error != 0:
                return error, None
        vp = nxt
    tesla_site("T.slo.vop_lookup.within1ms")
    return 0, vp


@instrumentable()
def vn_open(
    td: Thread, path: str, flags: int = FREAD, kind: str = OPEN_AS_OPEN
) -> Tuple[int, Optional[Vnode]]:
    """Open a vnode by path, applying the right MAC hook for ``kind``.

    Plain opens use ``mac_vnode_check_open``; executing a binary uses
    ``mac_vnode_check_exec``; loading a kernel module uses
    ``mac_kld_check_load`` — "different checks handled other open-like
    operations".
    """
    tesla_site("T.slo.namei.deadline5ms")
    error, vp = namei(td, path)
    if error != 0:
        return error, None
    if kind == OPEN_AS_OPEN:
        error = mac.mac_vnode_check_open(td.td_ucred, vp, flags)
    elif kind == OPEN_AS_EXEC:
        error = mac.mac_vnode_check_exec(td.td_ucred, vp)
    elif kind == OPEN_AS_KLD:
        if bugs.enabled("kld_check_skipped"):
            error = 0  # the injectable figure-7 bug: no authorisation at all
        else:
            error = mac.mac_kld_check_load(td.td_ucred, vp)
    else:
        return EINVAL, None
    if error != 0:
        return error, None
    error = VOP_OPEN(td, vp, flags)
    if error != 0:
        return error, None
    return 0, vp


@instrumentable()
def vn_rdwr(
    td: Thread,
    rw: str,
    vp: Vnode,
    offset: int = 0,
    length: int = 1 << 20,
    data: bytes = b"",
    flags: int = 0,
) -> Tuple[int, bytes]:
    """File-system independent read/write.

    "File-system reads initiated using the file-system independent
    ``vn_rdwr`` may be used 'internally' and have MAC checks disabled by
    ``IO_NOMACCHECK``, in which case checks should not be expected by
    TESLA."
    """
    if not (flags & IO_NOMACCHECK):
        if rw == "read":
            error = mac.mac_vnode_check_read(td.td_ucred, td.td_ucred, vp)
        else:
            error = mac.mac_vnode_check_write(td.td_ucred, td.td_ucred, vp)
        if error != 0:
            return error, b""
    if rw == "read":
        return VOP_READ(td, vp, offset, length, flags)
    error = VOP_WRITE(td, vp, offset, data, flags)
    return error, b""


# ---------------------------------------------------------------------------
# VOP dispatch: the vnode-operations indirection layer
# ---------------------------------------------------------------------------


def VOP_OPEN(td: Thread, vp: Vnode, mode: int = 0) -> int:
    """Dispatch ``open`` through the vnode's operations vector."""
    return vp.v_op["open"](td, vp, mode)


def VOP_LOOKUP(td: Thread, dvp: Vnode, name: str) -> Tuple[int, Optional[Vnode]]:
    """Dispatch ``lookup`` through the vnode's operations vector."""
    return dvp.v_op["lookup"](td, dvp, name)


def VOP_READ(td: Thread, vp: Vnode, offset: int, length: int, ioflag: int = 0) -> Tuple[int, bytes]:
    """Dispatch ``read`` through the vnode's operations vector."""
    return vp.v_op["read"](td, vp, offset, length, ioflag)


def VOP_WRITE(td: Thread, vp: Vnode, offset: int, data: bytes, ioflag: int = 0) -> int:
    """Dispatch ``write`` through the vnode's operations vector."""
    return vp.v_op["write"](td, vp, offset, data, ioflag)


def VOP_READDIR(td: Thread, dvp: Vnode) -> Tuple[int, List[str]]:
    """Dispatch ``readdir`` through the vnode's operations vector."""
    return dvp.v_op["readdir"](td, dvp)


def VOP_CREATE(td: Thread, dvp: Vnode, name: str, vtype: int = VREG, mode: int = 0o644):
    """Dispatch ``create`` through the vnode's operations vector."""
    return dvp.v_op["create"](td, dvp, name, vtype, mode)


def VOP_REMOVE(td: Thread, dvp: Vnode, name: str) -> int:
    """Dispatch ``remove`` through the vnode's operations vector."""
    return dvp.v_op["remove"](td, dvp, name)


def VOP_RENAME(td: Thread, fdvp: Vnode, fname: str, tdvp: Vnode, tname: str) -> int:
    """Dispatch ``rename`` through the vnode's operations vector."""
    return fdvp.v_op["rename"](td, fdvp, fname, tdvp, tname)


def VOP_LINK(td: Thread, dvp: Vnode, name: str, vp: Vnode) -> int:
    """Dispatch ``link`` through the vnode's operations vector."""
    return dvp.v_op["link"](td, dvp, name, vp)


def VOP_SYMLINK(td: Thread, dvp: Vnode, name: str, target: str):
    """Dispatch ``symlink`` through the vnode's operations vector."""
    return dvp.v_op["symlink"](td, dvp, name, target)


def VOP_READLINK(td: Thread, vp: Vnode) -> Tuple[int, str]:
    """Dispatch ``readlink`` through the vnode's operations vector."""
    return vp.v_op["readlink"](td, vp)


def VOP_GETATTR(td: Thread, vp: Vnode) -> Tuple[int, Dict[str, Any]]:
    """Dispatch ``getattr`` through the vnode's operations vector."""
    return vp.v_op["getattr"](td, vp)


def VOP_SETMODE(td: Thread, vp: Vnode, mode: int) -> int:
    """Dispatch ``setmode`` through the vnode's operations vector."""
    return vp.v_op["setmode"](td, vp, mode)


def VOP_SETOWNER(td: Thread, vp: Vnode, uid: int, gid: int) -> int:
    """Dispatch ``setowner`` through the vnode's operations vector."""
    return vp.v_op["setowner"](td, vp, uid, gid)


def VOP_SETUTIMES(td: Thread, vp: Vnode) -> int:
    """Dispatch ``setutimes`` through the vnode's operations vector."""
    return vp.v_op["setutimes"](td, vp)


def VOP_GETEXTATTR(td: Thread, vp: Vnode, name: str) -> Tuple[int, bytes]:
    """Dispatch ``getextattr`` through the vnode's operations vector."""
    return vp.v_op["getextattr"](td, vp, name)


def VOP_SETEXTATTR(td: Thread, vp: Vnode, name: str, value: bytes) -> int:
    """Dispatch ``setextattr`` through the vnode's operations vector."""
    return vp.v_op["setextattr"](td, vp, name, value)


def VOP_DELETEEXTATTR(td: Thread, vp: Vnode, name: str) -> int:
    """Dispatch ``deleteextattr`` through the vnode's operations vector."""
    return vp.v_op["deleteextattr"](td, vp, name)


def VOP_LISTEXTATTR(td: Thread, vp: Vnode) -> Tuple[int, List[str]]:
    """Dispatch ``listextattr`` through the vnode's operations vector."""
    return vp.v_op["listextattr"](td, vp)


def VOP_GETACL(td: Thread, vp: Vnode) -> Tuple[int, List[str]]:
    """Dispatch ``getacl`` through the vnode's operations vector."""
    return vp.v_op["getacl"](td, vp)


def VOP_SETACL(td: Thread, vp: Vnode, acl: List[str]) -> int:
    """Dispatch ``setacl`` through the vnode's operations vector."""
    return vp.v_op["setacl"](td, vp, acl)


def VOP_DELETEACL(td: Thread, vp: Vnode) -> int:
    """Dispatch ``deleteacl`` through the vnode's operations vector."""
    return vp.v_op["deleteacl"](td, vp)


def VOP_MMAP(td: Thread, vp: Vnode, prot: int = 0) -> int:
    """Dispatch ``mmap`` through the vnode's operations vector."""
    return vp.v_op["mmap"](td, vp, prot)


def VOP_REVOKE(td: Thread, vp: Vnode) -> int:
    """Dispatch ``revoke`` through the vnode's operations vector."""
    return vp.v_op["revoke"](td, vp)


# ---------------------------------------------------------------------------
# vnode-backed struct file ops
# ---------------------------------------------------------------------------


def _vn_read(fp: File, length: int, active_cred, flags: int, td: Thread) -> Tuple[int, bytes]:
    vp = fp.f_data
    error, data = vn_rdwr(td, "read", vp, offset=fp.f_offset, length=length, flags=flags)
    if error == 0:
        fp.f_offset = fp.f_offset + len(data)
    return error, data


def _vn_write(fp: File, data: bytes, active_cred, flags: int, td: Thread) -> int:
    vp = fp.f_data
    error, _ = vn_rdwr(td, "write", vp, offset=fp.f_offset, data=data, flags=flags)
    if error == 0:
        fp.f_offset = fp.f_offset + len(data)
    return error


def _vn_poll(fp: File, events: int, active_cred, td: Thread) -> int:
    return events  # regular files are always ready


def _vn_close(fp: File, td: Thread) -> int:
    vp = fp.f_data
    vp.v_usecount = max(0, vp.v_usecount - 1)
    return 0


#: The fileops vector for vnode-backed descriptors.
vnops = Fileops(
    fo_read=_vn_read,
    fo_write=_vn_write,
    fo_poll=_vn_poll,
    fo_close=_vn_close,
)
