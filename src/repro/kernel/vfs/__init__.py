"""The virtual filesystem: vnodes, the VFS layer, and UFS/FFS."""

from .ufs import UFS_VOPS, make_ufs_mount
from .vfs_ops import namei, vn_open, vn_rdwr, vnops
from .vnode import VDIR, VLNK, VNON, VREG, Inode, Mount, Vnode

__all__ = [
    "UFS_VOPS",
    "make_ufs_mount",
    "namei",
    "vn_open",
    "vn_rdwr",
    "vnops",
    "VDIR",
    "VLNK",
    "VNON",
    "VREG",
    "Inode",
    "Mount",
    "Vnode",
]
