"""The system-call layer: ``amd64_syscall`` and the syscall table.

:func:`amd64_syscall` is the temporal bound for every
``TESLA_SYSCALL_PREVIOUSLY`` assertion (figure 9's «init»/«cleanup»
events): automata instances live from syscall entry to syscall exit.
:func:`trap_pfault` provides the second bound the paper needed for
"file-system I/O initiated by virtual-memory page faults".

The ``sys_*`` functions are thin argument-marshalling wrappers (as in a
real kernel) over the ``kern_*`` implementations in the facility modules.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..instrument.hooks import instrumentable, tesla_site
from . import process, procfs
from .bugs import bugs
from .mac import checks as mac
from .net import select as sel
from .net import socket as net
from .types import (
    EACCES,
    EBADF,
    EINVAL,
    ENOENT,
    ENOSYS,
    FREAD,
    FWRITE,
    File,
    Thread,
    fo_poll,
    fo_read,
    fo_write,
)
from .vfs import vfs_ops
from .vfs.vnode import VDIR, VREG


# ---------------------------------------------------------------------------
# file-descriptor plumbing
# ---------------------------------------------------------------------------


def falloc(td: Thread, fp: File) -> int:
    """Install a file in the process descriptor table, lowest free slot."""
    table = td.td_proc.p_fd
    for fd, existing in enumerate(table):
        if existing is None:
            table[fd] = fp
            return fd
    table.append(fp)
    return len(table) - 1


def fget(td: Thread, fd: int) -> Optional[File]:
    """Look up a file by descriptor in the process table."""
    table = td.td_proc.p_fd
    if 0 <= fd < len(table):
        return table[fd]
    return None


# ---------------------------------------------------------------------------
# filesystem syscalls
# ---------------------------------------------------------------------------


def sys_open(td: Thread, path: str, flags: int = FREAD) -> Tuple[int, int]:
    """``open(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.vn_open(td, path, flags=flags)
    if error != 0:
        return error, -1
    fp = File(f_data=vp, f_ops=vfs_ops.vnops, f_cred=td.td_ucred, f_flag=flags)
    return 0, falloc(td, fp)


def sys_close(td: Thread, fd: int) -> int:
    """``close(2)``: marshal arguments and enter the kernel layer."""
    fp = fget(td, fd)
    if fp is None:
        return EBADF
    if fp.f_ops.fo_close is not None:
        fp.f_ops.fo_close(fp, td)
    td.td_proc.p_fd[fd] = None
    return 0


def sys_read(td: Thread, fd: int, length: int) -> Tuple[int, bytes]:
    """``read(2)``: marshal arguments and enter the kernel layer."""
    fp = fget(td, fd)
    if fp is None:
        return EBADF, b""
    return fo_read(fp, length, td.td_ucred, 0, td)


def sys_write(td: Thread, fd: int, data: bytes) -> int:
    """``write(2)``: marshal arguments and enter the kernel layer."""
    fp = fget(td, fd)
    if fp is None:
        return EBADF
    return fo_write(fp, data, td.td_ucred, 0, td)


def sys_getdents(td: Thread, path: str) -> Tuple[int, List[str]]:
    """``getdents(2)``: marshal arguments and enter the kernel layer."""
    error, dvp = vfs_ops.namei(td, path)
    if error != 0:
        return error, []
    error = mac.mac_vnode_check_readdir(td.td_ucred, dvp)
    if error != 0:
        return error, []
    return vfs_ops.VOP_READDIR(td, dvp)


def sys_stat(td: Thread, path: str) -> Tuple[int, Dict[str, Any]]:
    """``stat(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error, {}
    error = mac.mac_vnode_check_stat(td.td_ucred, td.td_ucred, vp)
    if error != 0:
        return error, {}
    return vfs_ops.VOP_GETATTR(td, vp)


def _parent_and_leaf(td: Thread, path: str):
    parent_path, _, leaf = path.rstrip("/").rpartition("/")
    error, dvp = vfs_ops.namei(td, parent_path)
    if error != 0:
        return error, None, ""
    return 0, dvp, leaf


def sys_creat(td: Thread, path: str, mode: int = 0o644) -> Tuple[int, int]:
    """``creat(2)``: marshal arguments and enter the kernel layer."""
    error, dvp, leaf = _parent_and_leaf(td, path)
    if error != 0:
        return error, -1
    error = mac.mac_vnode_check_create(td.td_ucred, dvp, leaf)
    if error != 0:
        return error, -1
    error, vp = vfs_ops.VOP_CREATE(td, dvp, leaf, VREG, mode)
    if error != 0:
        return error, -1
    fp = File(f_data=vp, f_ops=vfs_ops.vnops, f_cred=td.td_ucred, f_flag=FWRITE)
    return 0, falloc(td, fp)


def sys_mkdir(td: Thread, path: str, mode: int = 0o755) -> int:
    """``mkdir(2)``: marshal arguments and enter the kernel layer."""
    error, dvp, leaf = _parent_and_leaf(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_create(td.td_ucred, dvp, leaf)
    if error != 0:
        return error
    error, _ = vfs_ops.VOP_CREATE(td, dvp, leaf, VDIR, mode)
    return error


def sys_unlink(td: Thread, path: str) -> int:
    """``unlink(2)``: marshal arguments and enter the kernel layer."""
    error, dvp, leaf = _parent_and_leaf(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_lookup(td.td_ucred, dvp, leaf)
    if error != 0:
        return error
    error, vp = vfs_ops.VOP_LOOKUP(td, dvp, leaf)
    if error != 0:
        return error
    error = mac.mac_vnode_check_unlink(td.td_ucred, dvp, vp)
    if error != 0:
        return error
    return vfs_ops.VOP_REMOVE(td, dvp, leaf)


def sys_rename(td: Thread, frompath: str, topath: str) -> int:
    """``rename(2)``: marshal arguments and enter the kernel layer."""
    error, fdvp, fleaf = _parent_and_leaf(td, frompath)
    if error != 0:
        return error
    error, tdvp, tleaf = _parent_and_leaf(td, topath)
    if error != 0:
        return error
    error = mac.mac_vnode_check_rename_from(td.td_ucred, fdvp)
    if error != 0:
        return error
    error = mac.mac_vnode_check_rename_to(td.td_ucred, tdvp)
    if error != 0:
        return error
    return vfs_ops.VOP_RENAME(td, fdvp, fleaf, tdvp, tleaf)


def sys_link(td: Thread, existing: str, new: str) -> int:
    """``link(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, existing)
    if error != 0:
        return error
    error, dvp, leaf = _parent_and_leaf(td, new)
    if error != 0:
        return error
    error = mac.mac_vnode_check_link(td.td_ucred, dvp, vp)
    if error != 0:
        return error
    return vfs_ops.VOP_LINK(td, dvp, leaf, vp)


def sys_symlink(td: Thread, target: str, new: str) -> int:
    """``symlink(2)``: marshal arguments and enter the kernel layer."""
    error, dvp, leaf = _parent_and_leaf(td, new)
    if error != 0:
        return error
    error = mac.mac_vnode_check_create(td.td_ucred, dvp, leaf)
    if error != 0:
        return error
    error, _ = vfs_ops.VOP_SYMLINK(td, dvp, leaf, target)
    return error


def sys_readlink(td: Thread, path: str) -> Tuple[int, str]:
    """``readlink(2)``: marshal arguments and enter the kernel layer."""
    error, dvp, leaf = _parent_and_leaf(td, path)
    if error != 0:
        return error, ""
    error = mac.mac_vnode_check_lookup(td.td_ucred, dvp, leaf)
    if error != 0:
        return error, ""
    error, vp = vfs_ops.VOP_LOOKUP(td, dvp, leaf)
    if error != 0:
        return error, ""
    error = mac.mac_vnode_check_readlink(td.td_ucred, vp)
    if error != 0:
        return error, ""
    return vfs_ops.VOP_READLINK(td, vp)


def sys_chmod(td: Thread, path: str, mode: int) -> int:
    """``chmod(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_setmode(td.td_ucred, vp, mode)
    if error != 0:
        return error
    return vfs_ops.VOP_SETMODE(td, vp, mode)


def sys_chown(td: Thread, path: str, uid: int, gid: int) -> int:
    """``chown(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_setowner(td.td_ucred, vp, uid, gid)
    if error != 0:
        return error
    return vfs_ops.VOP_SETOWNER(td, vp, uid, gid)


def sys_utimes(td: Thread, path: str) -> int:
    """``utimes(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_setutimes(td.td_ucred, vp)
    if error != 0:
        return error
    return vfs_ops.VOP_SETUTIMES(td, vp)


def sys_mmap(td: Thread, path: str, prot: int = 0) -> int:
    """``mmap(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_mmap(td.td_ucred, vp, prot)
    if error != 0:
        return error
    return vfs_ops.VOP_MMAP(td, vp, prot)


def sys_revoke(td: Thread, path: str) -> int:
    """``revoke(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_revoke(td.td_ucred, vp)
    if error != 0:
        return error
    return vfs_ops.VOP_REVOKE(td, vp)


# extended attributes and ACLs


def sys_extattr_get(td: Thread, path: str, name: str) -> Tuple[int, bytes]:
    """``extattr_get(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error, b""
    if not bugs.enabled("extattr_wrong_check"):
        error = mac.mac_vnode_check_getextattr(td.td_ucred, vp, name)
        if error != 0:
            return error, b""
    # With the bug injected, the *syscall* path is treated like the
    # MAC-exempt internal path UFS uses for ACLs (figure 7's subtlety,
    # applied in the wrong direction) — no check at all.
    return vfs_ops.VOP_GETEXTATTR(td, vp, name)


def sys_extattr_set(td: Thread, path: str, name: str, value: bytes) -> int:
    """``extattr_set(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_setextattr(td.td_ucred, vp, name)
    if error != 0:
        return error
    return vfs_ops.VOP_SETEXTATTR(td, vp, name, value)


def sys_extattr_delete(td: Thread, path: str, name: str) -> int:
    """``extattr_delete(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_deleteextattr(td.td_ucred, vp, name)
    if error != 0:
        return error
    return vfs_ops.VOP_DELETEEXTATTR(td, vp, name)


def sys_extattr_list(td: Thread, path: str) -> Tuple[int, List[str]]:
    """``extattr_list(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error, []
    error = mac.mac_vnode_check_listextattr(td.td_ucred, vp)
    if error != 0:
        return error, []
    return vfs_ops.VOP_LISTEXTATTR(td, vp)


def sys_acl_get(td: Thread, path: str) -> Tuple[int, List[str]]:
    """``acl_get(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error, []
    error = mac.mac_vnode_check_getacl(td.td_ucred, vp)
    if error != 0:
        return error, []
    return vfs_ops.VOP_GETACL(td, vp)


def sys_acl_set(td: Thread, path: str, acl: List[str]) -> int:
    """``acl_set(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_setacl(td.td_ucred, vp)
    if error != 0:
        return error
    return vfs_ops.VOP_SETACL(td, vp, acl)


def sys_acl_delete(td: Thread, path: str) -> int:
    """``acl_delete(2)``: marshal arguments and enter the kernel layer."""
    error, vp = vfs_ops.namei(td, path)
    if error != 0:
        return error
    error = mac.mac_vnode_check_deleteacl(td.td_ucred, vp)
    if error != 0:
        return error
    return vfs_ops.VOP_DELETEACL(td, vp)


def sys_kldload(td: Thread, path: str) -> int:
    """Load a kernel module — authorised by ``mac_kld_check_load``."""
    error, vp = vfs_ops.vn_open(td, path, kind=vfs_ops.OPEN_AS_KLD)
    if error != 0:
        return error
    tesla_site("M.kldload.prior-check", vp=vp)
    return 0


# ---------------------------------------------------------------------------
# socket syscalls
# ---------------------------------------------------------------------------


def sys_socket(td: Thread, domain: int, so_type: int) -> Tuple[int, int]:
    """``socket(2)``: marshal arguments and enter the kernel layer."""
    error, so = net.socreate(domain, so_type, td)
    if error != 0:
        return error, -1
    fp = File(f_data=so, f_ops=net.socketops, f_cred=td.td_ucred)
    return 0, falloc(td, fp)


def _sock_of(td: Thread, fd: int):
    fp = fget(td, fd)
    if fp is None or not isinstance(fp.f_data, net.Socket):
        return None, None
    return fp, fp.f_data


def sys_bind(td: Thread, fd: int, addr: Any) -> int:
    """``bind(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF
    error = mac.mac_socket_check_bind(td.td_ucred, so, addr)
    if error != 0:
        return error
    error = net.sobind(so, addr, td)
    if error == 0:
        td.td_proc.p_kernel.bound_sockets[addr] = so
    return error


def sys_listen(td: Thread, fd: int, backlog: int = 8) -> int:
    """``listen(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF
    error = mac.mac_socket_check_listen(td.td_ucred, so)
    if error != 0:
        return error
    return net.solisten(so, backlog, td)


def sys_connect(td: Thread, fd: int, addr: Any) -> int:
    """Connect to a bound address over the loopback transport."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF
    target = td.td_proc.p_kernel.bound_sockets.get(addr)
    if target is None:
        return EINVAL
    error = mac.mac_socket_check_connect(td.td_ucred, so, addr)
    if error != 0:
        return error
    return net.soconnect(so, target, td)


def sys_accept(td: Thread, fd: int) -> Tuple[int, int]:
    """``accept(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF, -1
    error = mac.mac_socket_check_accept(td.td_ucred, so)
    if error != 0:
        return error, -1
    error, newso = net.soaccept(so, td)
    if error != 0:
        return error, -1
    newfp = File(f_data=newso, f_ops=net.socketops, f_cred=td.td_ucred)
    return 0, falloc(td, newfp)


def sys_send(td: Thread, fd: int, data: bytes) -> int:
    """``send(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF
    return fo_write(fp, data, td.td_ucred, 0, td)


def sys_recv(td: Thread, fd: int) -> Tuple[int, bytes]:
    """``recv(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF, b""
    return fo_read(fp, 1 << 16, td.td_ucred, 0, td)


def sys_setsockopt(td: Thread, fd: int, opt: int, value: Any = None) -> int:
    """``setsockopt(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF
    error = mac.mac_socket_check_setsockopt(td.td_ucred, so, opt)
    if error != 0:
        return error
    tesla_site("MS.setsockopt.prior-check", so=so)
    return 0


def sys_getsockopt(td: Thread, fd: int, opt: int) -> Tuple[int, Any]:
    """``getsockopt(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF, None
    error = mac.mac_socket_check_getsockopt(td.td_ucred, so, opt)
    if error != 0:
        return error, None
    tesla_site("MS.getsockopt.prior-check", so=so)
    return 0, None


def sys_sockstat(td: Thread, fd: int) -> Tuple[int, Dict[str, Any]]:
    """``sockstat(2)``: marshal arguments and enter the kernel layer."""
    fp, so = _sock_of(td, fd)
    if so is None:
        return EBADF, {}
    error = mac.mac_socket_check_stat(td.td_ucred, so)
    if error != 0:
        return error, {}
    tesla_site("MS.sockstat.prior-check", so=so)
    return 0, {"id": so.so_id, "proto": so.so_proto.pr_name}


def sys_select(td: Thread, fds: List[int], events: int = net.POLLIN) -> Tuple[int, List[int]]:
    """``select(2)``: marshal arguments and enter the kernel layer."""
    return sel.kern_select(td, fds, events)


def sys_poll(td: Thread, fds: List[int], events: int = net.POLLIN) -> Tuple[int, Dict[int, int]]:
    """``poll(2)``: marshal arguments and enter the kernel layer."""
    return sel.kern_poll(td, fds, events)


def sys_kqueue(td: Thread) -> Tuple[int, sel.Kqueue]:
    """``kqueue(2)``: marshal arguments and enter the kernel layer."""
    return sel.kern_kqueue(td)


def sys_kevent(td: Thread, kq: sel.Kqueue, changes: List[sel.Kevent]) -> Tuple[int, List[int]]:
    """``kevent(2)``: marshal arguments and enter the kernel layer."""
    return sel.kern_kevent(td, kq, changes)


# ---------------------------------------------------------------------------
# process syscalls
# ---------------------------------------------------------------------------


def sys_setuid(td: Thread, uid: int) -> int:
    """``setuid(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_setuid(td, uid)


def sys_setgid(td: Thread, gid: int) -> int:
    """``setgid(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_setgid(td, gid)


def sys_kill(td: Thread, pid: int, signum: int) -> int:
    """``kill(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_kill(td, pid, signum)


def sys_ptrace(td: Thread, pid: int) -> int:
    """``ptrace(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_ptrace(td, pid)


def sys_rtprio_set(td: Thread, pid: int, prio: int) -> int:
    """``rtprio_set(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_rtprio_set(td, pid, prio)


def sys_rtprio_get(td: Thread, pid: int) -> Tuple[int, int]:
    """``rtprio_get(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_rtprio_get(td, pid)


def sys_sched_setparam(td: Thread, pid: int, prio: int) -> int:
    """``sched_setparam(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_sched_setparam(td, pid, prio)


def sys_sched_getparam(td: Thread, pid: int) -> Tuple[int, int]:
    """``sched_getparam(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_sched_getparam(td, pid)


def sys_sched_setscheduler(td: Thread, pid: int, policy: int, prio: int) -> int:
    """``sched_setscheduler(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_sched_setscheduler(td, pid, policy, prio)


def sys_cpuset_set(td: Thread, pid: int, setid: int) -> int:
    """``cpuset_set(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_cpuset_set(td, pid, setid)


def sys_cpuset_get(td: Thread, pid: int) -> Tuple[int, int]:
    """``cpuset_get(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_cpuset_get(td, pid)


def sys_wait4(td: Thread, pid: int) -> int:
    """``wait4(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_wait(td, pid)


def sys_fork(td: Thread):
    """``fork(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_fork(td)


def sys_execve(td: Thread, path: str) -> int:
    """``execve(2)``: marshal arguments and enter the kernel layer."""
    return process.kern_execve(td, path)


def sys_procfs_read(td: Thread, pid: int, node: str) -> Tuple[int, bytes]:
    """``procfs_read(2)``: marshal arguments and enter the kernel layer."""
    p = process._find_proc(td, pid)
    if p is None:
        return EINVAL, b""
    return procfs.procfs_read(td, p, node)


def sys_procfs_write(td: Thread, pid: int, node: str, data: bytes) -> int:
    """``procfs_write(2)``: marshal arguments and enter the kernel layer."""
    p = process._find_proc(td, pid)
    if p is None:
        return EINVAL
    return procfs.procfs_write(td, p, node, data)


def sys_procfs_ctl(td: Thread, pid: int, command: str) -> int:
    """``procfs_ctl(2)``: marshal arguments and enter the kernel layer."""
    p = process._find_proc(td, pid)
    if p is None:
        return EINVAL
    return procfs.procfs_ctl(td, p, command)


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------

#: The system-call table (``sysent``).
syscall_table: Dict[str, Callable] = {
    "open": sys_open,
    "close": sys_close,
    "read": sys_read,
    "write": sys_write,
    "getdents": sys_getdents,
    "stat": sys_stat,
    "creat": sys_creat,
    "mkdir": sys_mkdir,
    "unlink": sys_unlink,
    "rename": sys_rename,
    "link": sys_link,
    "symlink": sys_symlink,
    "readlink": sys_readlink,
    "chmod": sys_chmod,
    "chown": sys_chown,
    "utimes": sys_utimes,
    "mmap": sys_mmap,
    "revoke": sys_revoke,
    "extattr_get": sys_extattr_get,
    "extattr_set": sys_extattr_set,
    "extattr_delete": sys_extattr_delete,
    "extattr_list": sys_extattr_list,
    "acl_get": sys_acl_get,
    "acl_set": sys_acl_set,
    "acl_delete": sys_acl_delete,
    "kldload": sys_kldload,
    "socket": sys_socket,
    "bind": sys_bind,
    "listen": sys_listen,
    "connect": sys_connect,
    "accept": sys_accept,
    "send": sys_send,
    "recv": sys_recv,
    "setsockopt": sys_setsockopt,
    "getsockopt": sys_getsockopt,
    "sockstat": sys_sockstat,
    "select": sys_select,
    "poll": sys_poll,
    "kqueue": sys_kqueue,
    "kevent": sys_kevent,
    "setuid": sys_setuid,
    "setgid": sys_setgid,
    "kill": sys_kill,
    "ptrace": sys_ptrace,
    "rtprio_set": sys_rtprio_set,
    "rtprio_get": sys_rtprio_get,
    "sched_setparam": sys_sched_setparam,
    "sched_getparam": sys_sched_getparam,
    "sched_setscheduler": sys_sched_setscheduler,
    "cpuset_set": sys_cpuset_set,
    "cpuset_get": sys_cpuset_get,
    "wait4": sys_wait4,
    "fork": sys_fork,
    "execve": sys_execve,
    "procfs_read": sys_procfs_read,
    "procfs_write": sys_procfs_write,
    "procfs_ctl": sys_procfs_ctl,
}


@instrumentable()
def amd64_syscall(td: Thread, name: str, args: Tuple[Any, ...] = ()) -> Any:
    """The syscall entry/exit — the «init»/«cleanup» bound of figure 9."""
    handler = syscall_table.get(name)
    if handler is None:
        return ENOSYS
    return handler(td, *args)


@instrumentable()
def trap_pfault(td: Thread, vp: Any) -> int:
    """A page fault whose service requires file-system I/O.

    Reads here happen *outside* any system call, so figure 7–style
    assertions need a second temporal bound; this function is that bound.
    The fault handler authorises the read itself (faults on a mapped file
    re-check against the mapping credential), then reads via ``vn_rdwr``.
    """
    error = mac.mac_vnode_check_read(td.td_ucred, td.td_ucred, vp)
    if error != 0:
        return error
    error, _ = vfs_ops.vn_rdwr(td, "read", vp, offset=0, length=4096)
    return error
