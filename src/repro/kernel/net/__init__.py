"""The network substrate: sockets, protocols and event multiplexing."""

from .select import Kevent, Kqueue, kern_kevent, kern_kqueue, kern_poll, kern_select
from .socket import (
    AF_INET,
    POLLIN,
    POLLOUT,
    SOCK_DGRAM,
    SOCK_STREAM,
    Protosw,
    PrUsrreqs,
    Socket,
    socketops,
    socreate,
    soo_poll,
    sopoll,
    sopoll_generic,
)

__all__ = [
    "Kevent",
    "Kqueue",
    "kern_kevent",
    "kern_kqueue",
    "kern_poll",
    "kern_select",
    "AF_INET",
    "POLLIN",
    "POLLOUT",
    "SOCK_DGRAM",
    "SOCK_STREAM",
    "Protosw",
    "PrUsrreqs",
    "Socket",
    "socketops",
    "socreate",
    "soo_poll",
    "sopoll",
    "sopoll_generic",
]
