"""The three event-multiplexing system calls: select, poll and kqueue.

select and poll reach socket state through ``fo_poll`` → :func:`soo_poll`,
which performs the MAC check.  kqueue reaches the same state through its
own filter path (``fo_kqfilter``), which is exactly where FreeBSD's check
was missing — the first bug the paper's MS assertions caught.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ...instrument.hooks import instrumentable
from ..types import EBADF, EINVAL, File, Thread, fo_poll

_kq_counter = itertools.count(1)


class Kevent:
    """One kqueue registration (a pared-down ``struct kevent``)."""

    __slots__ = ("fd", "filter_events")

    def __init__(self, fd: int, filter_events: int) -> None:
        self.fd = fd
        self.filter_events = filter_events


class Kqueue:
    """A kernel event queue."""

    def __init__(self) -> None:
        self.kq_id = next(_kq_counter)
        self.registrations: List[Kevent] = []


@instrumentable()
def kern_select(td: Thread, fds: List[int], events: int) -> Tuple[int, List[int]]:
    """select(2): returns the subset of ``fds`` that are ready."""
    ready = []
    for fd in fds:
        fp = _fd_lookup(td, fd)
        if fp is None:
            return EBADF, []
        revents = fo_poll(fp, events, td.td_ucred, td)
        if revents:
            ready.append(fd)
    return 0, ready


@instrumentable()
def kern_poll(td: Thread, fds: List[int], events: int) -> Tuple[int, Dict[int, int]]:
    """poll(2): returns revents per fd."""
    out: Dict[int, int] = {}
    for fd in fds:
        fp = _fd_lookup(td, fd)
        if fp is None:
            return EBADF, {}
        out[fd] = fo_poll(fp, events, td.td_ucred, td)
    return 0, out


@instrumentable()
def kern_kqueue(td: Thread) -> Tuple[int, Kqueue]:
    """kqueue(2): create an event queue."""
    return 0, Kqueue()


@instrumentable()
def kern_kevent(
    td: Thread, kq: Kqueue, changes: List[Kevent]
) -> Tuple[int, List[int]]:
    """kevent(2): register filters and collect ready fds.

    Registration routes through each descriptor's ``fo_kqfilter`` — the
    path on which the historical kernel performed *no* MAC check.
    """
    for change in changes:
        kq.registrations.append(change)
    ready: List[int] = []
    for registration in kq.registrations:
        fp = _fd_lookup(td, registration.fd)
        if fp is None:
            return EBADF, []
        kqfilter = fp.f_ops.fo_kqfilter
        if kqfilter is None:
            # Non-socket descriptors fall back to their poll entry.
            revents = fo_poll(fp, registration.filter_events, td.td_ucred, td)
        else:
            revents = kqfilter(fp, registration.filter_events, td.td_ucred, td)
        if revents:
            ready.append(registration.fd)
    return 0, ready


def _fd_lookup(td: Thread, fd: int) -> Optional[File]:
    table = td.td_proc.p_fd
    if 0 <= fd < len(table):
        return table[fd]
    return None
