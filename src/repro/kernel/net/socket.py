"""Sockets, protocols and the indirection chain of figures 3 and 4.

A poll on a socket descriptor traverses exactly the layers the paper draws:

    ``fo_poll`` (fileops vector) → :func:`soo_poll` → :func:`sopoll`
    (through ``so->so_proto->pr_usrreqs->pru_sopoll``) →
    :func:`sopoll_generic`

The access-control check (``mac_socket_check_poll``) happens at the top in
:func:`soo_poll`; the expectation that it happened lives at the bottom in
:func:`sopoll_generic` as a ``TESLA_SYSCALL_PREVIOUSLY`` site — with two
layers of function-pointer indirection in between hiding the connection
from static analysis.

Two of the paper's discovered bugs are injectable here:
``sopoll_wrong_cred`` makes :func:`soo_poll` authorise with the cached
``f_cred`` instead of the thread's ``active_cred``;
``kqueue_missing_mac_check`` lives in :mod:`repro.kernel.net.select`.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ...instrument.fields import TeslaStruct, instrumentable_struct
from ...instrument.hooks import instrumentable, tesla_site
from ..bugs import bugs
from ..mac import checks as mac
from ..types import EACCES, EINVAL, File, Fileops, Thread, Ucred

# poll events
POLLIN = 0x0001
POLLOUT = 0x0004

# socket types / domains
AF_INET = 2
SOCK_STREAM = 1
SOCK_DGRAM = 2

_so_counter = itertools.count(1)


class PrUsrreqs:
    """``struct pr_usrreqs``: the protocol's user-request vector."""

    __slots__ = (
        "pru_sopoll",
        "pru_send",
        "pru_receive",
        "pru_bind",
        "pru_listen",
        "pru_connect",
        "pru_accept",
    )

    def __init__(self, **ops: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, ops.get(name))


class Protosw:
    """``struct protosw``: protocol switch entry."""

    __slots__ = ("pr_name", "pr_type", "pr_usrreqs")

    def __init__(self, pr_name: str, pr_type: int, pr_usrreqs: PrUsrreqs) -> None:
        self.pr_name = pr_name
        self.pr_type = pr_type
        self.pr_usrreqs = pr_usrreqs


@instrumentable_struct
class Socket(TeslaStruct):
    """``struct socket``: buffers, state and the protocol pointer."""

    TESLA_STRUCT_NAME = "socket"

    def __init__(self, proto: Protosw, label: int = 0) -> None:
        self.so_id = next(_so_counter)
        self.so_proto = proto
        self.so_label = label
        self.so_state = 0
        self.so_rcv: Deque[bytes] = deque()
        self.so_snd: Deque[bytes] = deque()
        #: Peer socket for the in-kernel loopback transport.
        self.so_peer: Optional["Socket"] = None
        #: Pending connections on a listening socket.
        self.so_acceptq: Deque["Socket"] = deque()
        self.so_listening = False
        self.so_bound_addr: Any = None

    def __repr__(self) -> str:
        return f"<socket {self.so_id} {self.so_proto.pr_name}>"


# ---------------------------------------------------------------------------
# the poll chain (figures 3 and 4)
# ---------------------------------------------------------------------------


@instrumentable()
def sopoll_generic(
    so: Socket, events: int, active_cred: Ucred, td: Thread
) -> int:
    """Protocol-generic poll.

    Here, we expect that an access-control check has already been done —
    the comment figure 3 shows, promoted to the checkable assertion of
    figure 4.  ``active_cred`` for the assertion's purposes is the
    *thread's* credential: the check must have used it, whatever credential
    a buggy caller passed down.
    """
    tesla_site(
        "MS.sopoll.prior-check", active_cred=td.td_ucred, so=so
    )
    revents = 0
    if (events & POLLIN) and (so.so_rcv or so.so_acceptq):
        revents |= POLLIN
    if events & POLLOUT:
        revents |= POLLOUT
    return revents


@instrumentable()
def sopoll(so: Socket, events: int, active_cred: Ucred, td: Thread) -> int:
    """Dispatch through the protocol's user-request vector."""
    fp = so.so_proto.pr_usrreqs.pru_sopoll
    return fp(so, events, active_cred, td)


@instrumentable()
def soo_poll(fp: File, events: int, active_cred: Ucred, td: Thread) -> int:
    """The socket fileops poll entry — where the MAC check belongs."""
    if bugs.enabled("sopoll_wrong_cred"):
        # The discovered bug: "an error in one dynamic call graph caused
        # the cached file_cred to be passed down instead of active_cred."
        error = mac.mac_socket_check_poll(fp.f_cred, fp.f_data)
    else:
        error = mac.mac_socket_check_poll(active_cred, fp.f_data)
    if error != 0:
        return 0
    return sopoll(fp.f_data, events, fp.f_cred, td)


# ---------------------------------------------------------------------------
# data transfer (an in-kernel loopback transport)
# ---------------------------------------------------------------------------


@instrumentable()
def sosend(so: Socket, data: bytes, cred: Ucred, td: Thread) -> int:
    """Queue data on the peer's receive buffer (loopback transport)."""
    tesla_site("MS.sosend.prior-check", so=so)
    if so.so_peer is None:
        return EINVAL
    so.so_peer.so_rcv.append(data)
    return 0


@instrumentable()
def soreceive(so: Socket, cred: Ucred, td: Thread) -> Tuple[int, bytes]:
    """Dequeue the next buffered datagram, or empty bytes."""
    tesla_site("MS.soreceive.prior-check", so=so)
    if not so.so_rcv:
        return 0, b""
    return 0, so.so_rcv.popleft()


@instrumentable()
def sobind(so: Socket, addr: Any, td: Thread) -> int:
    """Record the socket's bound address."""
    tesla_site("MS.sobind.prior-check", so=so)
    so.so_bound_addr = addr
    return 0


@instrumentable()
def solisten(so: Socket, backlog: int, td: Thread) -> int:
    """Mark the socket as accepting connections."""
    tesla_site("MS.solisten.prior-check", so=so)
    so.so_listening = True
    return 0


@instrumentable()
def soconnect(so: Socket, target: Socket, td: Thread) -> int:
    """Connect over the loopback transport: enqueue a peer on the
    listener's accept queue and wire the pair together."""
    tesla_site("MS.soconnect.prior-check", so=so)
    if not target.so_listening:
        return EINVAL
    server_side = Socket(target.so_proto, label=target.so_label)
    server_side.so_peer = so
    so.so_peer = server_side
    target.so_acceptq.append(server_side)
    return 0


@instrumentable()
def soaccept(so: Socket, td: Thread) -> Tuple[int, Optional[Socket]]:
    """Pop one pending connection off the accept queue."""
    tesla_site("MS.soaccept.prior-check", so=so)
    if not so.so_acceptq:
        return EINVAL, None
    return 0, so.so_acceptq.popleft()


# ---------------------------------------------------------------------------
# socket creation and the protocol switch table
# ---------------------------------------------------------------------------

_loopback_usrreqs = PrUsrreqs(
    pru_sopoll=sopoll_generic,
    pru_send=sosend,
    pru_receive=soreceive,
    pru_bind=sobind,
    pru_listen=solisten,
    pru_connect=soconnect,
    pru_accept=soaccept,
)

#: The protocol switch, keyed by (domain, type).
protosw_table: Dict[Tuple[int, int], Protosw] = {
    (AF_INET, SOCK_STREAM): Protosw("tcp_lo", SOCK_STREAM, _loopback_usrreqs),
    (AF_INET, SOCK_DGRAM): Protosw("udp_lo", SOCK_DGRAM, _loopback_usrreqs),
}


@instrumentable()
def socreate(domain: int, so_type: int, td: Thread) -> Tuple[int, Optional[Socket]]:
    """Create a socket, authorised by ``mac_socket_check_create``."""
    error = mac.mac_socket_check_create(td.td_ucred, domain, so_type)
    if error != 0:
        return error, None
    proto = protosw_table.get((domain, so_type))
    if proto is None:
        return EINVAL, None
    so = Socket(proto, label=td.td_ucred.cr_label)
    tesla_site("MS.socreate.post-check", so=so)
    return 0, so


def _soo_read(fp: File, length: int, active_cred: Ucred, flags: int, td: Thread) -> Tuple[int, bytes]:
    error = mac.mac_socket_check_receive(active_cred, fp.f_data)
    if error != 0:
        return error, b""
    return soreceive(fp.f_data, active_cred, td)


def _soo_write(fp: File, data: bytes, active_cred: Ucred, flags: int, td: Thread) -> int:
    error = mac.mac_socket_check_send(active_cred, fp.f_data)
    if error != 0:
        return error
    return sosend(fp.f_data, data, active_cred, td)


def _soo_close(fp: File, td: Thread) -> int:
    so = fp.f_data
    if so.so_peer is not None:
        so.so_peer.so_peer = None
        so.so_peer = None
    return 0


def _soo_kqfilter(fp: File, events: int, active_cred: Ucred, td: Thread) -> int:
    """kqueue's route into the socket poll logic.

    With ``kqueue_missing_mac_check`` injected, this is the discovered bug:
    "the MAC check mac_socket_check_poll was being invoked for the select
    and poll system calls, but not kqueue."
    """
    if not bugs.enabled("kqueue_missing_mac_check"):
        error = mac.mac_socket_check_poll(active_cred, fp.f_data)
        if error != 0:
            return 0
    return sopoll(fp.f_data, events, fp.f_cred, td)


#: The socket fileops vector.
socketops = Fileops(
    fo_read=_soo_read,
    fo_write=_soo_write,
    fo_poll=soo_poll,
    fo_close=_soo_close,
    fo_kqfilter=_soo_kqfilter,
)
