"""Deterministic, seedable fault injection for the monitor's own internals.

The supervision layer (:mod:`repro.runtime.supervisor`) promises that a
fault *inside* TESLA — a broken matcher, a handler that raises, an
allocator hiccup — never escapes into application frames under a fail-open
policy.  A promise like that is only worth what its tests can exercise, so
this module plants named **fault points** at every internal boundary the
supervisor guards: store updates, plan compilation, instance allocation,
hook dispatch, notification fan-out and the deferred pipeline's capture /
merge / flush stages (``drain.enqueue`` / ``drain.merge`` /
``drain.flush`` — see :mod:`repro.runtime.drain`).

A fault point is free when disarmed: the call sites guard with
``if _active is not None`` (one module-attribute load and an identity
check) before ever calling :func:`fault_point`, so the PR-2 compiled
dispatch numbers survive (``benchmarks/bench_fault_overhead.py`` pins the
regression at ≤3%).  When armed, a process-wide :class:`FaultInjector`
decides — from a seeded PRNG, deterministically given the seed and the
sequence of checks — whether each visit raises :class:`InjectedFault`.

The chaos-differential harness (``tests/differential/
test_chaos_containment.py``) arms an injector over every declared site and
asserts the supervision contract: application results byte-identical to
uninstrumented runs, no exception across the hook boundary, and every
injected fault accounted for in :func:`repro.introspect.health_report`.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, Iterator, Optional, Set

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "fault_site",
    "fault_point",
    "arm",
    "disarm",
    "active_injector",
    "declared_fault_sites",
    "injection",
]


class InjectedFault(Exception):
    """The synthetic monitor-internal failure raised by an armed fault point.

    Deliberately *not* a :class:`~repro.errors.TeslaError`: nothing in the
    monitor may rely on catching library error types to survive chaos —
    the supervisor's containment must hold for arbitrary exceptions.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site!r}")
        self.site = site


#: Every fault site declared anywhere in the process, populated at import
#: time by :func:`fault_site` — the chaos harness iterates this to prove
#: each boundary is actually exercised.
_declared: Set[str] = set()


def fault_site(name: str) -> str:
    """Declare a fault point's name at module import time.

    Returns the name so call sites write
    ``_FP_INSERT = fault_site("prealloc.insert")`` and keep a module-level
    constant for the hot path.
    """
    _declared.add(name)
    return name


def declared_fault_sites() -> Set[str]:
    """Every fault-site name declared so far (import-time complete)."""
    return set(_declared)


class FaultInjector:
    """A seeded source of go/no-go decisions for fault points.

    ``rate`` is the per-visit firing probability; ``only`` restricts
    injection to a subset of sites (others are counted but never fire);
    ``max_faults`` caps total injections so long traces stay mostly
    healthy.  All decisions come from ``random.Random(seed)`` in visit
    order, so a (seed, trace) pair replays identically — quarantine
    determinism tests depend on this.
    """

    def __init__(
        self,
        seed: int,
        rate: float = 1.0,
        only: Optional[Iterable[str]] = None,
        max_faults: Optional[int] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.seed = seed
        self.rate = rate
        self.only = None if only is None else frozenset(only)
        self.max_faults = max_faults
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        #: site -> times a fault point was visited while armed.
        self.checks: Dict[str, int] = {}
        #: site -> times a visit actually raised.
        self.fired: Dict[str, int] = {}

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    def should_fire(self, site: str) -> bool:
        """Record one visit and decide whether it faults.

        The PRNG is consumed for *every* visit — the ``only`` filter and
        the fault cap veto *after* the draw — so restricting ``only`` does
        not shift the decision stream of the remaining sites between runs
        with the same seed and trace.
        """
        with self._lock:
            self.checks[site] = self.checks.get(site, 0) + 1
            if self.rate >= 1.0:
                fire = True
            else:
                fire = self._random.random() < self.rate
            if self.only is not None and site not in self.only:
                return False
            if (
                self.max_faults is not None
                and self.total_fired >= self.max_faults
            ):
                return False
            if fire:
                self.fired[site] = self.fired.get(site, 0) + 1
            return fire

    def stats(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "only": None if self.only is None else sorted(self.only),
            "checks": dict(self.checks),
            "fired": dict(self.fired),
            "total_fired": self.total_fired,
            "total_checks": self.total_checks,
        }


#: The armed injector, or ``None`` (the free fast path).  Call sites read
#: this attribute directly — ``if faultinject._active is not None`` — so a
#: disarmed fault point costs no function call.
_active: Optional[FaultInjector] = None


def arm(injector: FaultInjector) -> FaultInjector:
    """Arm ``injector`` process-wide; returns it for chaining."""
    global _active
    _active = injector
    return injector


def disarm() -> None:
    """Return every fault point to its no-op fast path."""
    global _active
    _active = None


def active_injector() -> Optional[FaultInjector]:
    """The armed :class:`FaultInjector`, or ``None`` when disarmed."""
    return _active


def fault_point(site: str) -> None:
    """One named internal checkpoint; raises :class:`InjectedFault` when an
    armed injector decides this visit faults.

    Hot call sites pre-check ``_active`` themselves and only call this
    when armed; calling it disarmed is still correct (and free enough for
    cold paths).
    """
    injector = _active
    if injector is None:
        return
    if injector.should_fire(site):
        raise InjectedFault(site)


class injection:
    """Context manager: arm a fresh injector for the ``with`` block.

    ::

        with injection(seed=7, rate=0.05) as injector:
            run_workload()
        assert injector.total_fired == report.injected_recorded
    """

    def __init__(
        self,
        seed: int,
        rate: float = 1.0,
        only: Optional[Iterable[str]] = None,
        max_faults: Optional[int] = None,
    ) -> None:
        self.injector = FaultInjector(
            seed, rate=rate, only=only, max_faults=max_faults
        )

    def __enter__(self) -> FaultInjector:
        arm(self.injector)
        return self.injector

    def __exit__(self, *exc_info) -> None:
        disarm()
