"""libtesla — the run-time support library.

Accepts streams of concrete program events and uses them to manage automata
instances (create, clone, update, finalise), with global and per-thread
stores, bounded preallocated instance pools, the lazy-initialisation
optimisation of section 5.2.2, and a pluggable notification framework.
"""

from .faultinject import (
    FaultInjector,
    InjectedFault,
    active_injector,
    arm,
    declared_fault_sites,
    disarm,
    fault_point,
    fault_site,
    injection,
)
from .instance import AutomatonInstance
from .manager import BoundTracker, TeslaRuntime, live_runtimes, reset_all_runtimes
from .notify import (
    CollectingHandler,
    ErrorPolicy,
    FailStop,
    LogAndContinue,
    Notification,
    NotificationHub,
    NotificationKind,
    StderrDebugHandler,
)
from .perobject import (
    ObjectInstrumentation,
    ObjectMonitor,
    instrument_object_assertion,
)
from .prealloc import DEFAULT_CAPACITY, InstancePool
from .store import (
    ClassRuntime,
    GlobalShard,
    GlobalStore,
    PerThreadStores,
    ShardedGlobalStore,
    ShardLock,
    Store,
    default_shard_count,
    shard_index_for,
)
from .supervisor import (
    CallbackPolicy,
    FailOpen,
    FailStopFaults,
    FailurePolicy,
    MonitorFault,
    QuarantinePolicy,
    QuarantineRecord,
    QuarantineState,
    Supervisor,
)
from .update import handle_cleanup, handle_init, lazy_join_bound, tesla_update_state

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "active_injector",
    "arm",
    "declared_fault_sites",
    "disarm",
    "fault_point",
    "fault_site",
    "injection",
    "CallbackPolicy",
    "FailOpen",
    "FailStopFaults",
    "FailurePolicy",
    "MonitorFault",
    "QuarantinePolicy",
    "QuarantineRecord",
    "QuarantineState",
    "Supervisor",
    "AutomatonInstance",
    "BoundTracker",
    "TeslaRuntime",
    "live_runtimes",
    "reset_all_runtimes",
    "CollectingHandler",
    "ErrorPolicy",
    "FailStop",
    "LogAndContinue",
    "Notification",
    "NotificationHub",
    "NotificationKind",
    "StderrDebugHandler",
    "ObjectInstrumentation",
    "ObjectMonitor",
    "instrument_object_assertion",
    "DEFAULT_CAPACITY",
    "InstancePool",
    "ClassRuntime",
    "GlobalShard",
    "GlobalStore",
    "PerThreadStores",
    "ShardedGlobalStore",
    "ShardLock",
    "Store",
    "default_shard_count",
    "shard_index_for",
    "handle_cleanup",
    "handle_init",
    "lazy_join_bound",
    "tesla_update_state",
]
