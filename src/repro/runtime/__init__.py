"""libtesla — the run-time support library.

Accepts streams of concrete program events and uses them to manage automata
instances (create, clone, update, finalise), with global and per-thread
stores, bounded preallocated instance pools, the lazy-initialisation
optimisation of section 5.2.2, and a pluggable notification framework.
"""

from .instance import AutomatonInstance
from .manager import BoundTracker, TeslaRuntime
from .notify import (
    CollectingHandler,
    ErrorPolicy,
    FailStop,
    LogAndContinue,
    Notification,
    NotificationHub,
    NotificationKind,
    StderrDebugHandler,
)
from .perobject import (
    ObjectInstrumentation,
    ObjectMonitor,
    instrument_object_assertion,
)
from .prealloc import DEFAULT_CAPACITY, InstancePool
from .store import ClassRuntime, GlobalStore, PerThreadStores, Store
from .update import handle_cleanup, handle_init, tesla_update_state

__all__ = [
    "AutomatonInstance",
    "BoundTracker",
    "TeslaRuntime",
    "CollectingHandler",
    "ErrorPolicy",
    "FailStop",
    "LogAndContinue",
    "Notification",
    "NotificationHub",
    "NotificationKind",
    "StderrDebugHandler",
    "ObjectInstrumentation",
    "ObjectMonitor",
    "instrument_object_assertion",
    "DEFAULT_CAPACITY",
    "InstancePool",
    "ClassRuntime",
    "GlobalStore",
    "PerThreadStores",
    "Store",
    "handle_cleanup",
    "handle_init",
    "tesla_update_state",
]
