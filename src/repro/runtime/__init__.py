"""libtesla — the run-time support library.

Accepts streams of concrete program events and uses them to manage automata
instances (create, clone, update, finalise), with global and per-thread
stores, bounded preallocated instance pools, the lazy-initialisation
optimisation of section 5.2.2, and a pluggable notification framework.

Ingestion runs in one of two modes: synchronous (the paper's semantics —
an event is fully evaluated before the instrumented call returns) or
*deferred* (DESIGN §5.4 — capture into per-thread ring buffers via
:mod:`.ringbuf`, evaluation in seqno-merged batches via :mod:`.drain`,
with flushes at synchronization points keeping verdicts exact).
"""

from .drain import DRAINER_THREAD_NAME, OVERFLOW_POLICIES, DrainController
from .faultinject import (
    FaultInjector,
    InjectedFault,
    active_injector,
    arm,
    declared_fault_sites,
    disarm,
    fault_point,
    fault_site,
    injection,
)
from .instance import AutomatonInstance
from .manager import BoundTracker, TeslaRuntime, live_runtimes, reset_all_runtimes
from .notify import (
    CollectingHandler,
    ErrorPolicy,
    FailStop,
    LogAndContinue,
    Notification,
    NotificationHub,
    NotificationKind,
    StderrDebugHandler,
)
from .perobject import (
    ObjectInstrumentation,
    ObjectMonitor,
    instrument_object_assertion,
)
from .prealloc import DEFAULT_CAPACITY, InstancePool
from .ringbuf import DEFAULT_RING_CAPACITY, EventRing, SeqnoSource
from .store import (
    ClassRuntime,
    GlobalShard,
    GlobalStore,
    PerThreadStores,
    ShardedGlobalStore,
    ShardLock,
    Store,
    default_shard_count,
    shard_index_for,
)
from .supervisor import (
    CallbackPolicy,
    FailOpen,
    FailStopFaults,
    FailurePolicy,
    MonitorFault,
    QuarantinePolicy,
    QuarantineRecord,
    QuarantineState,
    Supervisor,
)
from .update import handle_cleanup, handle_init, lazy_join_bound, tesla_update_state

__all__ = [
    "DRAINER_THREAD_NAME",
    "OVERFLOW_POLICIES",
    "DrainController",
    "DEFAULT_RING_CAPACITY",
    "EventRing",
    "SeqnoSource",
    "FaultInjector",
    "InjectedFault",
    "active_injector",
    "arm",
    "declared_fault_sites",
    "disarm",
    "fault_point",
    "fault_site",
    "injection",
    "CallbackPolicy",
    "FailOpen",
    "FailStopFaults",
    "FailurePolicy",
    "MonitorFault",
    "QuarantinePolicy",
    "QuarantineRecord",
    "QuarantineState",
    "Supervisor",
    "AutomatonInstance",
    "BoundTracker",
    "TeslaRuntime",
    "live_runtimes",
    "reset_all_runtimes",
    "CollectingHandler",
    "ErrorPolicy",
    "FailStop",
    "LogAndContinue",
    "Notification",
    "NotificationHub",
    "NotificationKind",
    "StderrDebugHandler",
    "ObjectInstrumentation",
    "ObjectMonitor",
    "instrument_object_assertion",
    "DEFAULT_CAPACITY",
    "InstancePool",
    "ClassRuntime",
    "GlobalShard",
    "GlobalStore",
    "PerThreadStores",
    "ShardedGlobalStore",
    "ShardLock",
    "Store",
    "default_shard_count",
    "shard_index_for",
    "handle_cleanup",
    "handle_init",
    "lazy_join_bound",
    "tesla_update_state",
]
