"""Per-(class, event-key) transition plans: the compiled dispatch path.

The interpreted engine re-derives, on every event, facts that depend only
on the automaton and the event's dispatch key: which transitions could
possibly fire (``Automaton.enabled`` scans every outgoing transition of
every current state and re-checks kind/name), and what each symbol's
argument patterns mean (``EventSymbol.match`` walks the pattern AST).
That work is exactly the per-event instrumentation cost the paper's
section 5.2 optimisations attack.

A :class:`TransitionPlan` hoists all of it to build time.  For one
automaton and one dispatch key it precomputes:

* ``init`` / ``cleanup`` — the bound transitions this key can take, each
  paired with its compiled matcher (usually a no-op: bound events are
  static expressions);
* ``body`` — every EVENT/SITE transition whose symbol dispatches on this
  key, as ``(src-state, transition, compiled-matcher)`` triples.

The kind/name guards of the interpreted matchers are elided: a plan is
only ever consulted for events of its own key, so the guards are
tautological.  Plans are cached on each
:class:`~repro.runtime.store.ClassRuntime` and invalidated by the
process-wide :data:`~repro.runtime.epoch.interest_epoch`, so attaching a
class mid-trace rebuilds stale plans before the next event is processed.

This module deliberately imports only :mod:`repro.core` (plus the
dependency-free fault-injection checkpoints) — the store imports *it*,
never the reverse.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.automaton import (
    Automaton,
    EventMatcher,
    Transition,
    TransitionKind,
)
from ..core.events import EventKind, RuntimeEvent
from ..core.patterns import Binding
from .faultinject import fault_point, fault_site

_FP_BUILD = fault_site("plans.build")

#: An event's routing identity, duplicated from ``runtime.store`` to keep
#: this module free of store imports (the dependency runs store → plans).
PlanKey = Tuple[EventKind, str]


#: Shared empty result: the per-instance common case is "no transition
#: enabled", which must not allocate.
_NO_MATCHES: Tuple = ()


class TransitionPlan:
    """Everything one automaton class does for one dispatch key.

    ``enabled`` is the compiled counterpart of :meth:`Automaton.enabled`
    — identical contract, (transition, new-bindings) pairs — but it scans
    only this key's precomputed body triples instead of every outgoing
    transition of every state, and runs compiled matchers instead of
    interpreting pattern ASTs.  It is specialised at build time for the
    0- and 1-entry shapes that dominate real plans.
    """

    __slots__ = ("key", "init", "cleanup", "body", "enabled")

    def __init__(
        self,
        key: PlanKey,
        init: Tuple[Tuple[Transition, EventMatcher], ...],
        cleanup: Tuple[Tuple[Transition, EventMatcher], ...],
        body: Tuple[Tuple[int, Transition, EventMatcher], ...],
    ) -> None:
        self.key = key
        self.init = init
        self.cleanup = cleanup
        self.body = body
        self.enabled = self._compile_enabled()

    def _compile_enabled(self):
        body = self.body
        if not body:

            def enabled_none(states, event, binding):
                return _NO_MATCHES

            return enabled_none
        if len(body) == 1:
            src0, t0, m0 = body[0]

            def enabled_one(states, event, binding):
                if src0 in states:
                    new = m0(event, binding)
                    if new is not None:
                        return ((t0, new),)
                return _NO_MATCHES

            return enabled_one

        def enabled_many(states, event, binding):
            result: List[Tuple[Transition, Binding]] = []
            for src, transition, matcher in body:
                if src not in states:
                    continue
                new = matcher(event, binding)
                if new is None:
                    continue
                result.append((transition, new))
            return result or _NO_MATCHES

        return enabled_many

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"<TransitionPlan {self.key[0].name}:{self.key[1]!r} "
            f"init={len(self.init)} cleanup={len(self.cleanup)} "
            f"body={len(self.body)}>"
        )


def build_transition_plan(automaton: Automaton, key: PlanKey) -> TransitionPlan:
    """Compile one automaton's reaction to one dispatch key.

    Site symbols dispatch on the *automaton's* name (the event translator
    names assertion-site events after the assertion), mirroring
    ``Automaton.dispatch_keys``.
    """
    fault_point(_FP_BUILD)
    init: List[Tuple[Transition, EventMatcher]] = []
    cleanup: List[Tuple[Transition, EventMatcher]] = []
    body: List[Tuple[int, Transition, EventMatcher]] = []
    compiled: Dict[int, EventMatcher] = {}
    for t in automaton.transitions:
        if t.symbol is None:
            continue
        symbol = automaton.symbols[t.symbol]
        kind, name = symbol.dispatch_key
        if kind is EventKind.ASSERTION_SITE:
            symbol_key = (kind, automaton.name)
        else:
            symbol_key = (kind, name)
        if symbol_key != key:
            continue
        matcher = compiled.get(t.symbol)
        if matcher is None:
            matcher = compiled[t.symbol] = symbol.compile_matcher()
        if t.kind is TransitionKind.INIT:
            init.append((t, matcher))
        elif t.kind is TransitionKind.CLEANUP:
            cleanup.append((t, matcher))
        elif t.kind in (TransitionKind.EVENT, TransitionKind.SITE):
            body.append((t.src, t, matcher))
    return TransitionPlan(key, tuple(init), tuple(cleanup), tuple(body))
