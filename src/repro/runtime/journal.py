"""Durable trace journal: the drained event stream, on disk (DESIGN §5.6).

The deferred pipeline (§5.4) already funnels every captured event through
one place — the drain pass, which merges the per-thread rings into a
seqno-sorted batch before dispatch.  :class:`JournalWriter` is a sink at
exactly that point: each drained ``(seqno, event)`` slot is appended to a
schema-versioned, length-prefixed binary log *before* the batch is
evaluated, so the journal holds every event up to and including the one
that produced a verdict.  ``repro.replay`` reads the log back and re-runs
any window of it through any runtime configuration, offline.

Format
======

``MAGIC ‖ version ‖ record*`` where each record is framed as
``u32 length ‖ body ‖ u32 crc32(body)`` (little-endian).  The first body
byte is the record type:

``M``  journal metadata, deterministic JSON (no timestamps — golden
       fixtures byte-compare).
``A``  the recorded assertions, in ``.tesla`` manifest JSON — a journal
       written through :meth:`TeslaRuntime.install_assertions
       <repro.runtime.manager.TeslaRuntime.install_assertions>` is
       self-contained: replay needs no other input.
``E``  one drained event: varint seqno, zigzag-varint thread id, kind and
       assign-op bytes, the dispatch name, then the payload (args,
       retval, target, scope, stack) as tagged values, then the capture
       timestamp as a little-endian f64 (seconds on the runtime's
       monotonic clock — what the timed combinators judge against).
``B``  one drain pass's batch: a varint event count, the varint base
       seqno, then that many events — zigzag-varint thread id, kind and
       assign-op bytes, name, payload, trailing f64 capture timestamp —
       with each event's seqno implicit (base + position; a drain batch
       is always a contiguous ascending seqno range).  Batching
       amortises the frame (length prefix + CRC) and the seqnos across
       the whole drain pass — per-record framing dominates record-mode
       overhead otherwise — at the cost of coarser recovery: a damaged
       batch loses the batch, not one event.  Writers fall back to
       ``E`` records for non-contiguous slots.  The timestamp sits
       outside the cached payload blobs: two events differing only in
       capture time still share one cache entry.
``C``  the closing footer with final record/event counts.  Its absence
       marks a journal that was never cleanly closed (a crashed run) —
       reported, never silently dropped.

Values round-trip exactly over the JSON-ish domain (None, bools, ints,
floats, strings, bytes, tuples, lists, dicts).  Anything else — a live
socket, a kernel object — is journalled as an :class:`Opaque` ``repr``
snapshot and counted in ``stats()['opaque_values']``: replay can still
*order and dispatch* such events, it just cannot compare their payloads
by value.

Changing any of this encoding requires bumping :data:`JOURNAL_VERSION`;
``tests/unit/runtime/test_journal_schema.py`` pins the golden bytes.
"""

from __future__ import annotations

import json
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Tuple, Union

from ..core.ast import AssignOp, TemporalAssertion
from ..core.events import EventKind, RuntimeEvent
from ..errors import JournalCorruption, JournalError

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "Journal",
    "JournalWriter",
    "Opaque",
    "read_journal",
]

#: File magic; the trailing byte is the schema version so ``file(1)``-style
#: sniffing sees both at a fixed offset.
JOURNAL_MAGIC = b"TSLAJRNL"

#: Bump this whenever the binary encoding below changes shape.  The golden
#: fixture test fails loudly if the bytes change without a bump.
JOURNAL_VERSION = 2

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")

_REC_META = 0x4D  # 'M'
_REC_ASSERTIONS = 0x41  # 'A'
_REC_EVENT = 0x45  # 'E'
_REC_BATCH = 0x42  # 'B'
_REC_FOOTER = 0x43  # 'C'

_KINDS: Tuple[EventKind, ...] = (
    EventKind.CALL,
    EventKind.RETURN,
    EventKind.FIELD_ASSIGN,
    EventKind.ASSERTION_SITE,
)
_KIND_INDEX = {kind: index for index, kind in enumerate(_KINDS)}

_OPS: Tuple[AssignOp, ...] = tuple(AssignOp)
_OP_INDEX = {op: index for index, op in enumerate(_OPS)}
_OP_NONE = 0xFF

# Value tags.  Bool tags come before the int test everywhere (bool is a
# subclass of int in Python).
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_OPAQUE = 0x7F


@dataclass(frozen=True)
class Opaque:
    """A journalled value that had no exact binary encoding.

    Holds the ``repr`` snapshot taken at record time; two opaques compare
    equal iff their snapshots do.  Replay treats them as inert tokens —
    good enough to *order* events, not to re-match ``Const`` patterns
    against live objects.
    """

    text: str

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Opaque({self.text})"


def _write_uvarint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_svarint(out: bytearray, value: int) -> None:
    # Zigzag: small magnitudes of either sign stay small.
    _write_uvarint(out, (value << 1) if value >= 0 else ((-value) << 1) - 1)


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _write_uvarint(out, len(data))
    out.extend(data)


class _Encoder:
    """One record body under construction; counts opaque fallbacks."""

    __slots__ = ("out", "opaque")

    def __init__(self) -> None:
        self.out = bytearray()
        self.opaque = 0

    def value(self, value: Any) -> None:
        out = self.out
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif type(value) is int:
            out.append(_T_INT)
            _write_svarint(out, value)
        elif type(value) is float:
            out.append(_T_FLOAT)
            out.extend(_F64.pack(value))
        elif type(value) is str:
            out.append(_T_STR)
            _write_str(out, value)
        elif type(value) is bytes:
            out.append(_T_BYTES)
            _write_uvarint(out, len(value))
            out.extend(value)
        elif type(value) is tuple or type(value) is list:
            out.append(_T_TUPLE if type(value) is tuple else _T_LIST)
            _write_uvarint(out, len(value))
            for item in value:
                self.value(item)
        elif type(value) is dict:
            out.append(_T_DICT)
            _write_uvarint(out, len(value))
            for key, item in value.items():
                self.value(key)
                self.value(item)
        elif type(value) is Opaque:
            # Re-journalling a decoded journal round-trips opaques as-is.
            out.append(_T_OPAQUE)
            _write_str(out, value.text)
        else:
            self.opaque += 1
            out.append(_T_OPAQUE)
            _write_str(out, repr(value))


#: Scalar types that encode purely from (type, value) — safe to cache.
#: Containers are excluded from cacheability checks at store time:
#: ``((1,),) == ((True,),)`` would collide, and a shallow type check on
#: the outer tuple could not tell them apart.
_SCALAR_TYPES = frozenset(
    (str, int, float, bytes, bool, type(None))
)

#: (thread id, kind, op, name, args, retval) → (blob, ret guard, args
#: guard).  Real traces repeat a small set of event shapes (the same
#: hooks firing with the same small value vocabulary), so on a hit the
#: per-event encode cost collapses to one tuple build + one dict probe
#: returning the fully pre-encoded thread-id + suffix bytes.  The key
#: alone is ambiguous across numeric types (``1 == True == 1.0`` and
#: they hash alike), so entries whose values carry numeric payloads keep
#: a guard — the retval class and/or the original args tuple — that a
#: hit must type-match before the cached bytes are trusted.  Only
#: opaque-free suffixes are cached (an object's repr may change between
#: occurrences).
_SUFFIX_CACHE: Dict[tuple, Tuple[bytes, Optional[type], Optional[tuple]]] = {}
_SUFFIX_CACHE_MAX = 4096

#: Same idea for scope-carrying events (assertion sites): key grows a
#: ``tuple(scope.items())`` tail, and the entry carries a third guard —
#: the items tuple itself — when any scope key or value is numeric
#: (``{1: x}`` and ``{True: x}`` hash alike).  Sites are a small share
#: of a trace but pay the full per-event encode without this.
_SCOPED_CACHE: Dict[
    tuple, Tuple[bytes, Optional[type], Optional[tuple], Optional[tuple]]
] = {}

#: thread id → encoded zigzag varint (a handful per process).
_TID_CACHE: Dict[int, bytes] = {}



def _encode_suffix(event: RuntimeEvent, kind: int) -> Tuple[bytes, int]:
    """Everything after the thread id: kind, op, name, payload values."""
    enc = _Encoder()
    out = enc.out
    out.append(kind)
    out.append(_OP_NONE if event.op is None else _OP_INDEX[event.op])
    _write_str(out, event.name)
    enc.value(tuple(event.args))
    enc.value(event.retval)
    enc.value(event.target)
    enc.value(dict(event.scope))
    enc.value(tuple(event.stack))
    return bytes(out), enc.opaque


def _encode_tid(tid: int) -> bytes:
    buf = bytearray()
    _write_svarint(buf, tid)
    encoded = bytes(buf)
    if len(_TID_CACHE) < 4096:
        _TID_CACHE[tid] = encoded
    return encoded


def _encode_unseq(event: RuntimeEvent) -> Tuple[bytes, int]:
    """One batch-inner event body: thread id + suffix, no seqno."""
    kind = _KIND_INDEX.get(event.kind)
    if kind is None:
        raise JournalError(f"unjournallable event kind {event.kind!r}")
    suffix, opaque = _encode_suffix(event, kind)
    tid = event.thread_id
    tid_bytes = _TID_CACHE.get(tid) or _encode_tid(tid)
    return tid_bytes + suffix, opaque


def _cache_blob(event: RuntimeEvent, key: tuple) -> Optional[bytes]:
    """Encode *event*'s inner body and cache it when the shape allows.

    Returns the blob when cached, None when the event must take the
    uncached path (non-scalar values or opaque fallbacks)."""
    scalars = _SCALAR_TYPES
    for value in event.args:
        if value.__class__ not in scalars:
            return None
    retval = event.retval
    if retval.__class__ not in scalars:
        return None
    kind = _KIND_INDEX.get(event.kind)
    if kind is None:
        raise JournalError(f"unjournallable event kind {event.kind!r}")
    suffix, opaque = _encode_suffix(event, kind)
    if opaque:
        return None
    tid = event.thread_id
    blob = (_TID_CACHE.get(tid) or _encode_tid(tid)) + suffix
    ret_guard = retval.__class__ if isinstance(retval, (int, float)) else None
    args_guard = (
        event.args
        if any(isinstance(value, (int, float)) for value in event.args)
        else None
    )
    if len(_SUFFIX_CACHE) >= _SUFFIX_CACHE_MAX:
        _SUFFIX_CACHE.clear()
    _SUFFIX_CACHE[key] = (blob, ret_guard, args_guard)
    return blob


def _cache_scoped_blob(
    event: RuntimeEvent, key: tuple, items: tuple
) -> Optional[bytes]:
    """As :func:`_cache_blob` for scope-carrying events (sites)."""
    scalars = _SCALAR_TYPES
    for value in event.args:
        if value.__class__ not in scalars:
            return None
    retval = event.retval
    if retval.__class__ not in scalars:
        return None
    for k, v in items:
        if k.__class__ not in scalars or v.__class__ not in scalars:
            return None
    kind = _KIND_INDEX.get(event.kind)
    if kind is None:
        raise JournalError(f"unjournallable event kind {event.kind!r}")
    suffix, opaque = _encode_suffix(event, kind)
    if opaque:
        return None
    tid = event.thread_id
    blob = (_TID_CACHE.get(tid) or _encode_tid(tid)) + suffix
    ret_guard = retval.__class__ if isinstance(retval, (int, float)) else None
    args_guard = (
        event.args
        if any(isinstance(value, (int, float)) for value in event.args)
        else None
    )
    scope_guard = (
        items
        if any(
            isinstance(k, (int, float)) or isinstance(v, (int, float))
            for k, v in items
        )
        else None
    )
    if len(_SCOPED_CACHE) >= _SUFFIX_CACHE_MAX:
        _SCOPED_CACHE.clear()
    _SCOPED_CACHE[key] = (blob, ret_guard, args_guard, scope_guard)
    return blob


def encode_event(seqno: int, event: RuntimeEvent) -> Tuple[bytes, int]:
    """Encode one slot as an ``E`` record body; returns (body, opaques)."""
    if seqno < 0:
        raise JournalError(f"journal seqnos are non-negative, got {seqno}")
    inner, opaque = _encode_unseq(event)
    head = bytearray((_REC_EVENT,))
    _write_uvarint(head, seqno)
    return bytes(head) + inner + _F64.pack(event.timestamp), opaque


def _encode_fallback(
    slots: List[Tuple[int, RuntimeEvent]]
) -> Tuple[bytes, int, int, int]:
    """Frame each slot as its own ``E`` record (non-contiguous seqnos)."""
    pack = _U32.pack
    crc32 = zlib.crc32
    buf = bytearray()
    opaques = 0
    for seqno, event in slots:
        body, opaque = encode_event(seqno, event)
        opaques += opaque
        buf += pack(len(body))
        buf += body
        buf += pack(crc32(body))
    return bytes(buf), len(slots), len(slots), opaques


def encode_batch(
    slots: Iterable[Tuple[int, RuntimeEvent]]
) -> Tuple[bytes, int, int, int]:
    """Encode a drain pass's slots; returns (frame, events, records, opaques).

    A batch whose seqnos form a contiguous ascending range — every
    drain-pass batch does, the merge is seqno-sorted over a gap-free
    counter — becomes one framed ``B`` record: the frame (length prefix
    + CRC) and the base seqno are paid once, and the common event shape
    (empty scope/stack, no target, scalar payload) resolves to a cached
    pre-encoded blob, so steady-state cost per event is one dict probe
    plus one byte concatenation.  Anything else falls back to per-event
    ``E`` records.
    """
    if not isinstance(slots, list):
        slots = list(slots)
    if not slots:
        return b"", 0, 0, 0
    count = len(slots)
    base = slots[0][0]
    if base < 0 or slots[-1][0] - base + 1 != count:
        return _encode_fallback(slots)
    cache = _SUFFIX_CACHE
    body = bytearray((_REC_BATCH,))
    _write_uvarint(body, count)
    _write_uvarint(body, base)
    opaques = 0
    for want, slot in enumerate(slots, base):
        seqno, event = slot
        if seqno != want:  # not actually contiguous: start over
            return _encode_fallback(slots)
        blob = None
        # Instance-dict subscripts with literal keys are the cheapest
        # field access CPython offers (~2x faster here than attrgetter);
        # RuntimeEvent is a plain (non-slots) dataclass, so every field
        # lives in __dict__.
        d = event.__dict__
        if not d["scope"] and not d["stack"] and d["target"] is None:
            key = (
                d["thread_id"], d["kind"], d["op"],
                d["name"], d["args"], d["retval"],
            )
            try:
                # Direct subscript, not .get(): the steady state is a
                # hit, and the zero-cost try beats a bound-method call.
                entry = cache[key]
            except KeyError:
                entry = None
            except TypeError:  # unhashable payload: uncached path
                entry = key = None
            if entry is not None:
                blob, ret_guard, args_guard = entry
                # Key equality is not type equality (1 == True == 1.0):
                # entries with numeric payloads carry guards that must
                # type-match before the cached bytes are trusted.
                if (
                    ret_guard is not None
                    and ret_guard is not d["retval"].__class__
                ):
                    blob = None
                elif args_guard is not None:
                    for a, b in zip(d["args"], args_guard):
                        if type(a) is not type(b):
                            blob = None
                            break
            elif key is not None:
                blob = _cache_blob(event, key)
        elif not d["stack"] and d["target"] is None:
            # Scope-carrying events (assertion sites): same cache idea
            # with the scope snapshot folded into the key.
            try:
                items = tuple(d["scope"].items())
                key = (
                    d["thread_id"], d["kind"], d["op"],
                    d["name"], d["args"], d["retval"], items,
                )
                entry = _SCOPED_CACHE[key]
            except KeyError:
                entry = None
            except (TypeError, AttributeError):
                entry = key = None
            if entry is not None:
                blob, ret_guard, args_guard, scope_guard = entry
                if (
                    ret_guard is not None
                    and ret_guard is not d["retval"].__class__
                ):
                    blob = None
                elif args_guard is not None and any(
                    type(a) is not type(b)
                    for a, b in zip(d["args"], args_guard)
                ):
                    blob = None
                elif scope_guard is not None:
                    for (ka, va), (kb, vb) in zip(items, scope_guard):
                        if (
                            type(ka) is not type(kb)
                            or type(va) is not type(vb)
                        ):
                            blob = None
                            break
            elif key is not None:
                blob = _cache_scoped_blob(event, key, items)
        if blob is None:
            inner, opaque = _encode_unseq(event)
            opaques += opaque
            body += inner
        else:
            body += blob
        # Capture timestamp travels outside the cached blob so the blob
        # stays valid across events that differ only in capture time.
        body += _F64.pack(d["timestamp"])
    frame = _U32.pack(len(body)) + body + _U32.pack(zlib.crc32(body))
    return frame, count, 1, opaques


class _Decoder:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _need(self, count: int) -> None:
        if self.pos + count > len(self.data):
            raise ValueError("record body truncated")

    def byte(self) -> int:
        self._need(1)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def take(self, count: int) -> bytes:
        self._need(count)
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def uvarint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            # Python ints are arbitrary-precision, so the encoder emits
            # varints of any length; this only guards against a crafted
            # record burning unbounded memory.
            if shift > 1_000_000:
                raise ValueError("varint too long")

    def svarint(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def string(self) -> str:
        return self.take(self.uvarint()).decode("utf-8")

    def value(self) -> Any:
        tag = self.byte()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return self.svarint()
        if tag == _T_FLOAT:
            return _F64.unpack(self.take(8))[0]
        if tag == _T_STR:
            return self.string()
        if tag == _T_BYTES:
            return self.take(self.uvarint())
        if tag == _T_TUPLE:
            return tuple(self.value() for _ in range(self.uvarint()))
        if tag == _T_LIST:
            return [self.value() for _ in range(self.uvarint())]
        if tag == _T_DICT:
            return {self.value(): self.value() for _ in range(self.uvarint())}
        if tag == _T_OPAQUE:
            return Opaque(self.string())
        raise ValueError(f"unknown value tag {tag:#x}")


def _decode_unseq(dec: _Decoder) -> RuntimeEvent:
    """Decode one seqno-less inner event from *dec*'s current position."""
    thread_id = dec.svarint()
    kind_index = dec.byte()
    if kind_index >= len(_KINDS):
        raise ValueError(f"unknown event kind byte {kind_index:#x}")
    op_index = dec.byte()
    if op_index != _OP_NONE and op_index >= len(_OPS):
        raise ValueError(f"unknown assign-op byte {op_index:#x}")
    name = dec.string()
    args = dec.value()
    retval = dec.value()
    target = dec.value()
    scope = dec.value()
    stack = dec.value()
    timestamp = _F64.unpack(dec.take(8))[0]
    event = RuntimeEvent(
        kind=_KINDS[kind_index],
        name=name,
        args=args,
        retval=retval,
        op=None if op_index == _OP_NONE else _OPS[op_index],
        target=target,
        scope=scope,
        thread_id=thread_id,
        stack=stack,
        timestamp=timestamp,
    )
    return event


def decode_event(body: bytes) -> Tuple[int, RuntimeEvent]:
    """Decode one ``E`` record body back into a ``(seqno, event)`` slot."""
    dec = _Decoder(body)
    if dec.byte() != _REC_EVENT:
        raise ValueError("not an event record")
    seqno = dec.uvarint()
    event = _decode_unseq(dec)
    if dec.pos != len(body):
        raise ValueError("trailing bytes after event record")
    return seqno, event


def decode_batch(body: bytes) -> List[Tuple[int, RuntimeEvent]]:
    """Decode one ``B`` record body back into its ``(seqno, event)`` slots."""
    dec = _Decoder(body)
    if dec.byte() != _REC_BATCH:
        raise ValueError("not a batch record")
    count = dec.uvarint()
    # Each inner event is several bytes; a count beyond the body length
    # is a corrupt (or crafted) header, not a big batch.
    if count > len(body):
        raise ValueError(
            f"batch record claims {count} events in {len(body)} bytes"
        )
    base = dec.uvarint()
    slots = [(base + i, _decode_unseq(dec)) for i in range(count)]
    if dec.pos != len(body):
        raise ValueError("trailing bytes after batch record")
    return slots


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class JournalWriter:
    """Append-only journal sink, installed at the drain boundary.

    ``target`` is a filesystem path or any binary file-like object (tests
    journal into ``BytesIO``).  The header, metadata record and — when the
    runtime installs through ``install_assertions`` — the assertion
    manifest are written up front; drained slots follow in dispatch
    order.  :meth:`close` appends the footer that marks a clean shutdown.

    Appends are serialised by an internal lock (the drain lock already
    serialises drain passes, but ``record_assertions`` can race a
    background drainer).
    """

    def __init__(
        self,
        target: Union[str, Path, BinaryIO],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if hasattr(target, "write"):
            self.path: Optional[Path] = None
            self._fh: BinaryIO = target  # type: ignore[assignment]
            self._owns_fh = False
        else:
            self.path = Path(target)
            # A wide userspace buffer: record mode appends a ~KB frame
            # per drain pass, and the default 8 KiB buffer would push a
            # syscall (and any filesystem stall) onto the drain path
            # every few batches.
            self._fh = open(self.path, "wb", buffering=1 << 20)
            self._owns_fh = True
        self._lock = threading.Lock()
        self.closed = False
        self.records = 0
        self.events = 0
        self.assertion_count = 0
        self.opaque_values = 0
        self.bytes_written = 0
        header = JOURNAL_MAGIC + bytes((JOURNAL_VERSION,))
        self._fh.write(header)
        self.bytes_written += len(header)
        body = bytearray((_REC_META,))
        payload = {"format": "tesla-journal", "version": JOURNAL_VERSION}
        payload.update(meta or {})
        body.extend(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        )
        self._append_record(bytes(body))

    def _append_record(self, body: bytes) -> None:
        frame = _U32.pack(len(body)) + body + _U32.pack(zlib.crc32(body))
        self._fh.write(frame)
        self.bytes_written += len(frame)
        self.records += 1

    def _check_open(self) -> None:
        if self.closed:
            raise JournalError("journal writer is closed")

    def record_assertions(
        self, assertions: Iterable[TemporalAssertion]
    ) -> None:
        """Embed the installed assertions so the journal replays alone."""
        from ..core.manifest import MANIFEST_VERSION, assertion_to_json

        batch = [assertion_to_json(a) for a in assertions]
        if not batch:
            return
        body = bytearray((_REC_ASSERTIONS,))
        body.extend(
            json.dumps(
                {"manifest_version": MANIFEST_VERSION, "assertions": batch},
                sort_keys=True,
                separators=(",", ":"),
            ).encode()
        )
        with self._lock:
            self._check_open()
            self._append_record(bytes(body))
            self.assertion_count += len(batch)

    def append(self, seqno: int, event: RuntimeEvent) -> None:
        """Append one drained slot."""
        body, opaque = encode_event(seqno, event)
        with self._lock:
            self._check_open()
            self._append_record(body)
            self.events += 1
            self.opaque_values += opaque

    def append_batch(self, slots: Iterable[Tuple[int, RuntimeEvent]]) -> None:
        """Append one drain pass's merged batch, in dispatch order.

        The whole batch becomes one framed ``B`` record (via
        :func:`encode_batch`, the cache-assisted hot path) written with
        a single ``write`` call — per-record framing and writes would
        otherwise dominate record-mode overhead.
        """
        frame, count, records, opaques = encode_batch(slots)
        if not count:
            return
        with self._lock:
            self._check_open()
            self._fh.write(frame)
            self.bytes_written += len(frame)
            self.records += records
            self.events += count
            self.opaque_values += opaques

    def flush(self) -> None:
        with self._lock:
            if not self.closed:
                self._fh.flush()

    def close(self) -> None:
        """Write the clean-shutdown footer and release the file."""
        with self._lock:
            if self.closed:
                return
            body = bytearray((_REC_FOOTER,))
            body.extend(
                json.dumps(
                    {"events": self.events, "records": self.records},
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode()
            )
            self._append_record(bytes(body))
            self._fh.flush()
            if self._owns_fh:
                self._fh.close()
            self.closed = True

    def stats(self) -> dict:
        return {
            "path": None if self.path is None else str(self.path),
            "records": self.records,
            "events": self.events,
            "assertions": self.assertion_count,
            "opaque_values": self.opaque_values,
            "bytes": self.bytes_written,
            "closed": self.closed,
        }


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


@dataclass
class Journal:
    """One journal, decoded."""

    version: int
    meta: Dict[str, Any]
    #: Drained ``(seqno, event)`` slots, in the order they were dispatched.
    slots: List[Tuple[int, RuntimeEvent]]
    #: Assertions embedded by ``install_assertions`` (may be empty when the
    #: recording runtime installed raw automata).
    assertions: List[TemporalAssertion] = field(default_factory=list)
    #: True when the closing footer was present and consistent.
    clean_close: bool = False
    #: Human-readable description of a tolerated damaged/unterminated tail.
    tail_error: Optional[str] = None
    byte_size: int = 0
    #: Records decoded (all types), for corruption attribution.
    records_read: int = 0

    @property
    def events(self) -> List[RuntimeEvent]:
        return [event for _, event in self.slots]


def read_journal(
    source: Union[str, Path, bytes, bytearray, BinaryIO],
    tolerate_tail: bool = False,
) -> Journal:
    """Decode a journal from a path, bytes, or binary file-like object.

    A damaged record (CRC mismatch, truncated frame, undecodable body)
    raises :class:`~repro.errors.JournalCorruption` carrying how many
    records were recovered before it — or, with ``tolerate_tail=True``,
    returns the recovered prefix with ``tail_error`` set.  A missing
    footer is *not* an exception (a crashed run legitimately never closes)
    but is reported via ``clean_close=False`` / ``tail_error``.
    """
    if isinstance(source, (bytes, bytearray)):
        data = bytes(source)
    elif hasattr(source, "read"):
        if hasattr(source, "seek"):
            source.seek(0)
        data = source.read()  # type: ignore[union-attr]
    else:
        data = Path(source).read_bytes()

    header_len = len(JOURNAL_MAGIC) + 1
    if len(data) < header_len or data[: len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
        raise JournalCorruption("not a TESLA trace journal", 0, 0)
    version = data[len(JOURNAL_MAGIC)]
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal schema version {version} is not supported by this "
            f"build (expected {JOURNAL_VERSION}); replay it with a matching "
            f"checkout, or re-record"
        )

    journal = Journal(
        version=version, meta={}, slots=[], byte_size=len(data)
    )
    offset = header_len
    footer: Optional[Dict[str, Any]] = None

    def damaged(message: str, at: int) -> Journal:
        if not tolerate_tail:
            raise JournalCorruption(message, journal.records_read, at)
        journal.tail_error = (
            f"{message} (at byte {at}; "
            f"{journal.records_read} record(s) recovered)"
        )
        return journal

    while offset < len(data):
        if footer is not None:
            return damaged("records after the closing footer", offset)
        if offset + 4 > len(data):
            return damaged("record length truncated", offset)
        (length,) = _U32.unpack_from(data, offset)
        end = offset + 4 + length + 4
        if length == 0 or end > len(data):
            return damaged("record frame truncated", offset)
        body = data[offset + 4 : offset + 4 + length]
        (crc,) = _U32.unpack_from(data, offset + 4 + length)
        if zlib.crc32(body) != crc:
            return damaged("record CRC mismatch", offset)
        rec_type = body[0]
        try:
            if rec_type == _REC_BATCH:
                journal.slots.extend(decode_batch(body))
            elif rec_type == _REC_EVENT:
                journal.slots.append(decode_event(body))
            elif rec_type == _REC_META:
                journal.meta = json.loads(body[1:])
            elif rec_type == _REC_ASSERTIONS:
                from ..core.manifest import assertion_from_json

                payload = json.loads(body[1:])
                journal.assertions.extend(
                    assertion_from_json(entry)
                    for entry in payload.get("assertions", [])
                )
            elif rec_type == _REC_FOOTER:
                footer = json.loads(body[1:])
            else:
                return damaged(f"unknown record type {rec_type:#x}", offset)
        except JournalCorruption:
            raise
        except Exception as exc:
            return damaged(f"undecodable record ({exc})", offset)
        journal.records_read += 1
        offset = end

    if footer is None:
        journal.tail_error = (
            "journal has no closing footer (recording was interrupted); "
            f"{len(journal.slots)} event(s) recovered"
        )
    elif footer.get("events") != len(journal.slots):
        message = (
            f"footer claims {footer.get('events')} events, "
            f"found {len(journal.slots)}"
        )
        if not tolerate_tail:
            raise JournalCorruption(message, journal.records_read, offset)
        journal.tail_error = message
    else:
        journal.clean_close = True
    return journal
