"""``tesla_update_state`` — the transition engine at the heart of libtesla.

Given one concrete program event and one automaton class, this module
advances the class's instances through the lifecycle of section 4.4.1:

«init»
    The temporal bound's entry event activates the class and creates the
    wildcard instance ``(∗)`` (eagerly, or lazily on first relevant event
    when the section 5.2.2 optimisation is enabled).

«clone»
    An event that supplies a value for a free variable clones a named
    instance which takes the transition; ``(∗)`` remains to spawn more.

update
    Instances step over *sets* of NFA states: states with an enabled
    transition move, states without one stay (the default, non-strict
    "ignore events that cannot advance" semantics; ``strict`` automata
    instead treat an unconsumable referenced event as a violation).

error
    An assertion-site event that *no* instance can accept is a temporal
    violation — e.g. the site names ``vp3`` but only ``(vp1)``/``(vp2)``
    were ever checked.

«cleanup»
    The bound's exit event finalises the class: instances whose state set
    enables a cleanup transition accept; instances that passed the
    assertion site but did not discharge their remaining (``eventually``)
    obligations are violations; instances that never reached the site are
    discarded silently — the "bypass" behaviour for code paths that never
    execute the assertion.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.automaton import Transition, TransitionKind
from ..core.events import EventKind, RuntimeEvent
from ..core.patterns import EMPTY_BINDING
from ..errors import TemporalViolation
from . import faultinject as _fi
from .faultinject import fault_site
from .instance import AutomatonInstance
from .notify import Notification, NotificationHub, NotificationKind
from .plans import TransitionPlan
from .store import BoundId, BoundTracker, ClassRuntime

_FP_INIT = fault_site("update.init")
_FP_STEP = fault_site("update.step")
_FP_CLEANUP = fault_site("update.cleanup")

#: Violation reason strings for the timed semantics (DESIGN §5.9).  These
#: are part of the three-way contract between the runtime, the journal
#: replay oracle (``repro.replay.ltl_oracle.RUNTIME_REASONS``) and the
#: differential tests — change them in lockstep or not at all.
DEADLINE_REASON = (
    "deadline expired before the automaton discharged its obligations "
    "(no permitted successor event arrived in time)"
)
RATE_REASON = (
    "rate limit exceeded: more matching events than allowed within the "
    "sliding window"
)


def _match_static(cr: ClassRuntime, event: RuntimeEvent, kind: TransitionKind):
    """Match ``event`` against the class's init or cleanup symbol.

    Returns the new-binding dict on match (usually empty — bound events are
    static expressions), or None.
    """
    for t in cr.automaton.transitions:
        if t.kind is not kind or t.symbol is None:
            continue
        got = cr.automaton.symbols[t.symbol].match(event, {})
        if got is not None:
            return t, got
    return None, None


def _match_plan_entries(entries, event: RuntimeEvent):
    """Compiled counterpart of :func:`_match_static`: first matching bound
    transition from a plan's precomputed init/cleanup entries."""
    for t, matcher in entries:
        got = matcher(event, EMPTY_BINDING)
        if got is not None:
            return t, got
    return None, None


def matches_init(cr: ClassRuntime, event: RuntimeEvent) -> bool:
    """Whether the event opens this class's temporal bound."""
    t, _ = _match_static(cr, event, TransitionKind.INIT)
    return t is not None


def matches_cleanup(cr: ClassRuntime, event: RuntimeEvent) -> bool:
    """Whether the event closes this class's temporal bound."""
    t, _ = _match_static(cr, event, TransitionKind.CLEANUP)
    return t is not None


def expire_deadlines(
    cr: ClassRuntime,
    now: float,
    hub: NotificationHub,
    event: Optional[RuntimeEvent] = None,
) -> int:
    """Expire instances whose ``deadline(...)`` budget has run out.

    An instance is expired when it has opened an obligation (took the
    assertion site), cannot yet accept, and more than ``deadline_s``
    seconds of capture time have passed since its bound entry.  Expired
    instances are pruned and reported as violations immediately — this is
    what makes a missed deadline surface *without* a successor event.
    Called from two places with identical semantics: per-class before each
    event (so the verdict stream is a pure function of the timestamped
    trace in every dispatch configuration), and from the manager's timer
    check at sync-point flushes (the no-successor-event path).

    Returns the number of instances expired.
    """
    deadline = cr.automaton.deadline_s
    if deadline is None or not cr.active:
        return 0
    expired = cr.pool.prune(
        lambda i: i.saw_site
        and not i.accepting_at_cleanup()
        and now - i.entry_ts > deadline
    )
    for instance in expired:
        cr.errors += 1
        violation = TemporalViolation(
            automaton=cr.automaton.name,
            reason=DEADLINE_REASON,
            event=event,
            binding=instance.binding_items(),
            sampling_rate=cr.sample_rate,
        )
        hub.emit(
            Notification(
                kind=NotificationKind.ERROR,
                automaton=cr.automaton.name,
                instance_name=instance.name,
                binding=instance.binding_items(),
                event=event,
                violation=violation,
            )
        )
    return len(expired)


def _materialise(
    cr: ClassRuntime,
    hub: NotificationHub,
    binding: Dict[str, Any],
    entry_ts: float = 0.0,
) -> None:
    instance = AutomatonInstance(
        automaton=cr.automaton,
        states=cr.automaton.entry_states,
        binding=binding,
        entry_ts=entry_ts,
    )
    if cr.pool.add(instance):
        if hub.detailed:
            hub.emit(
                Notification(
                    kind=NotificationKind.INIT,
                    automaton=cr.automaton.name,
                    instance_name=instance.name,
                    binding=instance.binding_items(),
                    states=tuple(sorted(instance.states)),
                )
            )
    elif not cr.overflow_reported:
        # One OVERFLOW report per bound, not one per dropped instance: a
        # saturated pool would otherwise flood the hub with a notification
        # for every event in the rest of the bound.  Raw drop counts stay
        # exact in ``cr.pool.stats()`` (§4.4.1's resize-next-run numbers).
        cr.overflow_reported = True
        hub.emit(
            Notification(
                kind=NotificationKind.OVERFLOW,
                automaton=cr.automaton.name,
                instance_name=instance.name,
            )
        )


def handle_init(
    cr: ClassRuntime,
    event: RuntimeEvent,
    hub: NotificationHub,
    lazy: bool,
    plan: Optional[TransitionPlan] = None,
) -> None:
    """Open the temporal bound for this class."""
    if cr.active:
        # Re-entrant bound (recursive entry): libtesla ignores events until
        # the next init *after* cleanup; a nested init is a no-op.
        return
    if _fi._active is not None:
        _fi.fault_point(_FP_INIT)
    if plan is not None:
        transition, binding = _match_plan_entries(plan.init, event)
    else:
        transition, binding = _match_static(cr, event, TransitionKind.INIT)
    cr.active = True
    cr.overflow_mark = cr.pool.overflows
    cr.overflow_reported = False
    cr.count_transition(transition)
    if lazy:
        cr.pending = True
        cr.lazy_binding = dict(binding)
        cr.lazy_entry_ts = event.timestamp
    else:
        _materialise(cr, hub, dict(binding), event.timestamp)


def handle_cleanup(
    cr: ClassRuntime,
    event: RuntimeEvent,
    hub: NotificationHub,
    plan: Optional[TransitionPlan] = None,
) -> None:
    """Close the temporal bound: finalise every instance and reset."""
    if not cr.active:
        return
    if _fi._active is not None:
        _fi.fault_point(_FP_CLEANUP)
    if cr.automaton.deadline_s is not None:
        # A late cleanup is a *deadline* violation, not a cleanup one:
        # expire first so the verdict names the budget that was missed,
        # identically in sync, deferred and batched configurations.
        expire_deadlines(cr, event.timestamp, hub, event)
    if plan is not None:
        transition, _ = _match_plan_entries(plan.cleanup, event)
    else:
        transition, _ = _match_static(cr, event, TransitionKind.CLEANUP)
    if transition is not None:
        cr.count_transition(transition)
    cr.active = False
    cr.pending = False
    for instance in cr.pool.expunge():
        if instance.accepting_at_cleanup():
            cr.accepts += 1
            if hub.detailed:
                hub.emit(
                    Notification(
                        kind=NotificationKind.FINALISE,
                        automaton=cr.automaton.name,
                        instance_name=instance.name,
                        binding=instance.binding_items(),
                        states=tuple(sorted(instance.states)),
                    )
                )
        elif instance.saw_site:
            cr.errors += 1
            violation = TemporalViolation(
                automaton=cr.automaton.name,
                reason=(
                    "temporal bound closed before the automaton accepted "
                    "(an 'eventually' obligation was never discharged)"
                ),
                event=event,
                binding=instance.binding_items(),
                sampling_rate=cr.sample_rate,
            )
            hub.emit(
                Notification(
                    kind=NotificationKind.ERROR,
                    automaton=cr.automaton.name,
                    instance_name=instance.name,
                    binding=instance.binding_items(),
                    event=event,
                    violation=violation,
                )
            )
        # else: never reached the assertion site — the bypass path.


def _step(
    cr: ClassRuntime,
    instance: AutomatonInstance,
    matched: List[Transition],
    hub: NotificationHub,
    event: RuntimeEvent,
) -> bool:
    """Advance one instance over its matched transitions.

    Returns True if a site transition was taken.
    """
    if len(matched) == 1:
        # One transition is by far the common case; frozenset difference/
        # union beats rebuilding the state set from set literals.
        t0 = matched[0]
        if cr.automaton.strict:
            new_states = frozenset((t0.dst,))
        else:
            new_states = instance.states.difference((t0.src,)).union(
                (t0.dst,)
            )
        took_site = t0.kind is TransitionKind.SITE
        cr.count_transition(t0)
    else:
        if cr.automaton.strict:
            # Strict stepping commits: states that cannot consume a
            # referenced event are dropped (this is what makes XOR
            # exclusive — taking one branch abandons the other's states).
            # Mirrors :func:`repro.core.determinize.nfa_step_strict`.
            new_states = frozenset(t.dst for t in matched)
        else:
            moved_srcs = {t.src for t in matched}
            new_states = frozenset(
                {t.dst for t in matched} | (set(instance.states) - moved_srcs)
            )
        took_site = any(t.kind is TransitionKind.SITE for t in matched)
        for t in matched:
            cr.count_transition(t)
    instance.states = new_states
    if cr.automaton.timed:
        instance.last_ts = event.timestamp
    if took_site:
        instance.saw_site = True
        cr.sites_reached += 1
    if hub.detailed:
        hub.emit(
            Notification(
                kind=NotificationKind.SITE if took_site else NotificationKind.UPDATE,
                automaton=cr.automaton.name,
                instance_name=instance.name,
                binding=instance.binding_items(),
                event=event,
                states=tuple(sorted(new_states)),
            )
        )
    return took_site


def lazy_join_bound(
    cr: ClassRuntime,
    bound: BoundId,
    tracker: BoundTracker,
    governor=None,
) -> None:
    """Join an open bound's current epoch (lazy mode, section 5.2.2).

    Opening a bound is one epoch bump on the context's tracker; a class
    only picks the bound up here, on its first relevant event inside the
    epoch.  The caller must hold whatever lock serialises ``cr`` (the
    owning shard's lock for global classes; nothing for thread-local
    ones) — ``tracker`` is always the same context's as ``cr``.

    ``governor`` is the overhead governor's 1-in-N sampling gate (DESIGN
    §5.8): a class on the SAMPLED rung admits only every Nth bound
    occurrence.  A skipped occurrence marks the epoch as seen and leaves
    the class inactive, so every event inside it — including the
    assertion site — takes the ordinary "outside the bound" ignore path,
    and cleanup never visits the class (it is not recorded as touched).
    """
    if tracker.open.get(bound):
        epoch = tracker.epoch[bound]
        if cr.seen_epoch != epoch:
            if governor is not None:
                if not governor.admit_bound(cr.automaton.name):
                    cr.seen_epoch = epoch
                    cr.pool.expunge()
                    cr.active = False
                    cr.pending = False
                    return
                # The honesty annotation rides the bound: violations found
                # inside it report the rate it was admitted under.
                cr.sample_rate = governor.sample_rate(cr.automaton.name)
            cr.seen_epoch = epoch
            cr.pool.expunge()
            cr.active = True
            cr.pending = True
            cr.lazy_binding = {}
            cr.lazy_entry_ts = tracker.entry_ts.get(bound, 0.0)
            cr.overflow_mark = cr.pool.overflows
            cr.overflow_reported = False
            # The bound entry happened when the epoch opened; account
            # for the «init» transition now that this class joins it.
            for transition in cr.automaton.init_transitions:
                cr.count_transition(transition)
        touched = tracker.touched.get(bound)
        if touched is None:
            touched = tracker.touched[bound] = set()
        touched.add(cr.automaton.name)
    else:
        cr.active = False


def tesla_update_state(
    cr: ClassRuntime,
    event: RuntimeEvent,
    hub: NotificationHub,
    lazy: bool = True,
    plan: Optional[TransitionPlan] = None,
) -> None:
    """Process one event for one automaton class (body and site events).

    Bound entry/exit events must be routed to :func:`handle_init` /
    :func:`handle_cleanup` by the caller (the manager's dispatch loop).
    When ``plan`` is supplied (the compiled fast path) transition lookup
    uses its precompiled matchers; the verdicts are identical either way,
    which ``tests/differential`` pins down over randomized traces.
    """
    if _fi._active is not None:
        _fi.fault_point(_FP_STEP)
    automaton = cr.automaton
    is_site_event = (
        event.kind is EventKind.ASSERTION_SITE and event.name == automaton.name
    )
    if not cr.active:
        # Outside the temporal bound libtesla "resumes ignoring events
        # until the next «init»" (section 4.4.1) — even assertion-site
        # events.  This is what lets the same code path carry sites for
        # both syscall-bounded and page-fault–bounded assertions.
        if hub.detailed:
            hub.emit(
                Notification(
                    kind=NotificationKind.IGNORED,
                    automaton=automaton.name,
                    event=event,
                )
            )
        return

    timed = automaton.timed
    if timed and automaton.deadline_s is not None:
        # Pre-event expiry: any instance whose deadline passed before this
        # event's capture time has already failed — report it before the
        # event is processed so the violation stream is a pure function of
        # the timestamped trace, whatever the dispatch configuration.
        expire_deadlines(cr, event.timestamp, hub, event)

    if cr.pending:
        # Lazy initialisation (section 5.2.2): the first relevant event
        # after the bound opened materialises the wildcard instance.
        cr.pending = False
        _materialise(cr, hub, dict(cr.lazy_binding), cr.lazy_entry_ts)

    site_taken = False
    any_progress = False
    clones: List[AutomatonInstance] = []
    enabled = automaton.enabled if plan is None else plan.enabled
    rate_blocked: Optional[set] = None
    # pool.live() is the list itself: clones are accumulated aside and
    # added after the walk, so nothing mutates it under iteration.
    for instance in cr.pool.live():
        matches = enabled(instance.states, event, instance.binding)
        if not matches:
            continue
        if timed:
            if rate_blocked is None:
                rate_blocked = set()
            matches = _filter_guards(instance, matches, event, rate_blocked)
            if not matches:
                # Every enabled transition was clock-blocked: the event is
                # too late (or too frequent) for this instance, which under
                # move-or-stay semantics simply does not advance.  Missed
                # obligations then surface as site/deadline violations.
                continue
        if len(matches) == 1 and not matches[0][1]:
            # Fast path for the overwhelmingly common case: exactly one
            # enabled transition, learning nothing — the instance steps in
            # place with no clone bookkeeping.
            any_progress = True
            if _step(cr, instance, [matches[0][0]], hub, event):
                site_taken = True
            continue
        # Split matches by the new bindings they would introduce.
        empty: List[Transition] = []
        extensions: List[Dict[str, Any]] = []
        for transition, new in matches:
            if new:
                if not any(_same_binding(new, seen) for seen in extensions):
                    extensions.append(new)
            else:
                empty.append(transition)
        if empty:
            any_progress = True
            if _step(cr, instance, empty, hub, event):
                site_taken = True
        for extension in extensions:
            merged = dict(instance.binding)
            merged.update(extension)
            if cr.pool.find(merged) is not None or any(
                c.same_binding(merged) for c in clones
            ):
                # An instance with this exact binding already exists; the
                # event is that instance's to consume, not a second clone's.
                continue
            clone = instance.clone(extension)
            if hub.detailed:
                hub.emit(
                    Notification(
                        kind=NotificationKind.CLONE,
                        automaton=automaton.name,
                        instance_name=clone.name,
                        binding=clone.binding_items(),
                        event=event,
                        states=tuple(sorted(clone.states)),
                    )
                )
            # The clone, fully bound, now steps on this event.
            clone_matches = enabled(clone.states, event, clone.binding)
            if timed and clone_matches:
                clone_matches = _filter_guards(
                    clone, clone_matches, event, rate_blocked
                )
            complete = [t for t, new in clone_matches if not new]
            if complete:
                any_progress = True
                if _step(cr, clone, complete, hub, event):
                    site_taken = True
            clones.append(clone)
    for clone in clones:
        if not cr.pool.add(clone):
            # Same dedupe as _materialise: one OVERFLOW report per bound;
            # the pool's own counters keep the exact drop totals.
            if not cr.overflow_reported:
                cr.overflow_reported = True
                hub.emit(
                    Notification(
                        kind=NotificationKind.OVERFLOW,
                        automaton=automaton.name,
                        instance_name=clone.name,
                    )
                )

    if rate_blocked:
        # One violation per exceeded rate guard per event — not one per
        # blocked instance, so configurations with different instance
        # populations (lazy vs eager) report identical counts.
        for guard in sorted(rate_blocked, key=lambda g: g.sort_key()):
            cr.errors += 1
            violation = TemporalViolation(
                automaton=automaton.name,
                reason=RATE_REASON,
                event=event,
                sampling_rate=cr.sample_rate,
            )
            hub.emit(
                Notification(
                    kind=NotificationKind.ERROR,
                    automaton=automaton.name,
                    event=event,
                    violation=violation,
                )
            )

    if is_site_event and not site_taken and _already_satisfied(cr, event):
        # The assertion site can execute several times within one bound
        # (e.g. sopoll once per polled descriptor): an instance that
        # already passed the site with this binding satisfies later
        # occurrences too — the paper's error is "no instance can be
        # *found*", not "no transition was taken".
        cr.sites_reached += 1
        site_taken = True
    if (
        is_site_event
        and not site_taken
        and cr.pool.overflows > cr.overflow_mark
    ):
        # The pool overflowed during this bound: the instance that would
        # have matched this site may be among the dropped ones.  The
        # overflow was already reported (section 4.4.1: "report overflows
        # so that we can adjust preallocation size on the next run");
        # erroring here would be a false positive.
        cr.sites_reached += 1
        site_taken = True
    if is_site_event and not site_taken:
        cr.errors += 1
        violation = TemporalViolation(
            automaton=automaton.name,
            reason=(
                "no automaton instance could accept the assertion site "
                "(the expected prior events never occurred with these values)"
            ),
            event=event,
            binding=tuple(sorted(event.scope.items())),
            sampling_rate=cr.sample_rate,
        )
        hub.emit(
            Notification(
                kind=NotificationKind.ERROR,
                automaton=automaton.name,
                event=event,
                violation=violation,
            )
        )
    elif automaton.strict and not any_progress and automaton.references(event):
        cr.errors += 1
        violation = TemporalViolation(
            automaton=automaton.name,
            reason="strict automaton observed an event it cannot consume",
            event=event,
            sampling_rate=cr.sample_rate,
        )
        hub.emit(
            Notification(
                kind=NotificationKind.ERROR,
                automaton=automaton.name,
                event=event,
                violation=violation,
            )
        )
    elif not any_progress and not clones and hub.detailed:
        hub.emit(
            Notification(
                kind=NotificationKind.IGNORED,
                automaton=automaton.name,
                event=event,
            )
        )


def _filter_guards(
    instance: AutomatonInstance,
    matches,
    event: RuntimeEvent,
    rate_blocked: set,
):
    """Drop enabled transitions whose clock guard the event fails.

    ``since_entry`` measures from the instance's bound-entry timestamp,
    ``since_prev`` from its last taken transition, and ``rate`` maintains
    a per-instance sliding window of match timestamps: an over-budget
    occurrence blocks the transition, records the guard in
    ``rate_blocked`` (for a once-per-event violation) and does *not* join
    the window — the window holds only permitted occurrences.
    """
    ts = event.timestamp
    allowed = []
    for pair in matches:
        guard = pair[0].guard
        if guard is None:
            allowed.append(pair)
            continue
        kind = guard.kind
        if kind == "since_prev":
            if ts - instance.last_ts <= guard.limit_s:
                allowed.append(pair)
        elif kind == "since_entry":
            if ts - instance.entry_ts <= guard.limit_s:
                allowed.append(pair)
        else:  # rate
            marks = instance.rate_marks
            if marks is None:
                marks = instance.rate_marks = {}
            window = marks.get(guard)
            if window is None:
                window = marks[guard] = []
            cutoff = ts - guard.limit_s
            while window and window[0] < cutoff:
                window.pop(0)
            if len(window) >= guard.count:
                rate_blocked.add(guard)
            else:
                window.append(ts)
                allowed.append(pair)
    return allowed if len(allowed) != len(matches) else matches


def _already_satisfied(cr: ClassRuntime, event: RuntimeEvent) -> bool:
    """Whether an instance that already passed the site matches this
    site occurrence's scope values.

    This fixes the semantics of repeated site occurrences: temporal
    obligations are *per bound (and per binding)*, not per occurrence.
    For ``previously``, an instance whose prefix matched covers every
    later site with the same binding; for ``eventually``, the first site
    opens one obligation which a single later discharge satisfies — later
    sites in the same bound ride along.  The property suite pins this down
    against trace oracles (``tests/property/test_runtime_props.py`` and
    ``test_eventually_props.py``)."""
    site_variables = cr.automaton.site_variables
    for instance in cr.pool:
        if not instance.saw_site:
            continue
        compatible = True
        for name in site_variables:
            if name not in event.scope:
                continue
            value = event.scope[name]
            bound = instance.binding.get(name, _MISSING)
            if bound is _MISSING or not (bound is value or bound == value):
                compatible = False
                break
        if compatible:
            return True
    return False


_MISSING = object()


def _same_binding(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    if set(a) != set(b):
        return False
    for key, value in a.items():
        other = b[key]
        if not (other is value or other == value):
            return False
    return True
