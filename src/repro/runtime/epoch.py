"""The interest-set epoch: one clock invalidating every dispatch cache.

The compiled fast path (section 5.2's "do less work per event" family of
optimisations) caches three kinds of derived state:

* each :class:`~repro.instrument.hooks.HookPoint` caches which of its
  attached sinks are actually interested in its event name, so a hook
  whose events no automaton observes returns before constructing a
  :class:`~repro.core.events.RuntimeEvent`;
* the :class:`~repro.instrument.interpose.InterpositionTable` caches, per
  selector, the hooks whose sinks still care about that selector;
* each :class:`~repro.runtime.store.ClassRuntime` caches compiled
  per-(class, event-key) transition plans.

All three verdicts depend on *which automata classes are attached where*,
which changes rarely (installation, ``uninstrument()``, test teardown) but
must invalidate promptly — a detached sink whose cached "interested"
verdict survived would keep receiving events for a dead runtime.  Rather
than registering observers everywhere, every mutation of the listening set
bumps this module's single process-wide generation counter; caches compare
their recorded epoch against the current value on each use (two attribute
loads and an integer compare) and rebuild lazily when stale.
"""

from __future__ import annotations


class InterestEpoch:
    """A monotonically increasing generation counter for the interest set.

    Bumped on automaton installation, hook-point sink attach/detach,
    interposition-table install/remove/clear, and event-translator chain
    rebuilds.  Never reset: consumers cache the value they last saw, and a
    reset could alias a stale cache onto a fresh epoch.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> int:
        """Advance the epoch; every dependent cache is now stale."""
        self.value += 1
        return self.value


#: The process-wide epoch (one per process, like the registries it guards).
interest_epoch = InterestEpoch()


class InterestStats:
    """Process-global effectiveness counters for the interest fast path.

    Surfaced through :func:`repro.introspect.dispatch_stats`; benchmarks
    snapshot before/after deltas.  ``reset()`` only zeroes counters — the
    epoch itself is never rewound.
    """

    __slots__ = (
        "hook_short_circuits",
        "hook_refreshes",
        "interpose_short_circuits",
        "interpose_refreshes",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Instrumented hook invocations that skipped event construction
        #: because no attached sink was interested in the event name.
        self.hook_short_circuits = 0
        #: Hook-point interest-cache rebuilds (epoch misses).
        self.hook_refreshes = 0
        #: Message sends whose selector had hooks installed but no
        #: interested sink.
        self.interpose_short_circuits = 0
        #: Interposition-table per-selector cache rebuilds.
        self.interpose_refreshes = 0


#: The process-wide counters matching :data:`interest_epoch`.
interest_stats = InterestStats()
