"""Injectable time: one clock drives everything time-shaped (DESIGN §5.8–§5.9).

Three subsystems read time, and they all read *the same* clock object:

* the overhead governor — when to sample, demote or shed an assertion is
  a function of measured time (§5.8);
* capture timestamping — every :class:`~repro.core.events.RuntimeEvent`
  is stamped at capture with ``clock.now()``, and the timed combinators
  (``within_ms`` / ``deadline`` / ``rate_atmost``, §5.9) judge their
  clock guards against those stamps;
* timer expiry — the sync-point flush asks the same clock "what time is
  it now?" to surface deadlines that expired with no successor event.

Reading the platform clock directly from any of these would make every
decision unreplayable: two runs of the same event trace would shed
different classes, or report a deadline in one run and not the other,
and a test could only assert "something eventually happened".  So time
is a dependency, not an ambient: the runtime threads one clock object
through cost accounting, event stamping and timer checks, and tests
substitute a :class:`FakeClock` whose reading only moves when the test
says so.  Given the same (clock trace, event stream) the governor's
shed/sample/demote sequence and the timed verdicts are identical — the
Hypothesis properties in ``tests/property/test_governor_props.py`` and
``tests/property/test_timed_props.py`` pin this down.

Production uses :class:`MonotonicClock` (``time.perf_counter``: monotonic,
high resolution, unaffected by wall-clock steps).  The ``clock=`` knob on
:class:`~repro.runtime.manager.TeslaRuntime` accepts any object with a
``now() -> float`` method, or a bare ``() -> float`` callable; replay
pairs ``clock=FakeClock()`` with ``stamp_capture=False`` so journalled
timestamps are judged on the clock they were recorded against.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "MonotonicClock", "FakeClock", "as_clock"]


class Clock:
    """The protocol: anything with ``now() -> float`` (seconds)."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: ``time.perf_counter`` seconds."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """A clock that only moves when told to — deterministic tests.

    Reading never advances it; :meth:`advance` is the only mutation, so a
    test's sequence of advances *is* the clock trace the governor saw.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; a fake clock is still monotonic."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += seconds
        return self._now


class _CallableClock(Clock):
    """Adapter wrapping a bare ``() -> float`` callable."""

    __slots__ = ("_fn",)

    def __init__(self, fn) -> None:
        self._fn = fn

    def now(self) -> float:
        return self._fn()


def as_clock(source: object) -> Clock:
    """Normalise the ``clock=`` knob: ``None`` → the production clock, a
    ``now()``-bearing object is used as-is, a bare callable is wrapped."""
    if source is None:
        return MonotonicClock()
    if hasattr(source, "now"):
        return source  # type: ignore[return-value]
    if callable(source):
        return _CallableClock(source)
    raise TypeError(
        "clock= must be None, an object with a now() method, or a "
        f"() -> float callable, got {source!r}"
    )
