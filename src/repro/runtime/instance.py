"""Automaton instances: variable-binding–named copies of an automaton class.

Section 4.4.1: each automaton *class* "can be instantiated a number of
times, differentiated by the variables they reference".  The wildcard
instance ``(∗)`` exists as soon as the temporal bound opens; observing an
event that supplies a value for a free variable *clones* a named instance
(``(vp1)``) which then advances independently.

An instance's current position is a *set* of NFA states (figure 9's
"NFA:1,3" labels), so nondeterministic automata need no up-front
determinization.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Optional, Tuple

from ..core.automaton import Automaton

_instance_ids = itertools.count(1)


class AutomatonInstance:
    """One live instance of an automaton class."""

    __slots__ = (
        "automaton",
        "binding",
        "states",
        "saw_site",
        "instance_id",
        "entry_ts",
        "last_ts",
        "rate_marks",
    )

    def __init__(
        self,
        automaton: Automaton,
        states: FrozenSet[int],
        binding: Optional[Dict[str, Any]] = None,
        saw_site: bool = False,
        entry_ts: float = 0.0,
    ) -> None:
        self.automaton = automaton
        self.states = states
        self.binding: Dict[str, Any] = dict(binding or {})
        self.saw_site = saw_site
        self.instance_id = next(_instance_ids)
        # Timed state (DESIGN §5.9); only consulted when automaton.timed.
        # ``entry_ts`` is the capture timestamp of the bound-entry event,
        # ``last_ts`` the timestamp of the last transition this instance
        # took (guards of kind "since_prev" measure from it), and
        # ``rate_marks`` the per-guard sliding windows of match timestamps.
        self.entry_ts = entry_ts
        self.last_ts = entry_ts
        self.rate_marks: Optional[Dict[Any, list]] = None

    # -- naming ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """The paper's instance name: ``(∗)`` for the wildcard, else the
        bound variable values in declaration order."""
        if not self.binding:
            return "(*)"
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.binding.items()))
        return f"({inner})"

    def binding_items(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(sorted(self.binding.items(), key=lambda kv: kv[0]))

    def same_binding(self, other_binding: Dict[str, Any]) -> bool:
        if set(self.binding) != set(other_binding):
            return False
        for key, value in self.binding.items():
            other = other_binding[key]
            if not (other is value or other == value):
                return False
        return True

    # -- lifecycle --------------------------------------------------------------

    def clone(self, extension: Dict[str, Any]) -> "AutomatonInstance":
        """Clone with an extended binding (the «clone» transition)."""
        merged = dict(self.binding)
        merged.update(extension)
        child = AutomatonInstance(
            automaton=self.automaton,
            states=self.states,
            binding=merged,
            saw_site=self.saw_site,
            entry_ts=self.entry_ts,
        )
        child.last_ts = self.last_ts
        if self.rate_marks is not None:
            child.rate_marks = {g: list(m) for g, m in self.rate_marks.items()}
        return child

    def accepting_at_cleanup(self) -> bool:
        """Whether the instance accepts when the temporal bound closes."""
        return self.automaton.cleanup_enabled(self.states)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        states = ",".join(map(str, sorted(self.states)))
        return f"<Instance {self.automaton.name}{self.name} NFA:{states}>"
