"""libtesla's pluggable event-notification framework (section 4.4.2).

libtesla reports instance *initialisation*, *clones*, *updates*, *errors*
and *finalisation* (automaton acceptance) to a set of handlers.  The default
userspace behaviour prints to stderr when ``TESLA_DEBUG`` is set; mismatches
between specification and behaviour "cause the program to fail-stop by
default, but this is configurable at run-time".

Handlers here receive :class:`Notification` records; the configured
:class:`ErrorPolicy` decides whether a violation raises.
"""

from __future__ import annotations

import enum
import os
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import TemporalAssertionError, TemporalViolation
from . import faultinject as _fi
from .faultinject import fault_site

_FP_EMIT = fault_site("notify.emit")
_FP_HANDLER = fault_site("notify.handler")


class NotificationKind(enum.Enum):
    """Lifecycle notification kinds reported by libtesla (§4.4.2)."""
    INIT = "init"
    CLONE = "clone"
    UPDATE = "update"
    SITE = "site"
    ERROR = "error"
    FINALISE = "finalise"
    IGNORED = "ignored"
    OVERFLOW = "overflow"


@dataclass(frozen=True)
class Notification:
    """One lifecycle notification from the runtime."""

    kind: NotificationKind
    automaton: str
    instance_name: str = ""
    binding: Tuple[Tuple[str, Any], ...] = ()
    event: Optional[Any] = None
    states: Tuple[int, ...] = ()
    violation: Optional[TemporalViolation] = None
    transition: Optional[Any] = None

    @property
    def sampling_rate(self) -> int:
        """The overhead governor's honesty annotation (DESIGN §5.8): the
        1-in-N instantiation rate the finding was made under.  1 for
        routine notifications and unsampled findings — consumers can rely
        on ``rate > 1`` meaning "this verdict extrapolates"."""
        return 1 if self.violation is None else self.violation.sampling_rate

    def describe(self) -> str:
        parts = [f"[{self.kind.value}] {self.automaton}"]
        if self.instance_name:
            parts.append(self.instance_name)
        if self.states:
            parts.append("states=" + ",".join(map(str, self.states)))
        if self.event is not None and hasattr(self.event, "describe"):
            parts.append("on " + self.event.describe())
        if self.violation is not None:
            parts.append(self.violation.describe())
        return " ".join(parts)


#: A handler receives every notification; it must not raise.  The hub
#: *enforces* the contract: a handler that does raise is contained at the
#: fan-out boundary (recorded, reported to the runtime's supervisor when
#: one is attached) so it can neither break dispatch nor starve the
#: handlers after it in the list.
Handler = Callable[[Notification], None]


class StderrDebugHandler:
    """The default userspace handler: print when ``TESLA_DEBUG`` is set.

    The environment variable mirrors the paper; ``force`` bypasses it for
    tests and examples.
    """

    def __init__(self, stream=None, force: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.force = force

    @property
    def enabled(self) -> bool:
        return self.force or bool(os.environ.get("TESLA_DEBUG"))

    def __call__(self, notification: Notification) -> None:
        if self.enabled:
            print("tesla: " + notification.describe(), file=self.stream)


class CollectingHandler:
    """Keep every notification in memory — used by tests and introspection."""

    def __init__(self) -> None:
        self.notifications: List[Notification] = []

    def __call__(self, notification: Notification) -> None:
        self.notifications.append(notification)

    def of_kind(self, kind: NotificationKind) -> List[Notification]:
        return [n for n in self.notifications if n.kind is kind]

    def clear(self) -> None:
        self.notifications.clear()


class ErrorPolicy:
    """What to do when a temporal violation is detected."""

    def on_violation(self, violation: TemporalViolation) -> None:
        raise NotImplementedError


class FailStop(ErrorPolicy):
    """The default: raise :class:`TemporalAssertionError` immediately."""

    def on_violation(self, violation: TemporalViolation) -> None:
        raise TemporalAssertionError(violation)


class LogAndContinue(ErrorPolicy):
    """Record violations and keep running — the 'deployed' configuration."""

    def __init__(self) -> None:
        self.violations: List[TemporalViolation] = []

    def on_violation(self, violation: TemporalViolation) -> None:
        self.violations.append(violation)

    def clear(self) -> None:
        self.violations.clear()


class NotificationHub:
    """Fan-out of notifications to handlers plus violation accounting.

    :attr:`detailed` tells the runtime whether anyone is listening for
    routine lifecycle notifications (init/clone/update/ignored/finalise).
    With only the default stderr handler attached and ``TESLA_DEBUG``
    unset, the runtime skips constructing them entirely — the hot-path
    equivalent of compiling out debug printouts.  ERROR notifications are
    always delivered (the fail-stop policy depends on them).
    """

    def __init__(self, policy: Optional[ErrorPolicy] = None) -> None:
        self._default_handler = StderrDebugHandler()
        self.handlers: List[Handler] = [self._default_handler]
        self.policy: ErrorPolicy = policy or FailStop()
        self.counts: Dict[NotificationKind, int] = {k: 0 for k in NotificationKind}
        self.detailed = self._compute_detailed()
        #: Handler invocations that raised (contained at the boundary).
        self.handler_faults = 0
        #: (handler repr, exception repr) for the most recent faults.
        self.last_handler_errors: Deque[Tuple[str, str]] = deque(maxlen=16)
        #: Optional ``(automaton, handler, exc)`` callback — the runtime
        #: points this at its supervisor so contained handler faults show
        #: up in :func:`repro.introspect.health_report`.
        self.fault_sink: Optional[
            Callable[[str, Handler, BaseException], None]
        ] = None

    def _compute_detailed(self) -> bool:
        if len(self.handlers) > 1:
            return True
        return self._default_handler.enabled

    def add_handler(self, handler: Handler) -> Handler:
        self.handlers.append(handler)
        self.detailed = self._compute_detailed()
        return handler

    def remove_handler(self, handler: Handler) -> None:
        if handler in self.handlers:
            self.handlers.remove(handler)
        self.detailed = self._compute_detailed()

    def emit(self, notification: Notification) -> None:
        self.counts[notification.kind] += 1
        if _fi._active is not None:
            _fi.fault_point(_FP_EMIT)
        for handler in self.handlers:
            try:
                if _fi._active is not None:
                    _fi.fault_point(_FP_HANDLER)
                handler(notification)
            except Exception as exc:
                # The Handler contract says "must not raise"; enforce it
                # here so one bad handler cannot break dispatch or starve
                # the handlers after it.  The violation policy below still
                # runs — containment never downgrades fail-stop.
                self.handler_faults += 1
                self.last_handler_errors.append((repr(handler), repr(exc)))
                sink = self.fault_sink
                if sink is not None:
                    sink(notification.automaton, handler, exc)
        if notification.kind is NotificationKind.ERROR and notification.violation:
            self.policy.on_violation(notification.violation)

    def reset_counts(self) -> None:
        self.counts = {k: 0 for k in NotificationKind}
        self.handler_faults = 0
        self.last_handler_errors.clear()
