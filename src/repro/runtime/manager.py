"""The libtesla front door: event dispatch across stores and automata.

:class:`TeslaRuntime` owns the global and per-thread stores, an index from
event dispatch keys to the automata that observe them, the notification
hub, and the *bound trackers* implementing the paper's section 5.2.2
optimisation.

Naive mode (``lazy=False``) reproduces the first implementation: "on
entering a system call, libtesla would do work on every system-call–related
automaton" — the bound's entry event eagerly creates a wildcard instance
for every class sharing that bound, and its exit event walks all of them.

Lazy mode (``lazy=True``, the default) keeps "a per-context record of
common initialisation and cleanup events": opening a bound is one epoch
bump per *bound*, not per class; a class only materialises its wildcard
instance when it receives its first non-initialisation event; and cleanup
only visits the classes actually touched during the bound.  This is the
change that took the paper's microbenchmarks from ~100× to <7× overhead
(figure 13).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.ast import Context, TemporalAssertion
from ..core.automaton import Automaton, TransitionKind
from ..core.events import EventKind, RuntimeEvent
from ..core.translate import translate_all
from ..errors import ContextError
from .notify import ErrorPolicy, NotificationHub
from .prealloc import DEFAULT_CAPACITY
from .store import ClassRuntime, GlobalStore, PerThreadStores, Store
from .update import handle_cleanup, handle_init, tesla_update_state

DispatchKey = Tuple[EventKind, str]
#: A bound identity: (init dispatch key, cleanup dispatch key).
BoundId = Tuple[DispatchKey, DispatchKey]


class BoundTracker:
    """Per-context record of open temporal bounds (lazy mode)."""

    __slots__ = ("open", "epoch", "touched")

    def __init__(self) -> None:
        self.open: Dict[BoundId, bool] = {}
        self.epoch: Dict[BoundId, int] = {}
        self.touched: Dict[BoundId, Set[str]] = {}

    def begin(self, bound: BoundId) -> None:
        if self.open.get(bound):
            return  # re-entrant bound: ignore until cleanup
        self.open[bound] = True
        self.epoch[bound] = self.epoch.get(bound, 0) + 1
        self.touched[bound] = set()

    def end(self, bound: BoundId) -> Set[str]:
        if not self.open.get(bound):
            return set()
        self.open[bound] = False
        return self.touched.pop(bound, set())


def _dispatch_keys_of(automaton: Automaton) -> Dict[str, Set[DispatchKey]]:
    """Split an automaton's alphabet into init / cleanup / body keys."""
    init: Set[DispatchKey] = set()
    cleanup: Set[DispatchKey] = set()
    body: Set[DispatchKey] = set()
    for t in automaton.transitions:
        if t.symbol is None:
            continue
        symbol = automaton.symbols[t.symbol]
        kind, name = symbol.dispatch_key
        if kind is EventKind.ASSERTION_SITE:
            key = (kind, automaton.name)
        else:
            key = (kind, name)
        if t.kind is TransitionKind.INIT:
            init.add(key)
        elif t.kind is TransitionKind.CLEANUP:
            cleanup.add(key)
        else:
            body.add(key)
    return {"init": init, "cleanup": cleanup, "body": body}


class TeslaRuntime:
    """Tracks automata instances and their state across all contexts."""

    def __init__(
        self,
        lazy: bool = True,
        capacity: int = DEFAULT_CAPACITY,
        policy: Optional[ErrorPolicy] = None,
    ) -> None:
        self.lazy = lazy
        self.hub = NotificationHub(policy)
        self.global_store = GlobalStore(capacity)
        self.thread_stores = PerThreadStores(capacity)
        self.automata: Dict[str, Automaton] = {}
        self.contexts: Dict[str, Context] = {}
        self.bounds: Dict[str, BoundId] = {}
        self._init_index: Dict[DispatchKey, List[str]] = {}
        self._cleanup_index: Dict[DispatchKey, List[str]] = {}
        self._body_index: Dict[DispatchKey, List[str]] = {}
        #: Precomputed per-key structures for the lazy fast path: the
        #: distinct (bound, is_global) pairs opened/closed by a key, and
        #: the frozen set of class names the key initiates.
        self._init_bounds: Dict[DispatchKey, List[Tuple[BoundId, bool]]] = {}
        self._cleanup_bounds: Dict[DispatchKey, List[Tuple[BoundId, bool]]] = {}
        self._init_names: Dict[DispatchKey, frozenset] = {}
        self._global_tracker = BoundTracker()
        self._thread_trackers = threading.local()
        #: Event counter, for the benchmarks' sanity reporting.
        self.events_processed = 0

    # -- installation ----------------------------------------------------------

    def install_assertion(self, assertion: TemporalAssertion) -> Automaton:
        automaton = translate_all([assertion])[0]
        self.install_automaton(automaton, assertion.context)
        return automaton

    def install_assertions(
        self, assertions: Sequence[TemporalAssertion]
    ) -> List[Automaton]:
        automata = translate_all(list(assertions))
        for automaton, assertion in zip(automata, assertions):
            self.install_automaton(automaton, assertion.context)
        return automata

    def install_automaton(self, automaton: Automaton, context: Context) -> None:
        if automaton.name in self.automata:
            raise ContextError(f"automaton {automaton.name!r} already installed")
        self.automata[automaton.name] = automaton
        self.contexts[automaton.name] = context
        keys = _dispatch_keys_of(automaton)
        if len(keys["init"]) != 1 or len(keys["cleanup"]) != 1:
            raise ContextError(
                f"automaton {automaton.name!r} must have exactly one init "
                f"and one cleanup event"
            )
        bound: BoundId = (next(iter(keys["init"])), next(iter(keys["cleanup"])))
        self.bounds[automaton.name] = bound
        self._init_index.setdefault(bound[0], []).append(automaton.name)
        self._cleanup_index.setdefault(bound[1], []).append(automaton.name)
        is_global = context is Context.GLOBAL
        marker = (bound, is_global)
        if marker not in self._init_bounds.setdefault(bound[0], []):
            self._init_bounds[bound[0]].append(marker)
        if marker not in self._cleanup_bounds.setdefault(bound[1], []):
            self._cleanup_bounds[bound[1]].append(marker)
        self._init_names[bound[0]] = frozenset(self._init_index[bound[0]])
        for key in keys["body"]:
            self._body_index.setdefault(key, []).append(automaton.name)
        if context is Context.GLOBAL:
            self.global_store.register(automaton)
        else:
            self.thread_stores.register(automaton)

    # -- store access ------------------------------------------------------------

    def _store_for(self, name: str) -> Store:
        if self.contexts[name] is Context.GLOBAL:
            return self.global_store.store
        return self.thread_stores.current()

    def _thread_tracker(self) -> BoundTracker:
        tracker = getattr(self._thread_trackers, "tracker", None)
        if tracker is None:
            tracker = BoundTracker()
            self._thread_trackers.tracker = tracker
        return tracker

    def _tracker_for(self, name: str) -> BoundTracker:
        if self.contexts[name] is Context.GLOBAL:
            return self._global_tracker
        return self._thread_tracker()

    def class_runtime(self, name: str) -> ClassRuntime:
        cr = self._store_for(name).get(name)
        if cr is None:
            raise ContextError(f"automaton {name!r} not installed in this store")
        return cr

    def all_class_runtimes(self, name: str) -> List[ClassRuntime]:
        """Every context's runtime for one class (for post-run introspection)."""
        out = []
        if self.contexts[name] is Context.GLOBAL:
            cr = self.global_store.store.get(name)
            if cr is not None:
                out.append(cr)
        else:
            for store in self.thread_stores.all_stores():
                cr = store.get(name)
                if cr is not None:
                    out.append(cr)
        return out

    # -- dispatch ---------------------------------------------------------------

    def handle_event(self, event: RuntimeEvent) -> None:
        """Route one concrete event to every automaton that observes it."""
        self.events_processed += 1
        key = (event.kind, event.name)
        initiated = self._handle_inits(key, event)
        self._handle_bodies(key, event, initiated)
        self._handle_cleanups(key, event)

    def _handle_inits(self, key: DispatchKey, event: RuntimeEvent) -> frozenset:
        names = self._init_index.get(key)
        if not names:
            return frozenset()
        if self.lazy:
            # One epoch bump per distinct bound — "a per-context record of
            # common initialisation events" — independent of how many
            # classes share that bound.
            for bound, is_global in self._init_bounds[key]:
                if is_global:
                    with self.global_store.lock:
                        self._global_tracker.begin(bound)
                else:
                    self._thread_tracker().begin(bound)
        else:
            for name in names:
                cr = self.class_runtime(name)
                if self.contexts[name] is Context.GLOBAL:
                    with self.global_store.lock:
                        handle_init(cr, event, self.hub, lazy=False)
                else:
                    handle_init(cr, event, self.hub, lazy=False)
        return self._init_names[key]

    def _handle_bodies(
        self, key: DispatchKey, event: RuntimeEvent, initiated: Set[str]
    ) -> None:
        names = self._body_index.get(key)
        if not names:
            return
        for name in names:
            if name in initiated:
                # An event that opens a class's bound is not also one of its
                # body events for the same occurrence.
                continue
            cr = self.class_runtime(name)
            if self.contexts[name] is Context.GLOBAL:
                with self.global_store.lock:
                    if self.lazy:
                        self._lazy_activate(name, cr, self._global_tracker)
                    tesla_update_state(cr, event, self.hub, self.lazy)
            else:
                if self.lazy:
                    self._lazy_activate(name, cr, self._tracker_for(name))
                tesla_update_state(cr, event, self.hub, self.lazy)

    def _lazy_activate(
        self, name: str, cr: ClassRuntime, tracker: BoundTracker
    ) -> None:
        bound = self.bounds[name]
        if tracker.open.get(bound):
            epoch = tracker.epoch[bound]
            if cr.seen_epoch != epoch:
                cr.seen_epoch = epoch
                cr.pool.expunge()
                cr.active = True
                cr.pending = True
                cr.lazy_binding = {}
                cr.overflow_mark = cr.pool.overflows
                # The bound entry happened when the epoch opened; account
                # for the «init» transition now that this class joins it.
                for transition in cr.automaton.init_transitions:
                    cr.count_transition(transition)
            tracker.touched.setdefault(bound, set()).add(name)
        else:
            cr.active = False

    def _handle_cleanups(self, key: DispatchKey, event: RuntimeEvent) -> None:
        names = self._cleanup_index.get(key)
        if not names:
            return
        if self.lazy:
            # Cleanup visits only the classes actually touched during the
            # bound, not every class sharing it.
            for bound, is_global in self._cleanup_bounds[key]:
                if is_global:
                    with self.global_store.lock:
                        touched = self._global_tracker.end(bound)
                        for touched_name in sorted(touched):
                            handle_cleanup(
                                self.class_runtime(touched_name), event, self.hub
                            )
                else:
                    touched = self._thread_tracker().end(bound)
                    for touched_name in sorted(touched):
                        handle_cleanup(
                            self.class_runtime(touched_name), event, self.hub
                        )
        else:
            for name in names:
                cr = self.class_runtime(name)
                if self.contexts[name] is Context.GLOBAL:
                    with self.global_store.lock:
                        handle_cleanup(cr, event, self.hub)
                else:
                    handle_cleanup(cr, event, self.hub)

    # -- maintenance --------------------------------------------------------------

    def reset(self) -> None:
        """Expunge all instances and close all bounds (e.g. between runs)."""
        self.global_store.reset()
        self.thread_stores.reset()
        self._global_tracker = BoundTracker()
        self._thread_trackers = threading.local()
        self.events_processed = 0
        self.hub.reset_counts()

    def observes(self, key: DispatchKey) -> bool:
        """Whether any installed automaton cares about this dispatch key."""
        return (
            key in self._body_index
            or key in self._init_index
            or key in self._cleanup_index
        )
