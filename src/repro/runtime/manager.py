"""The libtesla front door: event dispatch across stores and automata.

:class:`TeslaRuntime` owns the global and per-thread stores, an index from
event dispatch keys to the automata that observe them, the notification
hub, and the *bound trackers* implementing the paper's section 5.2.2
optimisation.

Naive mode (``lazy=False``) reproduces the first implementation: "on
entering a system call, libtesla would do work on every system-call–related
automaton" — the bound's entry event eagerly creates a wildcard instance
for every class sharing that bound, and its exit event walks all of them.

Lazy mode (``lazy=True``, the default) keeps "a per-context record of
common initialisation and cleanup events": opening a bound is one epoch
bump per *bound*, not per class; a class only materialises its wildcard
instance when it receives its first non-initialisation event; and cleanup
only visits the classes actually touched during the bound.  This is the
change that took the paper's microbenchmarks from ~100× to <7× overhead
(figure 13).

Global-context serialisation is *lock-striped* (figure 12's scalability
fix): automata classes hash stably onto the shards of a
:class:`~repro.runtime.store.ShardedGlobalStore`, and one event acquires
each affected shard's lock exactly once.  Every piece of a class's work —
bound entry, body events, cleanup — happens under its own shard's lock,
so per-class event ordering is exactly the paper's; classes on different
shards never contend.  :meth:`TeslaRuntime.dispatch_batch` amortises the
locking further: a batch of events is grouped by shard and each shard
lock is taken once per batch, preserving intra-batch event order per
class (a class lives on exactly one shard, and each shard replays its
sub-sequence in arrival order).
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.ast import Context, TemporalAssertion
from ..core.automaton import Automaton, TransitionKind
from ..core.events import EventKind, RuntimeEvent
from ..core.translate import translate_all
from ..errors import ContextError, TemporalAssertionError
from . import faultinject as _fi
from .clock import as_clock
from .drain import OVERFLOW_POLICIES, DrainController
from .epoch import interest_epoch
from .governor import OverheadGovernor
from .journal import JournalWriter
from .notify import ErrorPolicy, NotificationHub
from .prealloc import DEFAULT_CAPACITY
from .ringbuf import DEFAULT_RING_CAPACITY
from .supervisor import FailurePolicy, Supervisor
from .store import (
    BoundId,
    BoundTracker,
    ClassRuntime,
    DispatchKey,
    PerThreadStores,
    ShardedGlobalStore,
    Store,
)
from .update import (
    expire_deadlines,
    handle_cleanup,
    handle_init,
    lazy_join_bound,
    tesla_update_state,
)

__all__ = [
    "BoundId",
    "BoundTracker",
    "DispatchKey",
    "TeslaRuntime",
    "live_runtimes",
    "reset_all_runtimes",
]


def _dispatch_keys_of(automaton: Automaton) -> Dict[str, Set[DispatchKey]]:
    """Split an automaton's alphabet into init / cleanup / body keys."""
    init: Set[DispatchKey] = set()
    cleanup: Set[DispatchKey] = set()
    body: Set[DispatchKey] = set()
    for t in automaton.transitions:
        if t.symbol is None:
            continue
        symbol = automaton.symbols[t.symbol]
        kind, name = symbol.dispatch_key
        if kind is EventKind.ASSERTION_SITE:
            key = (kind, automaton.name)
        else:
            key = (kind, name)
        if t.kind is TransitionKind.INIT:
            init.add(key)
        elif t.kind is TransitionKind.CLEANUP:
            cleanup.add(key)
        else:
            body.add(key)
    return {"init": init, "cleanup": cleanup, "body": body}


class _ContextPlan:
    """One dispatch key's work within one context (a global shard, or the
    calling thread's local store)."""

    __slots__ = ("init_names", "init_bounds", "body", "cleanup_names",
                 "cleanup_bounds")

    def __init__(self) -> None:
        self.init_names: List[str] = []
        self.init_bounds: List[BoundId] = []
        #: (class name, its bound) — the bound feeds the lazy epoch join.
        self.body: List[Tuple[str, BoundId]] = []
        self.cleanup_names: List[str] = []
        self.cleanup_bounds: List[BoundId] = []

    def empty(self) -> bool:
        return not (self.init_names or self.body or self.cleanup_names)


class _KeyPlan:
    """Everything one dispatch key triggers, pre-split by shard.

    Computed once per key and cached — the indexes never change after
    installation, so dispatch does no per-event index walking.
    """

    __slots__ = ("shard_work", "local", "initiated")

    def __init__(
        self,
        shard_work: Tuple[Tuple[int, _ContextPlan], ...],
        local: Optional[_ContextPlan],
        initiated: frozenset,
    ) -> None:
        self.shard_work = shard_work
        self.local = local
        self.initiated = initiated


_EMPTY_PLAN = _KeyPlan((), None, frozenset())

#: Every constructed runtime, for test hygiene (see ``reset_all_runtimes``).
_live_runtimes: "weakref.WeakSet[TeslaRuntime]" = weakref.WeakSet()


def live_runtimes() -> List["TeslaRuntime"]:
    """Every :class:`TeslaRuntime` still referenced by the process."""
    return list(_live_runtimes)


def reset_all_runtimes() -> None:
    """Reset every live runtime: expunge instances, close bounds, zero
    shard contention counters.

    The shard layer's analogue of the instrumentation registries'
    ``detach_all`` — test fixtures call it so automata state and per-shard
    epoch trackers never leak across tests.
    """
    for runtime in live_runtimes():
        runtime.reset()


class TeslaRuntime:
    """Tracks automata instances and their state across all contexts."""

    def __init__(
        self,
        lazy: bool = True,
        capacity: int = DEFAULT_CAPACITY,
        policy: Optional[ErrorPolicy] = None,
        shards: Optional[int] = None,
        compile: bool = True,
        codegen: bool = False,
        failure_policy: Optional[FailurePolicy] = None,
        deferred: object = False,
        overflow_policy: str = "flush",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        drain_interval: float = 0.002,
        lint: str = "warn",
        prove: str = "off",
        journal: object = None,
        overhead_budget: Optional[float] = None,
        clock: object = None,
        stamp_capture: bool = True,
    ) -> None:
        if deferred not in (False, True, "manual"):
            raise ValueError(
                "deferred must be False (synchronous), True (background "
                f"drainer) or 'manual' (explicit drain), got {deferred!r}"
            )
        # Numeric knobs are range-checked up front: a nonsense value used
        # to surface (if at all) as a confusing failure deep inside pool
        # or ring construction, long after the misconfigured call site.
        if capacity < 1:
            raise ValueError(
                f"capacity is the per-class instance pool size; it must be "
                f">= 1, got {capacity!r}"
            )
        if shards is not None and shards < 1:
            raise ValueError(
                f"shards must be >= 1 (or None to auto-size), got {shards!r}"
            )
        if ring_capacity < 1:
            raise ValueError(
                f"ring_capacity is the per-thread capture ring size; it "
                f"must be >= 1, got {ring_capacity!r}"
            )
        if drain_interval <= 0:
            raise ValueError(
                f"drain_interval is the background drainer's period in "
                f"seconds; it must be > 0, got {drain_interval!r}"
            )
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow_policy must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow_policy!r}"
            )
        if overhead_budget is not None and not (
            0.0 < overhead_budget <= 1.0
        ):
            raise ValueError(
                "overhead_budget is a fraction of wall time; it must be "
                f"in (0.0, 1.0], got {overhead_budget!r}"
            )
        if not stamp_capture and clock is None:
            raise ValueError(
                "stamp_capture=False means events arrive pre-stamped by "
                "some external clock; timer expiry would then read an "
                "unrelated monotonic epoch — pass the clock= those "
                "timestamps came from (conflicting clock sources)"
            )
        if journal is not None and not deferred:
            raise ValueError(
                "journal= records at the drain boundary (DESIGN §5.6); it "
                "requires deferred=True or deferred='manual'"
            )
        if lint not in ("error", "warn", "off"):
            raise ValueError(
                f"lint must be 'error', 'warn' or 'off', got {lint!r}"
            )
        if prove not in ("off", "report", "prune"):
            raise ValueError(
                f"prove must be 'off', 'report' or 'prune', got {prove!r}"
            )
        if codegen and not compile:
            raise ValueError(
                "codegen=True generates specialized code from compiled "
                "transition plans; it requires compile=True"
            )
        self.lazy = lazy
        #: Whether dispatch uses compiled per-(class, key) transition plans
        #: (the §5.2-style fast path) or the interpreted engine.  Both
        #: produce identical verdicts; ``compile=False`` is the
        #: paper-faithful baseline the benchmarks compare against.
        self.compiled = compile
        #: tesla-jit (DESIGN §5.7): body dispatch runs exec-generated
        #: per-(class, key) step functions instead of the interpreted
        #: plan walk, falling back (loudly, counted) to the compiled
        #: interpreter for any plan the generator can't specialize.
        self.codegen = codegen
        #: Memoized :class:`~repro.runtime.codegen.CodegenFacts` snapshot,
        #: keyed by interest epoch (installs both change lint facts and
        #: bump the epoch, so staleness rides the same invalidation).
        self._facts_epoch = -1
        self._facts = None
        #: The runtime's one time source (DESIGN §5.9): drives capture
        #: timestamping, timer (deadline) expiry and the overhead
        #: governor's cost accounting alike.  Inject a
        #: :class:`~repro.runtime.clock.FakeClock` for deterministic timed
        #: tests; the default is the process monotonic clock.
        self.clock = as_clock(clock)
        #: Whether ``handle_event``/``dispatch_batch`` stamp each event's
        #: capture timestamp from ``self.clock``.  ``False`` is the replay
        #: posture: events arrive pre-stamped (e.g. from a journal) and
        #: must keep their recorded timestamps.
        self.stamp_capture = stamp_capture
        #: Largest event timestamp observed, for timer expiry when events
        #: arrive pre-stamped: "now" is then defined by the trace itself,
        #: not by this process's clock.
        self._max_event_ts = 0.0
        #: Classes carrying a ``deadline(...)`` obligation — the only ones
        #: the sync-point timer check must visit.
        self._timed_classes: List[str] = []
        #: Timer-check accounting, surfaced via dispatch_stats.
        self.timer_checks = 0
        self.timer_expiries = 0
        self.hub = NotificationHub(policy)
        #: The containment boundary for faults in the monitor itself:
        #: ``failure_policy`` selects fail-stop (default), fail-open,
        #: callback, or quarantine — the internal-fault counterpart of the
        #: violation ``policy``.  Quarantine state changes clear dispatch
        #: plans and rebuild translator chains via ``_on_supervisor_change``.
        self.supervisor = Supervisor(
            failure_policy, on_change=self._on_supervisor_change
        )
        self.hub.fault_sink = self.supervisor.record_handler_fault
        #: Adaptive overhead governor (DESIGN §5.8): feedback controller
        #: bounding monitoring cost to ``overhead_budget`` (a fraction of
        #: wall time) by graduated shedding — sample instantiation, demote
        #: to journal-only recording, shed via the supervisor.  ``None``
        #: (the default) keeps the hot path completely un-instrumented.
        self.governor: Optional[OverheadGovernor] = (
            OverheadGovernor(
                overhead_budget,
                clock=self.clock,
                shed=self.supervisor.governor_shed,
                unshed=self.supervisor.governor_unshed,
                on_demote_change=self._on_governor_change,
            )
            if overhead_budget is not None
            else None
        )
        #: Event translators feeding this runtime, re-filtered when the
        #: supervisor sheds or re-arms a class (weak: translators die with
        #: their instrumentation session).
        self._translators: "weakref.WeakSet" = weakref.WeakSet()
        #: Lock-striped global store; ``shards=1`` gives the paper's exact
        #: single-lock semantics, ``None`` picks min(32, 4×cpu_count).
        self.global_store = ShardedGlobalStore(capacity, shards)
        self.thread_stores = PerThreadStores(capacity)
        self.automata: Dict[str, Automaton] = {}
        self.contexts: Dict[str, Context] = {}
        self.bounds: Dict[str, BoundId] = {}
        self._init_index: Dict[DispatchKey, List[str]] = {}
        self._cleanup_index: Dict[DispatchKey, List[str]] = {}
        self._body_index: Dict[DispatchKey, List[str]] = {}
        #: Dispatch plans, one per key, built lazily from the indexes.
        self._key_plans: Dict[DispatchKey, _KeyPlan] = {}
        self._thread_trackers = threading.local()
        #: Event counter, for the benchmarks' sanity reporting.
        self.events_processed = 0
        #: Deferred pipeline (DESIGN §5.4).  ``deferred=False`` keeps the
        #: paper's synchronous hot path; ``True`` captures events into
        #: per-thread rings drained by a background thread; ``"manual"``
        #: defers with no thread (tests drive ``drain()``/``flush``
        #: explicitly for deterministic schedules).
        self.deferred = deferred
        #: Durable trace journal (DESIGN §5.6): a path, binary file-like
        #: or prebuilt :class:`~repro.runtime.journal.JournalWriter`; the
        #: drain appends every merged slot before evaluating it.
        self.journal: Optional[JournalWriter] = None
        if journal is not None:
            # Anything already quacking like a journal sink (JournalWriter
            # or a custom append_batch/close object) is used as-is; paths
            # and binary streams get wrapped.
            self.journal = (
                journal
                if hasattr(journal, "append_batch")
                else JournalWriter(journal)
            )
        self.drain: Optional[DrainController] = (
            DrainController(
                self,
                ring_capacity=ring_capacity,
                overflow_policy=overflow_policy,
                background=(deferred is True),
                drain_interval=drain_interval,
                journal=self.journal,
            )
            if deferred
            else None
        )
        #: Dispatch keys whose events may themselves produce a verdict —
        #: bound entry/exit, assertion sites, and any event a ``strict``
        #: automaton references.  In deferred mode these are the
        #: synchronization points: capturing one forces a flush so
        #: violations are raised exactly where synchronous dispatch would
        #: raise them.
        self._sync_keys: frozenset = frozenset()
        #: Keys observed by a thread-local (perthread) automaton.  Their
        #: local share is always evaluated inline on the capturing thread
        #: — a per-thread automaton's serialisation *is* that thread, and
        #: its state lives in the capturing thread's store, which a drain
        #: running on another thread could never reach.
        self._local_keys: frozenset = frozenset()
        #: tesla-lint gate for installs (DESIGN §5.5): ``"warn"`` (default)
        #: lints every installed batch and routes findings to stderr;
        #: ``"error"`` refuses to install a batch with lint errors
        #: (:class:`~repro.errors.LintError`); ``"off"`` skips the passes.
        #: Only the automaton layer runs here — the runtime cannot know
        #: which caller modules or selectors an instrumenter supplies.
        self.lint = lint
        #: Accumulated lint results across installed batches (``None``
        #: until the first lint-enabled install).  Consumed by the event
        #: translator's check-elision fast path and by ``health_report``.
        self.lint_report = None
        #: tesla-prove gate for installs (DESIGN §5.10): ``"off"``
        #: (default) skips proving; ``"report"`` proves every batch on
        #: the automaton basis and accumulates the report; ``"prune"``
        #: additionally *skips installing* PROVED assertions — their
        #: hooks are never referenced, so instrumentation sessions skip
        #: weaving them and monitoring cost drops to zero.
        self.prove = prove
        #: Accumulated prove results across installed batches (``None``
        #: until the first prove-enabled install).
        self.prove_report = None
        #: Assertion names statically discharged and elided at install
        #: (only under ``prove="prune"``); instrumenters consult this to
        #: skip hook weaving and site attachment.
        self.prove_elided: Set[str] = set()
        _live_runtimes.add(self)

    @property
    def shard_count(self) -> int:
        return self.global_store.shard_count

    # -- supervision -----------------------------------------------------------

    def register_translator(self, translator) -> None:
        """Track a translator so quarantine changes re-filter its chains."""
        self._translators.add(translator)

    def _on_supervisor_change(self) -> None:
        """A class was quarantined or re-armed: rebuild every derived
        dispatch structure, then bump the interest epoch so hook-point and
        interposition caches (and per-class plan caches) follow."""
        self._key_plans.clear()
        for translator in list(self._translators):
            translator._rebuild()
        interest_epoch.bump()

    def _on_governor_change(self) -> None:
        """The governor demoted or restored a class: rebuild dispatch plans
        only.  Deliberately *not* ``_on_supervisor_change`` — a demoted
        class must keep capturing events (the journal is its evidence
        trail), so hook interest and translator chains stay untouched; the
        class merely disappears from evaluation plans."""
        self._key_plans.clear()

    def _govern(self, events: int) -> None:
        """One governor control tick, fail-safe: any governor fault trips
        it (all restrictions lift, decisions stop) and is contained under
        the pseudo-label ``(governor)`` — a broken controller degrades to
        "no shedding", never to dropped verdicts."""
        gov = self.governor
        try:
            gov.maybe_control(events)
        except TemporalAssertionError:
            raise
        except Exception as exc:
            gov.trip()
            if not self.supervisor.contain("(governor)", "governor", exc):
                raise

    def _charge(
        self, gov: OverheadGovernor, name: str, seconds: float,
        events: int = 1,
    ) -> None:
        """Attribute measured evaluation time to a class's cost ledger,
        with the same trip-and-contain fail-safety as ``_govern``."""
        try:
            gov.charge(name, seconds, events)
        except TemporalAssertionError:
            raise
        except Exception as exc:
            gov.trip()
            if not self.supervisor.contain("(governor)", "governor", exc):
                raise

    # -- installation ----------------------------------------------------------

    def install_assertion(self, assertion: TemporalAssertion) -> Automaton:
        return self.install_assertions([assertion])[0]

    def install_assertions(
        self, assertions: Sequence[TemporalAssertion]
    ) -> List[Automaton]:
        batch = list(assertions)
        self._lint_batch(batch)
        self._prove_batch(batch)
        if self.journal is not None:
            # Embed the source assertions so the journal is self-contained:
            # offline replay re-derives the automata from the log alone.
            self.journal.record_assertions(batch)
        automata = translate_all(batch)
        for automaton, assertion in zip(automata, batch):
            if automaton.name in self.prove_elided:
                # Statically discharged under prove="prune": the class is
                # never registered, so no dispatch index references its
                # events and instrumenters skip its hooks entirely.
                continue
            self.install_automaton(automaton, assertion.context)
        return automata

    def _lint_batch(self, assertions: Sequence[TemporalAssertion]) -> None:
        """The install-time tesla-lint gate (mode per ``self.lint``).

        Runs the batch and automaton layers only; accumulates results on
        ``self.lint_report`` so the translators' check-elision fast path
        and ``health_report`` can consume them.
        """
        if self.lint == "off" or not assertions:
            return
        from ..analysis.lint import lint_assertions

        report = lint_assertions(assertions)
        if self.lint_report is None:
            self.lint_report = report
        else:
            self.lint_report.extend(report)
        if report.errors and self.lint == "error":
            from ..errors import LintError

            raise LintError(report)
        if report.findings:
            import warnings

            warnings.warn(
                "tesla-lint findings on installed assertions:\n"
                + "\n".join(f.format() for f in report.findings),
                stacklevel=3,
            )

    def _prove_batch(self, assertions: Sequence[TemporalAssertion]) -> None:
        """The install-time tesla-prove gate (mode per ``self.prove``).

        Only the automaton proof basis runs here — the runtime has no
        program CFG (instrumenters know the sources; ``repro.cli prove``
        runs the product basis offline).  That basis is strictly weaker,
        so anything it discharges the full engine would too.
        """
        if self.prove == "off" or not assertions:
            return
        from ..analysis.prove import PROVED, prove_assertions

        report = prove_assertions(assertions)
        if self.prove == "prune":
            self.prove_elided |= {
                r.assertion for r in report.results if r.verdict == PROVED
            }
        if self.prove_report is None:
            self.prove_report = report
        else:
            self.prove_report.extend(report)

    def install_automaton(self, automaton: Automaton, context: Context) -> None:
        if automaton.name in self.automata:
            raise ContextError(f"automaton {automaton.name!r} already installed")
        self.automata[automaton.name] = automaton
        self.contexts[automaton.name] = context
        keys = _dispatch_keys_of(automaton)
        if len(keys["init"]) != 1 or len(keys["cleanup"]) != 1:
            raise ContextError(
                f"automaton {automaton.name!r} must have exactly one init "
                f"and one cleanup event"
            )
        bound: BoundId = (next(iter(keys["init"])), next(iter(keys["cleanup"])))
        self.bounds[automaton.name] = bound
        self._init_index.setdefault(bound[0], []).append(automaton.name)
        self._cleanup_index.setdefault(bound[1], []).append(automaton.name)
        for key in keys["body"]:
            self._body_index.setdefault(key, []).append(automaton.name)
        if automaton.deadline_s is not None:
            self._timed_classes.append(automaton.name)
        if context is Context.GLOBAL:
            self.global_store.register(automaton)
        else:
            self.thread_stores.register(automaton)
        # The indexes changed; plans are rebuilt on next dispatch, and the
        # interest epoch bump invalidates every hook-point interest cache
        # and per-class transition-plan cache in the process.
        self._key_plans.clear()
        self._rebuild_deferred_keys()
        interest_epoch.bump()

    def _rebuild_deferred_keys(self) -> None:
        """Recompute the sync-point and thread-local key sets (see
        ``_sync_keys``/``_local_keys``) from every installed automaton."""
        sync = set()
        local = set()
        for name, automaton in self.automata.items():
            keys = _dispatch_keys_of(automaton)
            sync |= keys["init"]
            sync |= keys["cleanup"]
            for key in keys["body"]:
                if key[0] is EventKind.ASSERTION_SITE:
                    sync.add(key)
            if automaton.strict:
                # A strict automaton can raise on any referenced body
                # event it cannot consume, so each is a sync point.
                sync |= keys["body"]
            if self.contexts[name] is not Context.GLOBAL:
                local |= keys["init"]
                local |= keys["cleanup"]
                local |= keys["body"]
        self._sync_keys = frozenset(sync)
        self._local_keys = frozenset(local)

    # -- store access ------------------------------------------------------------

    def _store_for(self, name: str) -> Store:
        if self.contexts[name] is Context.GLOBAL:
            return self.global_store.shard_for(name).store
        return self.thread_stores.current()

    def _thread_tracker(self) -> BoundTracker:
        tracker = getattr(self._thread_trackers, "tracker", None)
        if tracker is None:
            tracker = BoundTracker()
            self._thread_trackers.tracker = tracker
        return tracker

    def class_runtime(self, name: str) -> ClassRuntime:
        cr = self._store_for(name).get(name)
        if cr is None:
            raise ContextError(f"automaton {name!r} not installed in this store")
        return cr

    def all_class_runtimes(self, name: str) -> List[ClassRuntime]:
        """Every context's runtime for one class (for post-run introspection)."""
        out = []
        if self.contexts[name] is Context.GLOBAL:
            cr = self.global_store.get(name)
            if cr is not None:
                out.append(cr)
        else:
            for store in self.thread_stores.all_stores():
                cr = store.get(name)
                if cr is not None:
                    out.append(cr)
        return out

    # -- dispatch planning --------------------------------------------------------

    def _codegen_facts(self, epoch: int):
        """The lint-facts snapshot the generator may rely on, memoized per
        interest epoch (every install bumps the epoch after updating
        ``lint_report``, so a stale snapshot is impossible)."""
        if self._facts_epoch != epoch:
            from .codegen import CodegenFacts

            self._facts = CodegenFacts.from_report(
                self.lint_report, prove=self.prove_report
            )
            self._facts_epoch = epoch
        return self._facts

    def _plan_for(self, key: DispatchKey) -> _KeyPlan:
        plan = self._key_plans.get(key)
        if plan is None:
            plan = self._build_plan(key)
            self._key_plans[key] = plan
        return plan

    def _build_plan(self, key: DispatchKey) -> _KeyPlan:
        shard_plans: Dict[int, _ContextPlan] = {}
        local = _ContextPlan()
        # Quarantined classes are shed at plan-build time: the supervisor's
        # change hook clears ``_key_plans``, so a trip or re-arm takes
        # effect on the very next event.  Governor-demoted classes are
        # excluded from evaluation the same way, but their hooks stay
        # attached (``_on_governor_change`` skips the epoch bump) so the
        # journal keeps recording their events.
        shed = self.supervisor.shed_classes
        gov = self.governor
        if gov is not None and gov.demoted:
            shed = shed | gov.demoted

        def context_plan(name: str) -> _ContextPlan:
            if self.contexts[name] is Context.GLOBAL:
                index = self.global_store.shard_index(name)
                plan = shard_plans.get(index)
                if plan is None:
                    plan = shard_plans[index] = _ContextPlan()
                return plan
            return local

        init_names = [
            name
            for name in self._init_index.get(key, ())
            if name not in shed
        ]
        for name in init_names:
            plan = context_plan(name)
            plan.init_names.append(name)
            bound = self.bounds[name]
            if bound not in plan.init_bounds:
                plan.init_bounds.append(bound)
        for name in self._body_index.get(key, ()):
            if name in shed:
                continue
            context_plan(name).body.append((name, self.bounds[name]))
        for name in self._cleanup_index.get(key, ()):
            if name in shed:
                continue
            plan = context_plan(name)
            plan.cleanup_names.append(name)
            bound = self.bounds[name]
            if bound not in plan.cleanup_bounds:
                plan.cleanup_bounds.append(bound)

        if not shard_plans and local.empty():
            return _EMPTY_PLAN
        return _KeyPlan(
            shard_work=tuple(sorted(shard_plans.items())),
            local=None if local.empty() else local,
            initiated=frozenset(init_names),
        )

    # -- dispatch ---------------------------------------------------------------

    def handle_event(self, event: RuntimeEvent) -> None:
        """Route one concrete event to every automaton that observes it.

        In deferred mode this is the *capture* path: the event is stamped
        and appended to the calling thread's ring (thread-local automata
        are still evaluated inline — see ``_local_keys``), and only a
        synchronization-point key forces evaluation before returning.
        """
        if self.stamp_capture:
            # Capture timestamping (DESIGN §5.9): the monotonic stamp is
            # taken *here*, before any deferral, so clock guards measure
            # when the program did the thing, not when the drain ran.
            object.__setattr__(event, "timestamp", self.clock.now())
        elif event.timestamp > self._max_event_ts:
            self._max_event_ts = event.timestamp
        if self.drain is not None:
            key = (event.kind, event.name)
            if key in self._local_keys:
                self._dispatch_local(event, key)
            self.drain.enqueue(event)
            if key in self._sync_keys:
                self.drain.flush(sync=True)
            return
        self.events_processed += 1
        self.supervisor.begin_dispatch()
        if self.governor is not None:
            self._govern(1)
        key = (event.kind, event.name)
        plan = self._plan_for(key)
        for index, work in plan.shard_work:
            shard = self.global_store.shards[index]
            with shard.lock:
                self._run_plan(work, shard.store, shard.tracker, event,
                               plan.initiated, key)
        if plan.local is not None:
            self._run_plan(plan.local, self.thread_stores.current(),
                           self._thread_tracker(), event, plan.initiated, key)

    def _dispatch_local(self, event: RuntimeEvent, key: DispatchKey) -> None:
        """Evaluate one event's thread-local share inline (deferred mode).

        Per-thread automata never ride the rings: their state lives in the
        capturing thread's store and their event order *is* that thread's
        program order, so inline evaluation is both required and already
        verdict-exact.  The drain side skips local work
        (``include_local=False``) so nothing runs twice.
        """
        plan = self._plan_for(key)
        if plan.local is not None:
            self._run_plan(plan.local, self.thread_stores.current(),
                           self._thread_tracker(), event, plan.initiated, key)

    def dispatch_batch(
        self, events: Iterable[RuntimeEvent], include_local: bool = True
    ) -> int:
        """Batched event ingestion: each shard lock is taken once.

        Events are grouped by the shards they affect; each shard then
        replays its sub-sequence, in arrival order, under a single lock
        acquisition.  Because a class lives on exactly one shard, every
        class still observes its events in exactly the order they appear
        in the batch; only *cross-class* interleaving across shards is
        relaxed, which is unobservable (unrelated assertions share no
        state).  Thread-local work is replayed afterwards, in order, with
        no locking — its serialisation is implicit within the calling
        thread.

        Under a fail-stop policy a violation raises mid-batch and the
        remaining events are not processed, exactly as if the same events
        had been dispatched one at a time.  Returns the number of events
        ingested.

        ``include_local=False`` is the drain pass calling: thread-local
        work was already evaluated inline at capture time on the owning
        thread, so only the shard (global-context) share runs here.  An
        external caller in deferred mode first flushes the rings so the
        explicit batch cannot overtake events captured before it.
        """
        if self.drain is not None and include_local:
            self.drain.flush()
        events = list(events)
        if include_local:
            # External batch entry: same capture-stamping contract as
            # handle_event.  The drain's internal passes come through with
            # include_local=False and never re-stamp — their events were
            # stamped when the capturing thread enqueued them.
            if self.stamp_capture:
                now = self.clock.now()
                for event in events:
                    object.__setattr__(event, "timestamp", now)
            else:
                for event in events:
                    if event.timestamp > self._max_event_ts:
                        self._max_event_ts = event.timestamp
        self.events_processed += len(events)
        self.supervisor.advance(len(events))
        if self.governor is not None and events:
            self._govern(len(events))
        per_shard: Dict[
            int, List[Tuple[_ContextPlan, RuntimeEvent, frozenset, DispatchKey]]
        ] = {}
        local_work: List[
            Tuple[_ContextPlan, RuntimeEvent, frozenset, DispatchKey]
        ] = []
        for event in events:
            key = (event.kind, event.name)
            plan = self._plan_for(key)
            for index, work in plan.shard_work:
                per_shard.setdefault(index, []).append(
                    (work, event, plan.initiated, key)
                )
            if include_local and plan.local is not None:
                local_work.append((plan.local, event, plan.initiated, key))
        # Batch-per-key fast path (tesla-jit): consecutive entries in a
        # shard's sub-sequence that share a dispatch key, touch exactly one
        # class and carry no init/cleanup work can be evaluated by that
        # class's generated ``step_batch`` in ONE call, amortising the
        # per-event dispatch overhead of the drain.  Restricting runs to
        # single-class pure-body work keeps every observable stream exact:
        # with one class there is no cross-class interleaving to reorder,
        # and with no init/cleanup the tracker state is constant across the
        # run, so one lazy join covers it.  Armed fault injection falls
        # back to per-event dispatch so fault streams are byte-identical.
        batching = self.codegen and _fi._active is None
        for index in sorted(per_shard):
            shard = self.global_store.shards[index]
            entries = per_shard[index]
            with shard.lock:
                shard.batches += 1
                if not batching:
                    for work, event, initiated, key in entries:
                        self._run_plan(work, shard.store, shard.tracker,
                                       event, initiated, key)
                    continue
                i, n = 0, len(entries)
                while i < n:
                    work, event, initiated, key = entries[i]
                    if (work.init_names or work.cleanup_names
                            or len(work.body) != 1):
                        self._run_plan(work, shard.store, shard.tracker,
                                       event, initiated, key)
                        i += 1
                        continue
                    j = i + 1
                    while (j < n and entries[j][3] == key
                           and entries[j][0] is work
                           and entries[j][2] == initiated):
                        j += 1
                    if j - i > 1:
                        self._run_body_batch(
                            work, shard.store, shard.tracker,
                            [e[1] for e in entries[i:j]], initiated, key,
                        )
                    else:
                        self._run_plan(work, shard.store, shard.tracker,
                                       event, initiated, key)
                    i = j
        if local_work:
            store = self.thread_stores.current()
            tracker = self._thread_tracker()
            for work, event, initiated, key in local_work:
                self._run_plan(work, store, tracker, event, initiated, key)
        return len(events)

    def _run_plan(
        self,
        work: _ContextPlan,
        store: Store,
        tracker: BoundTracker,
        event: RuntimeEvent,
        initiated: frozenset,
        key: DispatchKey,
    ) -> None:
        """One context's share of one event (caller holds the shard lock
        for global contexts; thread-local contexts need none).

        Every per-class unit of work runs inside a containment boundary:
        a fault in one class's matchers, plans or pool is routed through
        the supervisor's :class:`~repro.runtime.supervisor.FailurePolicy`
        (attributed to that class, which is what lets quarantine find the
        faulty one) without disturbing the other classes on this event.
        ``TemporalAssertionError`` always propagates — it is the fail-stop
        *violation* policy speaking, not a monitor fault.
        """
        compiled = self.compiled
        codegen = self.codegen
        supervisor = self.supervisor
        gov = self.governor
        if compiled:
            # One epoch read per (event, context); each class's plan_for
            # is a dict probe plus an integer compare.
            epoch = interest_epoch.value
        if codegen:
            facts = self._codegen_facts(epoch)
        if self.lazy:
            # One epoch bump per distinct bound — "a per-context record of
            # common initialisation events" — independent of how many
            # classes share that bound.  The entry timestamp rides along so
            # lazily-joining timed classes know when the bound opened.
            for bound in work.init_bounds:
                tracker.begin(bound, event.timestamp)
        else:
            for name in work.init_names:
                t0 = gov.now() if gov is not None else 0.0
                try:
                    cr = store.get(name)
                    if gov is not None and not cr.active:
                        # Rung-1 shedding: 1-in-N bound instantiation.  A
                        # skipped occurrence never materialises (the class
                        # stays inactive, so its events take the ignore
                        # path); an admitted one stamps its rate so any
                        # violation it finds carries the honesty annotation.
                        if not gov.admit_bound(name):
                            continue
                        cr.sample_rate = gov.sample_rate(name)
                    handle_init(
                        cr, event, self.hub, lazy=False,
                        plan=cr.plan_for(key, epoch) if compiled else None,
                    )
                except TemporalAssertionError:
                    raise
                except Exception as exc:
                    if not supervisor.contain(name, "init", exc):
                        raise
                finally:
                    if gov is not None:
                        self._charge(gov, name, gov.now() - t0)
        for name, bound in work.body:
            if name in initiated:
                # An event that opens a class's bound is not also one of its
                # body events for the same occurrence.
                continue
            t0 = gov.now() if gov is not None else 0.0
            try:
                cr = store.get(name)
                if self.lazy:
                    lazy_join_bound(cr, bound, tracker, governor=gov)
                if codegen:
                    entry = cr.step_for(key, epoch, facts)
                    if entry is not None:
                        entry.step(cr, event, self.hub)
                    else:
                        # Loud fallback: the generator declined this plan
                        # (counted in gen_fallback_*); the compiled
                        # interpreter carries the event instead.
                        tesla_update_state(
                            cr, event, self.hub, self.lazy,
                            plan=cr.plan_for(key, epoch),
                        )
                else:
                    tesla_update_state(
                        cr, event, self.hub, self.lazy,
                        plan=cr.plan_for(key, epoch) if compiled else None,
                    )
            except TemporalAssertionError:
                raise
            except Exception as exc:
                if not supervisor.contain(name, "body", exc):
                    raise
            finally:
                if gov is not None:
                    self._charge(gov, name, gov.now() - t0)
        if self.lazy:
            # Cleanup visits only the classes actually touched during the
            # bound, not every class sharing it.
            for bound in work.cleanup_bounds:
                for name in sorted(tracker.end(bound)):
                    t0 = gov.now() if gov is not None else 0.0
                    try:
                        cr = store.get(name)
                        handle_cleanup(
                            cr, event, self.hub,
                            plan=cr.plan_for(key, epoch) if compiled else None,
                        )
                    except TemporalAssertionError:
                        raise
                    except Exception as exc:
                        if not supervisor.contain(name, "cleanup", exc):
                            raise
                    finally:
                        if gov is not None:
                            self._charge(gov, name, gov.now() - t0)
        else:
            for name in work.cleanup_names:
                t0 = gov.now() if gov is not None else 0.0
                try:
                    cr = store.get(name)
                    handle_cleanup(
                        cr, event, self.hub,
                        plan=cr.plan_for(key, epoch) if compiled else None,
                    )
                except TemporalAssertionError:
                    raise
                except Exception as exc:
                    if not supervisor.contain(name, "cleanup", exc):
                        raise
                finally:
                    if gov is not None:
                        self._charge(gov, name, gov.now() - t0)

    def _run_body_batch(
        self,
        work: _ContextPlan,
        store: Store,
        tracker: BoundTracker,
        events: List[RuntimeEvent],
        initiated: frozenset,
        key: DispatchKey,
    ) -> None:
        """One class's pure-body share of a run of same-key events, in one
        generated ``step_batch`` call (caller holds the shard lock).

        Only reached for runs with no init/cleanup work and exactly one
        body class (``dispatch_batch`` enforces this), so the tracker's
        bound state is constant across the run and a single lazy join
        covers every event.  Containment granularity widens from per-event
        to per-run: a monitor fault mid-batch forfeits the rest of the run
        for this class, which the supervisor attributes exactly as before.
        """
        epoch = interest_epoch.value
        facts = self._codegen_facts(epoch)
        supervisor = self.supervisor
        gov = self.governor
        for name, bound in work.body:
            if name in initiated:
                continue
            t0 = gov.now() if gov is not None else 0.0
            try:
                cr = store.get(name)
                if self.lazy:
                    lazy_join_bound(cr, bound, tracker, governor=gov)
                entry = cr.step_for(key, epoch, facts)
                if entry is not None:
                    entry.step_batch(cr, events, self.hub)
                else:
                    plan = cr.plan_for(key, epoch)
                    for event in events:
                        tesla_update_state(
                            cr, event, self.hub, self.lazy, plan=plan
                        )
            except TemporalAssertionError:
                raise
            except Exception as exc:
                if not supervisor.contain(name, "body", exc):
                    raise
            finally:
                if gov is not None:
                    self._charge(gov, name, gov.now() - t0, len(events))

    # -- maintenance --------------------------------------------------------------

    def check_timers(self) -> int:
        """Expire overdue deadline obligations with no successor event.

        This is the sync-point half of the timed semantics (DESIGN §5.9):
        per-event expiry inside ``tesla_update_state`` catches deadlines
        that pass *before a later event*, while this check catches the
        case where no further event ever arrives — the drain controller
        and ``flush_deferred`` call it so a missed deadline surfaces as a
        violation at the next flush rather than never.

        "Now" is the later of the runtime clock and the largest event
        timestamp seen, so pre-stamped (replayed) traces expire by trace
        time, not this process's clock.  Per-class faults are contained
        through the supervisor: a faulting timer path degrades that class
        to ordinal semantics (the obligation still reports at cleanup),
        never to a dropped verdict.  Returns the number of instances
        expired.
        """
        if not self._timed_classes:
            return 0
        self.timer_checks += 1
        now = self.clock.now()
        if self._max_event_ts > now:
            now = self._max_event_ts
        expired = 0
        supervisor = self.supervisor
        for name in self._timed_classes:
            if self.contexts[name] is Context.GLOBAL:
                shard = self.global_store.shard_for(name)
                with shard.lock:
                    cr = shard.store.get(name)
                    if cr is None:
                        continue
                    try:
                        expired += expire_deadlines(cr, now, self.hub)
                    except TemporalAssertionError:
                        raise
                    except Exception as exc:
                        if not supervisor.contain(name, "timer", exc):
                            raise
            else:
                for store in self.thread_stores.all_stores():
                    cr = store.get(name)
                    if cr is None:
                        continue
                    try:
                        expired += expire_deadlines(cr, now, self.hub)
                    except TemporalAssertionError:
                        raise
                    except Exception as exc:
                        if not supervisor.contain(name, "timer", exc):
                            raise
        self.timer_expiries += expired
        return expired

    def flush_deferred(self) -> None:
        """Evaluate everything captured so far and expire overdue timers
        (the sync-point contract; a synchronous runtime only has the timer
        half).

        Introspection readers (``health_report``/``coverage_report``/…)
        call this so reads never observe a store that lags capture.
        """
        if self.drain is not None:
            self.drain.flush()
        else:
            self.check_timers()

    def discard_deferred(self) -> int:
        """Drop captured-but-unevaluated events (teardown after an
        application failure).  Returns how many were dropped."""
        if self.drain is not None:
            return self.drain.discard_pending()
        return 0

    def deferred_queue_depth(self) -> int:
        if self.drain is not None:
            return self.drain.queue_depth()
        return 0

    def close_journal(self) -> None:
        """Footer-close the trace journal (idempotent).

        Does *not* flush the rings first: teardown decides whether pending
        captures are evaluated (clean exit) or discarded (the block body
        raised), and the journal must mirror that choice.
        """
        if self.journal is not None and not self.journal.closed:
            self.journal.close()

    def reset(self) -> None:
        """Expunge all instances and close all bounds (e.g. between runs).

        In deferred mode the background drainer is stopped and pending
        captures discarded *first*, so nothing can repopulate the stores
        mid-reset; the ring objects themselves survive (threads may hold
        references) but come back empty with zeroed accounting.
        """
        if self.drain is not None:
            self.drain.reset()
        self.global_store.reset()
        self.thread_stores.reset()
        self._thread_trackers = threading.local()
        self.events_processed = 0
        self._max_event_ts = 0.0
        self.timer_checks = 0
        self.timer_expiries = 0
        self.hub.reset_counts()
        self.supervisor.reset()
        if self.governor is not None:
            self.governor.reset()

    def observes(self, key: DispatchKey) -> bool:
        """Whether any installed automaton cares about this dispatch key."""
        return (
            key in self._body_index
            or key in self._init_index
            or key in self._cleanup_index
        )
