"""Per-thread event ring buffers: the deferred pipeline's capture side.

The paper's hot path is synchronous: "an event cannot complete until its
instrumentation hook has finished running", so instrumented-thread latency
is bounded by automaton work plus a shard lock round-trip.  The deferred
pipeline (DESIGN §5.4) splits *capture* from *evaluation* the way
stream-runtime checkers do: an application thread appending an event pays
one sequence-number stamp and one slot write into a thread-local,
preallocated :class:`EventRing` — no locks, no event-key planning, no
automaton work — and a drain pass (:mod:`repro.runtime.drain`) later
merges every thread's ring by global sequence number and replays the
merged stream through the ordinary shard dispatch in batches.

Verdict equivalence rests on two properties this module owns:

* **per-thread FIFO** — a ring is single-producer (its owning thread) and
  its consumer always takes slots in append order, so the merged stream
  preserves each thread's program order exactly;
* **no loss, no duplication** — a full ring never drops: the producer
  either inline-flushes (``overflow_policy="flush"``) or blocks for the
  drainer (``overflow_policy="block"``), and every slot is consumed
  exactly once.

Under CPython's GIL the single-producer/single-consumer discipline needs
no locks: the producer writes the slot before publishing it by advancing
``head``, and the consumer only ever advances ``tail`` — each index has
exactly one writer.  Sequence numbers come from a shared
:class:`itertools.count`, whose ``next()`` is a single atomic C call.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, List, Optional, Tuple

from ..core.events import RuntimeEvent

__all__ = ["DEFAULT_RING_CAPACITY", "EventRing", "SeqnoSource"]

#: Default slots per thread ring — deep enough that bursty capture between
#: two synchronization points rarely backpressures, small enough that a
#: thousand threads stay in tens of megabytes.
DEFAULT_RING_CAPACITY = 4096

#: One (seqno, event) cell as stored in a ring slot.
Slot = Tuple[int, RuntimeEvent]


class SeqnoSource:
    """A shared, monotonically increasing event sequence stamp.

    One instance per :class:`~repro.runtime.drain.DrainController`:
    every ring owned by the controller stamps from the same counter, so
    sorting a merged drain batch by seqno recovers an interleaving that is
    consistent with every thread's program order.  ``itertools.count`` is
    advanced by a single C-level call, which CPython will not preempt —
    two threads can never draw the same stamp.
    """

    __slots__ = ("_counter",)

    def __init__(self) -> None:
        self._counter = itertools.count()

    def next(self) -> int:
        return next(self._counter)


class EventRing:
    """One thread's preallocated capture buffer.

    Single producer (the owning application thread), single consumer (the
    drain pass, serialised by the controller's drain lock).  ``head`` is
    the producer's publish cursor, ``tail`` the consumer's; both increase
    without bound and index the slot list modulo ``capacity``, so
    ``head - tail`` is always the exact queue depth and wraparound needs
    no flag bits.
    """

    __slots__ = (
        "capacity",
        "thread_name",
        "_slots",
        "head",
        "tail",
        "appended",
        "overflows",
        "max_depth",
    )

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY,
                 thread_name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.thread_name = thread_name
        #: Preallocated once; append never allocates ring storage.
        self._slots: List[Optional[Slot]] = [None] * capacity
        self.head = 0
        self.tail = 0
        #: Lifetime appends (monotonic; feeds the no-loss accounting).
        self.appended = 0
        #: Times the producer found the ring full and had to backpressure.
        self.overflows = 0
        #: High-water queue depth observed at append time.
        self.max_depth = 0

    def __len__(self) -> int:
        return self.head - self.tail

    @property
    def full(self) -> bool:
        return self.head - self.tail >= self.capacity

    def append(self, seqno: int, event: RuntimeEvent) -> None:
        """Producer side: stamp + slot write.  Caller checks ``full``.

        The slot is written *before* ``head`` advances, so the consumer
        can never observe a published index with a stale cell.
        """
        head = self.head
        self._slots[head % self.capacity] = (seqno, event)
        self.head = head + 1
        self.appended += 1
        depth = self.head - self.tail
        if depth > self.max_depth:
            self.max_depth = depth

    def drain_into(self, out: List[Slot]) -> int:
        """Consumer side: move every published slot into ``out``, in
        append order.  Returns the number of slots consumed.

        ``head`` is read once up front: slots published after the read
        belong to the next drain pass, which keeps one pass a bounded
        amount of work even while the producer keeps appending.
        """
        head = self.head
        tail = self.tail
        taken = 0
        slots = self._slots
        capacity = self.capacity
        while tail < head:
            cell = slots[tail % capacity]
            slots[tail % capacity] = None  # drop the event reference
            out.append(cell)
            tail += 1
            taken += 1
        self.tail = tail
        return taken

    def discard(self) -> int:
        """Throw away every pending slot (runtime reset / teardown after a
        failure).  Returns how many were discarded."""
        head = self.head
        tail = self.tail
        dropped = head - tail
        slots = self._slots
        capacity = self.capacity
        while tail < head:
            slots[tail % capacity] = None
            tail += 1
        self.tail = tail
        return dropped

    def stats(self) -> dict:
        return {
            "thread": self.thread_name,
            "capacity": self.capacity,
            "depth": len(self),
            "appended": self.appended,
            "overflows": self.overflows,
            "max_depth": self.max_depth,
        }
