"""The adaptive overhead governor: bounded monitoring cost under load.

TESLA accepts up to ~16× slowdowns (figure 11); a production runtime
cannot.  This module is the feedback controller that makes monitoring
cost a *budget* instead of a consequence: the ``overhead_budget=`` knob
declares what fraction of wall time monitoring may spend (e.g. 0.05 —
"≤5%"), dispatch charges each automaton class's measured evaluation time
here, and whenever a control window closes over budget the governor
pushes the most expensive class one rung down a graduated shedding
ladder:

``FULL → SAMPLED(1-in-N) → DEMOTED (journal-only) → SHED``

* **SAMPLED** — only 1-in-N of the class's bound occurrences instantiate
  automata (:meth:`admit_bound` gates the bound join in
  ``update.lazy_join_bound`` / the manager's eager init loop).  Findings
  stay honest: every instance carries the rate it was admitted under, and
  the resulting :class:`~repro.errors.TemporalViolation` is annotated
  with it (``sampling_rate``), so a sampled finding can never masquerade
  as full coverage.
* **DEMOTED** — the class is excluded from dispatch plans but its events
  are still captured and journalled (PR 6's drain sink records *before*
  dispatch), so the evidence survives for offline replay.  Plans are
  cleared through the manager's change hook without bumping the interest
  epoch — hooks must keep capturing.
* **SHED** — full detachment through the supervisor's existing
  interest-epoch bump (``Supervisor.governor_shed``): translator chains
  re-filter and hook interest caches drop the class, exactly like
  quarantine.

When spend falls well under budget the ladder unwinds one rung at a time,
and the restored class is **on probation**: a re-escalation while on
probation counts as a strike — the class re-degrades immediately and its
hold before the next restore grows exponentially, mirroring quarantine's
probation/backoff lifecycle.

Decisions are *replayable*: the controller reads time only through the
injected :class:`~repro.runtime.clock.Clock`, so the shed/sample/demote
sequence is a pure function of (clock trace, stats stream) — no hidden
``time.time()`` anywhere.  A faulting governor fails safe: the manager
contains any exception out of :meth:`charge`/:meth:`maybe_control` and
calls :meth:`trip`, which restores full coverage and disables further
decisions — monitoring degrades to "no shedding", never to silently
dropped verdicts.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from . import faultinject as _fi
from .clock import Clock, as_clock
from .faultinject import fault_site

__all__ = ["GovernorState", "GovernorRecord", "OverheadGovernor"]

_FP_CHARGE = fault_site("governor.charge")
_FP_CONTROL = fault_site("governor.control")

#: Labels that are cost-accounted but never shed: overhead attributed to
#: shared machinery (e.g. ``"(drain)"``), following the supervisor's
#: pseudo-label convention.
_PSEUDO_PREFIX = "("


class GovernorState(enum.Enum):
    """One automaton class's rung on the shedding ladder."""

    FULL = "full"
    SAMPLED = "sampled"
    DEMOTED = "demoted"
    SHED = "shed"


@dataclass
class GovernorRecord:
    """Per-class cost ledger and ladder position."""

    automaton: str
    #: Ladder rung: 0 = FULL, 1..len(rates) = SAMPLED at rates[level-1],
    #: len(rates)+1 = DEMOTED, len(rates)+2 = SHED.
    level: int = 0
    #: Probation strikes: re-escalations while on probation.  Each strike
    #: lengthens the hold before the next restore (exponential backoff).
    trips: int = 0
    #: Decision index before which this class may not be relaxed.
    hold_until: int = 0
    #: Decision index until which a relaxed class is on probation.
    probation_until: int = 0
    #: Monotone bound-occurrence counter driving 1-in-N admission.
    counter: int = 0
    admitted: int = 0
    skipped: int = 0
    window_seconds: float = 0.0
    window_events: int = 0
    total_seconds: float = 0.0
    total_events: int = 0


class OverheadGovernor:
    """Feedback controller holding monitoring spend under a budget.

    Hot-path entry points (:meth:`charge`, :meth:`admit_bound`,
    :meth:`maybe_control`) are plain attribute/dict work safe under the
    GIL; :meth:`control` — the rare decision step — takes the lock.

    ``shed``/``unshed`` are the supervisor's ``governor_shed`` /
    ``governor_unshed`` bound methods; ``on_demote_change`` is the
    manager hook clearing dispatch plans when the demoted set changes.
    """

    def __init__(
        self,
        budget: float,
        clock: object = None,
        interval: float = 0.01,
        check_every: int = 32,
        sample_rates: Tuple[int, ...] = (2, 8, 32),
        relax_ratio: float = 0.5,
        relax_after: int = 4,
        relax_hold: int = 4,
        probation_decisions: int = 8,
        backoff: float = 2.0,
        history: int = 256,
        shed: Optional[Callable[[str], None]] = None,
        unshed: Optional[Callable[[str], None]] = None,
        on_demote_change: Optional[Callable[[], None]] = None,
    ) -> None:
        if not 0.0 < budget <= 1.0:
            raise ValueError(
                "overhead_budget is a fraction of wall time; it must be in "
                f"(0.0, 1.0], got {budget!r}"
            )
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        if any(r < 2 for r in sample_rates):
            raise ValueError(f"sample rates must be >= 2, got {sample_rates}")
        self.budget = budget
        self.clock: Clock = as_clock(clock)
        #: Bound method — the hot path's cheap time read.
        self.now = self.clock.now
        self.interval = interval
        self.check_every = check_every
        self.sample_rates = tuple(sample_rates)
        self.relax_ratio = relax_ratio
        self.relax_after = relax_after
        self.relax_hold = relax_hold
        self.probation_decisions = probation_decisions
        self.backoff = backoff
        self._shed_cb = shed
        self._unshed_cb = unshed
        self._on_demote_change = on_demote_change
        #: Ladder geometry: FULL + one rung per sampling rate + DEMOTED +
        #: SHED.
        self._demote_level = len(self.sample_rates) + 1
        self._shed_level = self._demote_level + 1
        self._ledger: Dict[str, GovernorRecord] = {}
        #: class name -> current 1-in-N rate (SAMPLED rung only).
        self._sample: Dict[str, int] = {}
        self._demoted: set = set()
        #: Failed safe: all restrictions lifted, no further decisions.
        self.tripped = False
        self.decisions = 0
        self.escalations = 0
        self.relaxations = 0
        #: (decision index, class, from-state, to-state) — the replayable
        #: decision log the determinism property compares.
        self.transitions: List[Tuple[int, str, str, str]] = []
        self._history = history
        self.last_ratio = 0.0
        self._calm = 0
        now = self.now()
        self._started = now
        self._window_start = now
        self._window_spend = 0.0
        self._total_spend = 0.0
        self._total_wall = 0.0
        self._next_decision_at = now + interval
        self._events_since = 0
        self._mark_spend = 0.0
        self._mark_time = now
        self._lock = threading.Lock()

    # -- hot path --------------------------------------------------------------

    def charge(self, name: str, seconds: float, events: int = 1) -> None:
        """Account one unit of monitoring work to ``name``.

        Called by the manager around each class's dispatch share and by
        the drain controller for its merge overhead (``"(drain)"``).
        Plain accumulation, GIL-safe like the supervisor's counters.
        """
        if self.tripped:
            return
        if _fi._active is not None:
            _fi.fault_point(_FP_CHARGE)
        self._window_spend += seconds
        led = self._ledger.get(name)
        if led is None:
            led = self._ledger[name] = GovernorRecord(name)
        led.window_seconds += seconds
        led.window_events += events
        led.total_seconds += seconds
        led.total_events += events

    def admit_bound(self, name: str) -> bool:
        """The 1-in-N sampling gate, consulted once per bound occurrence.

        Classes not on the SAMPLED rung are always admitted (one dict
        probe).  The counter is monotone per class, so the admit pattern
        is deterministic given the decision sequence.
        """
        rate = self._sample.get(name)
        if rate is None or self.tripped:
            return True
        led = self._ledger.get(name)
        if led is None:
            led = self._ledger[name] = GovernorRecord(name)
        count = led.counter
        led.counter = count + 1
        if count % rate == 0:
            led.admitted += 1
            return True
        led.skipped += 1
        return False

    def sample_rate(self, name: str) -> int:
        """The honesty annotation: current 1-in-N rate (1 = unsampled)."""
        return self._sample.get(name, 1)

    def maybe_control(self, events: int = 1) -> None:
        """The per-dispatch tick: cheap counter bump, and a control step
        when a full interval has elapsed on the injected clock."""
        if self.tripped:
            return
        self._events_since += events
        if self._events_since < self.check_every:
            return
        self._events_since = 0
        now = self.now()
        if now >= self._next_decision_at:
            self.control(now)

    # -- the control loop ------------------------------------------------------

    def control(self, now: Optional[float] = None) -> None:
        """Close the current window and decide: escalate when spend ran
        over budget, relax (onto probation) when it stayed well under."""
        if self.tripped:
            return
        with self._lock:
            if _fi._active is not None:
                _fi.fault_point(_FP_CONTROL)
            if now is None:
                now = self.now()
            wall = now - self._window_start
            if wall <= 0.0:
                self._next_decision_at = now + self.interval
                return
            spend = self._window_spend
            ratio = spend / wall
            self.decisions += 1
            self.last_ratio = ratio
            if ratio > self.budget:
                self._calm = 0
                self._escalate(ratio)
            elif ratio < self.budget * self.relax_ratio:
                self._calm += 1
                if self._calm >= self.relax_after:
                    self._relax()
            else:
                self._calm = 0
            # Rotate the window: per-class costs feed the *next* ranking.
            for led in self._ledger.values():
                led.window_seconds = 0.0
                led.window_events = 0
            self._total_spend += spend
            self._total_wall += wall
            self._window_spend = 0.0
            self._window_start = now
            self._next_decision_at = now + self.interval

    def _escalate(self, ratio: float) -> None:
        """Push the hottest sheddable class down the ladder.  Caller
        holds the lock."""
        candidates = [
            led
            for name, led in self._ledger.items()
            if not name.startswith(_PSEUDO_PREFIX)
            and led.level < self._shed_level
        ]
        if not candidates:
            return
        led = max(
            candidates,
            key=lambda l: (l.window_seconds, l.total_seconds, l.automaton),
        )
        if led.window_seconds <= 0.0 and led.total_seconds <= 0.0:
            # Nothing measured for any candidate: the overage came from
            # unattributable overhead; shedding an idle class won't help.
            return
        # Larger overshoots jump further down the ladder, so convergence
        # is a handful of windows even from a cold start.
        step = 1
        overshoot = ratio / self.budget
        if overshoot > 2.0:
            step = 2
        if overshoot > 8.0:
            step = 3
        on_probation = self.decisions <= led.probation_until
        if on_probation:
            # One strike on probation: re-degrade with an exponentially
            # longer hold — the quarantine lifecycle, re-spoken in
            # decision indices.
            led.trips += 1
        self._set_level(led, led.level + step)
        led.hold_until = self.decisions + int(
            self.relax_hold * (self.backoff ** led.trips)
        )
        self.escalations += 1

    def _relax(self) -> None:
        """Restore the least expensive degraded class one rung, on
        probation.  Caller holds the lock."""
        candidates = [
            led
            for led in self._ledger.values()
            if led.level > 0 and self.decisions >= led.hold_until
        ]
        if not candidates:
            return
        led = min(
            candidates,
            key=lambda l: (l.window_seconds, l.total_seconds, l.automaton),
        )
        self._set_level(led, led.level - 1)
        led.probation_until = self.decisions + self.probation_decisions
        self.relaxations += 1
        self._calm = 0

    def _state_of(self, level: int) -> Tuple[GovernorState, int]:
        if level <= 0:
            return GovernorState.FULL, 1
        if level < self._demote_level:
            return GovernorState.SAMPLED, self.sample_rates[level - 1]
        if level == self._demote_level:
            return GovernorState.DEMOTED, 0
        return GovernorState.SHED, 0

    def _set_level(self, led: GovernorRecord, level: int) -> None:
        """Move one class to ``level``, applying the rung's side effects
        (sampling table, demoted set, supervisor shed).  Caller holds the
        lock; the supervisor callbacks take its lock nested inside ours —
        the one ordering used everywhere (governor → supervisor)."""
        level = max(0, min(level, self._shed_level))
        old = led.level
        if level == old:
            return
        old_state, _ = self._state_of(old)
        new_state, rate = self._state_of(level)
        led.level = level
        if new_state is GovernorState.SAMPLED:
            self._sample[led.automaton] = rate
        else:
            self._sample.pop(led.automaton, None)
        demote_changed = False
        if new_state is GovernorState.DEMOTED:
            if led.automaton not in self._demoted:
                self._demoted.add(led.automaton)
                demote_changed = True
        elif led.automaton in self._demoted:
            self._demoted.discard(led.automaton)
            demote_changed = True
        if new_state is GovernorState.SHED and old_state is not GovernorState.SHED:
            if self._shed_cb is not None:
                self._shed_cb(led.automaton)
        elif old_state is GovernorState.SHED and new_state is not GovernorState.SHED:
            if self._unshed_cb is not None:
                self._unshed_cb(led.automaton)
        if demote_changed and self._on_demote_change is not None:
            self._on_demote_change()
        self.transitions.append(
            (self.decisions, led.automaton, old_state.value, new_state.value)
        )
        if len(self.transitions) > self._history:
            del self.transitions[: -self._history]

    # -- manual ladder control (tests, CLI demo) -------------------------------

    def escalate_class(self, name: str, rungs: int = 1) -> None:
        """Force one class down the ladder (tests and the CLI demo)."""
        with self._lock:
            led = self._ledger.get(name)
            if led is None:
                led = self._ledger[name] = GovernorRecord(name)
            self._set_level(led, led.level + rungs)

    def relax_class(self, name: str, rungs: int = 1) -> None:
        with self._lock:
            led = self._ledger.get(name)
            if led is not None:
                self._set_level(led, led.level - rungs)

    def state_of(self, name: str) -> GovernorState:
        led = self._ledger.get(name)
        return GovernorState.FULL if led is None else self._state_of(led.level)[0]

    @property
    def demoted(self) -> frozenset:
        """Classes on the journal-only rung (consulted at plan build)."""
        return frozenset(self._demoted)

    # -- fail-safe -------------------------------------------------------------

    def trip(self) -> None:
        """A governor fault was contained: restore full coverage and stop
        making decisions.  A broken controller must cost headroom, never
        verdicts — so every restriction is lifted, defensively."""
        with self._lock:
            if self.tripped:
                return
            self.tripped = True
            self._sample.clear()
            demote_changed = bool(self._demoted)
            self._demoted.clear()
            for led in self._ledger.values():
                if led.level >= self._shed_level and self._unshed_cb is not None:
                    try:
                        self._unshed_cb(led.automaton)
                    except Exception:
                        pass
                led.level = 0
        if demote_changed and self._on_demote_change is not None:
            try:
                self._on_demote_change()
            except Exception:
                pass

    # -- accounting views ------------------------------------------------------

    @property
    def spend_seconds(self) -> float:
        """Lifetime monitoring spend (closed windows + the open one)."""
        return self._total_spend + self._window_spend

    @property
    def wall_seconds(self) -> float:
        return self.now() - self._started

    @property
    def total_ratio(self) -> float:
        wall = self.wall_seconds
        return self.spend_seconds / wall if wall > 0 else 0.0

    def begin_measurement(self) -> None:
        """Mark the start of a measurement phase (``bench_governor``
        samples the steady state after the controller converges)."""
        self._mark_spend = self.spend_seconds
        self._mark_time = self.now()

    def measured_ratio(self) -> float:
        """Spend fraction since :meth:`begin_measurement`."""
        wall = self.now() - self._mark_time
        if wall <= 0:
            return 0.0
        return (self.spend_seconds - self._mark_spend) / wall

    def cost_ranking(self) -> List[GovernorRecord]:
        """Per-assertion lifetime cost, most expensive first."""
        return sorted(
            self._ledger.values(),
            key=lambda l: (-l.total_seconds, l.automaton),
        )

    def report(self) -> dict:
        """The introspection snapshot ``health_report`` embeds."""
        with self._lock:
            shed = sorted(
                led.automaton
                for led in self._ledger.values()
                if led.level >= self._shed_level
            )
            classes = []
            for led in self.cost_ranking():
                state, rate = self._state_of(led.level)
                classes.append(
                    {
                        "automaton": led.automaton,
                        "state": state.value,
                        "rate": rate if state is GovernorState.SAMPLED else 1,
                        "level": led.level,
                        "trips": led.trips,
                        "window_seconds": led.window_seconds,
                        "total_seconds": led.total_seconds,
                        "total_events": led.total_events,
                        "admitted": led.admitted,
                        "skipped": led.skipped,
                    }
                )
            return {
                "budget": self.budget,
                "interval": self.interval,
                "tripped": self.tripped,
                "decisions": self.decisions,
                "escalations": self.escalations,
                "relaxations": self.relaxations,
                "window_ratio": self.last_ratio,
                "total_ratio": self.total_ratio,
                "spend_seconds": self.spend_seconds,
                "wall_seconds": self.wall_seconds,
                "sampled": dict(sorted(self._sample.items())),
                "demoted": sorted(self._demoted),
                "shed": shed,
                "classes": classes,
                "transitions": list(self.transitions[-16:]),
            }

    # -- maintenance -----------------------------------------------------------

    def reset(self) -> None:
        """Lift every restriction and zero accounting (between runs).

        The supervisor's own reset already clears governor-shed classes;
        the ``unshed`` calls here are idempotent no-ops in that case."""
        with self._lock:
            for led in self._ledger.values():
                if led.level >= self._shed_level and self._unshed_cb is not None:
                    try:
                        self._unshed_cb(led.automaton)
                    except Exception:
                        pass
            had_demoted = bool(self._demoted)
            self._ledger.clear()
            self._sample.clear()
            self._demoted.clear()
            self.tripped = False
            self.decisions = 0
            self.escalations = 0
            self.relaxations = 0
            self.transitions.clear()
            self.last_ratio = 0.0
            self._calm = 0
            now = self.now()
            self._started = now
            self._window_start = now
            self._window_spend = 0.0
            self._total_spend = 0.0
            self._total_wall = 0.0
            self._next_decision_at = now + self.interval
            self._events_since = 0
            self._mark_spend = 0.0
            self._mark_time = now
        if had_demoted and self._on_demote_change is not None:
            self._on_demote_change()
