"""Per-object assertions (paper section 7, implemented here).

"This would naturally lead to per-object assertions, allowing assertions
to be more easily tied to an object's lifetime."

A classic TESLA bound is *static*: ``call(fn)`` opens it, ``returnfrom
(fn)`` closes it, and one bound is open per context at a time.  A
*per-object* bound is parametric: the entry event binds a key variable
(the object), every object gets its own concurrent automaton lifetime, and
only the exit event carrying the *same* object closes it — e.g. "between
``falloc(fp)`` and ``fclose(fp)``, every write to ``fp`` was preceded by
an access check on ``fp``".

:class:`ObjectMonitor` reuses the whole automaton/instance machinery: each
live object owns a :class:`~repro.runtime.store.ClassRuntime` whose pool
holds that object's instance, stepped by the ordinary
``tesla_update_state`` engine.  It is an
:data:`~repro.instrument.hooks.EventSink`, so it attaches to the same hook
points and assertion sites as the main runtime.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.ast import FunctionCall, TemporalAssertion, referenced_variables
from ..core.automaton import Automaton, TransitionKind
from ..core.events import EventKind, RuntimeEvent
from ..core.translate import translate
from ..errors import AssertionParseError
from .notify import ErrorPolicy, NotificationHub
from .prealloc import DEFAULT_CAPACITY
from .store import ClassRuntime
from .update import handle_cleanup, handle_init, tesla_update_state


class ObjectMonitor:
    """Tracks one per-object assertion across concurrent object lifetimes.

    ``key`` names the assertion variable that identifies the object; it
    must be bound by the bound-entry event (i.e. appear among the entry
    event's argument patterns).
    """

    def __init__(
        self,
        assertion: TemporalAssertion,
        key: str,
        policy: Optional[ErrorPolicy] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if key not in referenced_variables(assertion):
            raise AssertionParseError(
                f"per-object key {key!r} is not a variable of {assertion.name}"
            )
        entry = assertion.bound.entry
        if not isinstance(entry, FunctionCall) or entry.args is None:
            raise AssertionParseError(
                "a per-object bound entry must be a call event with argument "
                "patterns that bind the key variable"
            )
        if key not in {
            name for pattern in entry.args for name in pattern.variables
        }:
            raise AssertionParseError(
                f"bound entry {entry.describe()} does not bind {key!r}"
            )
        self.assertion = assertion
        self.key = key
        self.automaton: Automaton = translate(assertion)
        self.hub = NotificationHub(policy)
        self.capacity = capacity
        #: id(object) -> (object, this object's class runtime).
        self._live: Dict[int, Tuple[Any, ClassRuntime]] = {}
        self.lifetimes_opened = 0
        self.lifetimes_closed = 0
        #: Totals carried over from closed lifetimes.
        self.closed_errors = 0
        self.closed_accepts = 0

    # -- lifecycle -------------------------------------------------------------

    def _match_bound(self, event: RuntimeEvent, kind: TransitionKind):
        for t in self.automaton.transitions:
            if t.kind is not kind or t.symbol is None:
                continue
            got = self.automaton.symbols[t.symbol].match(event, {})
            if got is not None:
                return got
        return None

    def _open(self, event: RuntimeEvent, binding: Dict[str, Any]) -> None:
        obj = binding.get(self.key)
        if obj is None or id(obj) in self._live:
            return  # re-entrant open for a live object: ignore, as §4.4.1
        runtime = ClassRuntime(self.automaton, self.capacity)
        handle_init(runtime, event, self.hub, lazy=False)
        # The wildcard instance handle_init created carries the binding the
        # entry event matched, pinning it to this object.
        self._live[id(obj)] = (obj, runtime)
        self.lifetimes_opened += 1

    def _close(self, event: RuntimeEvent, binding: Dict[str, Any]) -> None:
        obj = binding.get(self.key)
        if obj is None:
            return
        entry = self._live.pop(id(obj), None)
        if entry is None:
            return
        _, runtime = entry
        handle_cleanup(runtime, event, self.hub)
        self.lifetimes_closed += 1
        self.closed_errors += runtime.errors
        self.closed_accepts += runtime.accepts

    # -- sink ----------------------------------------------------------------

    def handle_event(self, event: RuntimeEvent) -> None:
        opened = self._match_bound(event, TransitionKind.INIT)
        if opened is not None:
            self._open(event, opened)
            return
        closed = self._match_bound(event, TransitionKind.CLEANUP)
        if closed is not None:
            self._close(event, closed)
            return
        if (
            event.kind is EventKind.ASSERTION_SITE
            and self.key in event.scope
        ):
            # A site names its object: it belongs to exactly that object's
            # lifetime.  A site for an object with no open lifetime is
            # outside any bound — ignored, per section 4.4.1.
            entry = self._live.get(id(event.scope[self.key]))
            if entry is not None:
                tesla_update_state(entry[1], event, self.hub, lazy=False)
            return
        for _, runtime in list(self._live.values()):
            tesla_update_state(runtime, event, self.hub, lazy=False)

    __call__ = handle_event

    # -- introspection ----------------------------------------------------------

    @property
    def live_objects(self) -> List[Any]:
        return [obj for obj, _ in self._live.values()]

    def runtime_for(self, obj: Any) -> Optional[ClassRuntime]:
        entry = self._live.get(id(obj))
        return entry[1] if entry is not None else None

    @property
    def errors(self) -> int:
        return self.closed_errors + sum(
            rt.errors for _, rt in self._live.values()
        )

    @property
    def accepts(self) -> int:
        return self.closed_accepts + sum(
            rt.accepts for _, rt in self._live.values()
        )

    def reset(self) -> None:
        self._live.clear()
        self.lifetimes_opened = 0
        self.lifetimes_closed = 0
        self.closed_errors = 0
        self.closed_accepts = 0


def instrument_object_assertion(
    assertion: TemporalAssertion,
    key: str,
    policy: Optional[ErrorPolicy] = None,
) -> Tuple[ObjectMonitor, "ObjectInstrumentation"]:
    """Weave a per-object assertion into the running program.

    Attaches an :class:`ObjectMonitor` to every hook point and site the
    assertion references; returns the monitor and a handle whose
    ``detach()`` undoes the weaving.
    """
    from ..core.ast import referenced_functions
    from ..instrument.hooks import hook_registry, site_registry

    monitor = ObjectMonitor(assertion, key, policy)
    attached_points = []
    for fn_name in referenced_functions(assertion):
        point = hook_registry.require(fn_name)
        point.attach(monitor)
        attached_points.append(point)
    site_registry.attach(assertion.name, monitor)
    return monitor, ObjectInstrumentation(monitor, attached_points, assertion.name)


class ObjectInstrumentation:
    """Undo handle for :func:`instrument_object_assertion`."""

    def __init__(self, monitor: ObjectMonitor, points, site_name: str) -> None:
        self.monitor = monitor
        self._points = points
        self._site_name = site_name

    def detach(self) -> None:
        from ..instrument.hooks import site_registry

        for point in self._points:
            point.detach(self.monitor)
        site_registry.detach(self._site_name, self.monitor)

    def __enter__(self) -> ObjectMonitor:
        return self.monitor

    def __exit__(self, *exc_info) -> None:
        self.detach()
