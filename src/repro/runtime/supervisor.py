"""The supervision layer: monitor faults are contained, never exported.

TESLA's paper contract covers *temporal violations*: they "cause the
program to fail-stop by default, but this is configurable at run-time"
(§4.4.2, :class:`~repro.runtime.notify.ErrorPolicy`).  This module covers
the failure mode the paper's kernel deployments (§5) take for granted but
never states: a fault in the *monitor itself* — a broken matcher, a plan
compiler bug, a raising notification handler — must not destabilise the
monitored program.  The monitor may lose coverage; it may never change
application behaviour.

:class:`FailurePolicy` extends the :class:`ErrorPolicy` idea to internal
faults, with four modes:

* :class:`FailStopFaults` — propagate the fault (the development default:
  a monitor bug should be loud on a developer's machine);
* :class:`FailOpen` — record the fault and keep going (the deployed
  configuration: lost coverage, unchanged application);
* :class:`CallbackPolicy` — hand each fault to user code, which decides;
* :class:`QuarantinePolicy` — fail-open, plus auto-detach: after
  ``threshold`` faults from one automaton class within a ``window``-tick
  sliding window, the class is quarantined — shed from dispatch plans and
  translator chains, with the interest epoch bumped so the compiled fast
  path drops it at the hook boundary — then optionally re-armed on
  *probation* after an exponential-backoff cooldown, and permanently
  quarantined after ``max_trips`` trips.

Time is the supervisor's **tick clock** — one tick per dispatched event —
not wall time, so windows, cooldowns and probation are deterministic
functions of the event trace (and of the fault-injection seed, which the
chaos tests exploit).

Every containment boundary (``TeslaRuntime._run_plan`` per class, the hook
wrapper, ``tesla_site``, field hooks, caller-side rewrites, interposition
hooks, notification fan-out) routes through :meth:`Supervisor.contain`;
:class:`~repro.errors.TemporalAssertionError` is never contained — it is
the *deliberate* fail-stop signal of the violation policy, not a fault.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .faultinject import InjectedFault

__all__ = [
    "MonitorFault",
    "FailurePolicy",
    "FailStopFaults",
    "FailOpen",
    "CallbackPolicy",
    "QuarantinePolicy",
    "QuarantineState",
    "QuarantineRecord",
    "Supervisor",
]


@dataclass(frozen=True)
class MonitorFault:
    """One contained (or about-to-propagate) internal monitor failure."""

    tick: int
    #: The automaton class the fault is attributed to, or a pseudo-label
    #: like ``"(hook)"`` when the fault happened before class dispatch.
    automaton: str
    #: Which boundary caught it: init/body/cleanup/dispatch/hook/site/
    #: field/interpose/caller/handler.
    stage: str
    error_type: str
    error: str
    #: The fault-injection site name, when the fault was an
    #: :class:`~repro.runtime.faultinject.InjectedFault`.
    injected_site: Optional[str] = None

    def describe(self) -> str:
        parts = [
            f"[tick {self.tick}] {self.automaton} {self.stage}: "
            f"{self.error_type}: {self.error}"
        ]
        if self.injected_site:
            parts.append(f"(injected at {self.injected_site})")
        return " ".join(parts)


class FailurePolicy:
    """What to do when TESLA's own machinery faults mid-dispatch.

    The internal-fault counterpart of :class:`~repro.runtime.notify.
    ErrorPolicy`: that one decides whether a *temporal violation* raises
    into the application; this one decides whether a *monitor fault* does.
    """

    def contain(self, fault: MonitorFault) -> bool:
        """True → swallow the fault (fail-open); False → re-raise it."""
        raise NotImplementedError


class FailStopFaults(FailurePolicy):
    """Propagate monitor faults — loud and immediate, for development."""

    def contain(self, fault: MonitorFault) -> bool:
        return False


class FailOpen(FailurePolicy):
    """Contain every monitor fault: coverage degrades, the app never sees
    it — the deployed configuration the kernel use cases require."""

    def contain(self, fault: MonitorFault) -> bool:
        return True


class CallbackPolicy(FailurePolicy):
    """Route each fault to a user callback, which may veto containment.

    The callback returning ``False`` propagates the fault; any other
    return (including ``None``) contains it.  A callback that itself
    raises is contained too — one layer of user code cannot re-open the
    boundary it was asked to guard.
    """

    def __init__(self, callback: Callable[[MonitorFault], Optional[bool]]) -> None:
        self.callback = callback
        self.callback_faults = 0

    def contain(self, fault: MonitorFault) -> bool:
        try:
            verdict = self.callback(fault)
        except Exception:
            self.callback_faults += 1
            return True
        return verdict is not False


class QuarantinePolicy(FailOpen):
    """Fail-open with automatic detachment of persistently faulty classes.

    ``threshold`` faults attributed to one automaton class within a
    sliding ``window`` of dispatch ticks trip quarantine.  A quarantined
    class is shed from dispatch until ``cooldown × backoff^(trip-1)``
    ticks pass; with ``probation=True`` it then re-arms on probation —
    one more fault during probation re-trips immediately with a longer
    cooldown, while ``probation_ticks`` fault-free ticks restore it to
    full service.  The ``max_trips``-th trip is permanent.
    """

    def __init__(
        self,
        threshold: int = 3,
        window: int = 256,
        cooldown: int = 512,
        backoff: float = 2.0,
        max_trips: int = 3,
        probation: bool = True,
        probation_ticks: Optional[int] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self.backoff = backoff
        self.max_trips = max_trips
        self.probation = probation
        self.probation_ticks = (
            window if probation_ticks is None else probation_ticks
        )

    def cooldown_for(self, trip: int) -> int:
        """Exponential backoff: the ``trip``-th quarantine's length."""
        return int(self.cooldown * (self.backoff ** max(0, trip - 1)))


class QuarantineState(enum.Enum):
    """Lifecycle of one automaton class under a :class:`QuarantinePolicy`."""

    ARMED = "armed"
    QUARANTINED = "quarantined"
    PROBATION = "probation"
    PERMANENT = "permanent"


@dataclass
class QuarantineRecord:
    """One automaton class's quarantine lifecycle state."""

    automaton: str
    state: QuarantineState = QuarantineState.ARMED
    trips: int = 0
    #: Tick at which a timed quarantine ends (probation begins).
    until_tick: int = 0
    #: Tick at which a clean probation returns the class to ARMED.
    probation_until: int = 0


#: Labels that never feed quarantine windows: faults caught before (or
#: outside) per-class attribution, and user notification handlers.
_PSEUDO_PREFIX = "("


class Supervisor:
    """Per-runtime fault accounting, containment decisions and quarantine.

    Mutation is lock-protected (faults are rare; the lock is off the happy
    path), while the two hot-path reads — :attr:`tick` bookkeeping in
    :meth:`begin_dispatch` and :meth:`is_shed` — are plain attribute/set
    probes safe under the GIL.
    """

    def __init__(
        self,
        policy: Optional[FailurePolicy] = None,
        on_change: Optional[Callable[[], None]] = None,
        last_errors: int = 64,
    ) -> None:
        self.policy: FailurePolicy = policy or FailStopFaults()
        #: The logical clock: one tick per dispatched event.
        self.tick = 0
        self.contained = 0
        self.propagated = 0
        #: Contained faults that were injected (``InjectedFault``) — the
        #: chaos harness asserts injected == recorded through this.
        self.injected_recorded = 0
        #: Notification-handler faults contained at the hub boundary.
        self.handler_faults = 0
        #: automaton label -> faults attributed to it.
        self.fault_counts: Dict[str, int] = {}
        #: stage -> faults caught at that boundary.
        self.stage_counts: Dict[str, int] = {}
        #: Bounded ring of the most recent faults, oldest first.
        self.last_faults: Deque[MonitorFault] = deque(maxlen=last_errors)
        self._windows: Dict[str, Deque[int]] = {}
        self._records: Dict[str, QuarantineRecord] = {}
        #: Classes currently shed from dispatch (quarantined/permanent,
        #: plus any the overhead governor detached for cost).
        self._shed: set = set()
        #: The subset of ``_shed`` owned by the overhead governor (DESIGN
        #: §5.8) — shed for cost, not for faults.  Kept separate so
        #: quarantine's probation poll never un-sheds a class the
        #: governor still holds, and vice versa.
        self._governor_shed: set = set()
        #: Cheap guard for the per-dispatch probation poll.
        self._has_records = False
        self._listeners: List[Callable[[], None]] = []
        if on_change is not None:
            self._listeners.append(on_change)
        self._lock = threading.Lock()

    # -- wiring ---------------------------------------------------------------

    def add_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired whenever the shed set changes."""
        self._listeners.append(listener)

    def _fire_change(self) -> None:
        for listener in self._listeners:
            listener()

    # -- the tick clock --------------------------------------------------------

    def begin_dispatch(self) -> None:
        """One event is about to dispatch: advance the logical clock and,
        when quarantine records exist, poll for due probation re-arms."""
        self.tick += 1
        if self._has_records:
            self._poll()

    def advance(self, ticks: int) -> None:
        """Batched ingestion's clock bump: ``ticks`` events at once."""
        self.tick += ticks
        if self._has_records:
            self._poll()

    def _poll(self) -> None:
        changed = False
        with self._lock:
            now = self.tick
            for record in self._records.values():
                if (
                    record.state is QuarantineState.QUARANTINED
                    and now >= record.until_tick
                ):
                    policy = self.policy
                    if (
                        isinstance(policy, QuarantinePolicy)
                        and policy.probation
                    ):
                        record.state = QuarantineState.PROBATION
                        record.probation_until = now + policy.probation_ticks
                        if record.automaton not in self._governor_shed:
                            # The governor may still be shedding this
                            # class for cost; probation only lifts the
                            # quarantine's claim on it.
                            self._shed.discard(record.automaton)
                        changed = True
                    else:
                        record.state = QuarantineState.PERMANENT
                elif (
                    record.state is QuarantineState.PROBATION
                    and now >= record.probation_until
                ):
                    # A clean probation: back to full service (trip count
                    # is remembered, so the next trip still backs off).
                    record.state = QuarantineState.ARMED
        if changed:
            self._fire_change()

    # -- containment -----------------------------------------------------------

    def contain(
        self, automaton: Optional[str], stage: str, exc: BaseException
    ) -> bool:
        """Record one monitor fault and decide whether to swallow it.

        Returns True when the caller must contain (not re-raise) ``exc``.
        Quarantine bookkeeping only applies to real automaton classes —
        pseudo-labels like ``"(hook)"`` are counted but never shed.
        """
        label = automaton or "(monitor)"
        changed = False
        with self._lock:
            fault = MonitorFault(
                tick=self.tick,
                automaton=label,
                stage=stage,
                error_type=type(exc).__name__,
                error=str(exc),
                injected_site=(
                    exc.site if isinstance(exc, InjectedFault) else None
                ),
            )
            self.last_faults.append(fault)
            self.fault_counts[label] = self.fault_counts.get(label, 0) + 1
            self.stage_counts[stage] = self.stage_counts.get(stage, 0) + 1
            if fault.injected_site is not None:
                self.injected_recorded += 1
            try:
                decision = self.policy.contain(fault)
            except Exception:
                # A broken policy must not re-open the boundary it guards.
                decision = False
            if decision:
                self.contained += 1
            else:
                self.propagated += 1
            if (
                decision
                and stage != "handler"
                and not label.startswith(_PSEUDO_PREFIX)
                and isinstance(self.policy, QuarantinePolicy)
            ):
                changed = self._note_class_fault(label)
        if changed:
            self._fire_change()
        return decision

    def record_handler_fault(
        self, automaton: str, handler: object, exc: BaseException
    ) -> None:
        """The notification hub's boundary: a raising handler is always
        contained (the ``Handler`` contract says it must not raise)
        regardless of policy, so this records without consulting it."""
        label = f"(handler:{automaton})"
        with self._lock:
            self.handler_faults += 1
            self.contained += 1
            fault = MonitorFault(
                tick=self.tick,
                automaton=label,
                stage="handler",
                error_type=type(exc).__name__,
                error=str(exc),
                injected_site=(
                    exc.site if isinstance(exc, InjectedFault) else None
                ),
            )
            self.last_faults.append(fault)
            self.fault_counts[label] = self.fault_counts.get(label, 0) + 1
            self.stage_counts["handler"] = (
                self.stage_counts.get("handler", 0) + 1
            )
            if fault.injected_site is not None:
                self.injected_recorded += 1

    # -- quarantine ------------------------------------------------------------

    def _note_class_fault(self, name: str) -> bool:
        """Sliding-window accounting; returns True when the shed set
        changed.  Caller holds the lock."""
        policy = self.policy  # known QuarantinePolicy
        record = self._records.get(name)
        if record is not None and record.state in (
            QuarantineState.QUARANTINED,
            QuarantineState.PERMANENT,
        ):
            # Faults from an already-shed class (e.g. mid-flight events on
            # another shard) do not re-trip it.
            return False
        if record is not None and record.state is QuarantineState.PROBATION:
            # One strike on probation: immediate re-trip, longer cooldown.
            return self._trip(record)
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = deque()
        now = self.tick
        window.append(now)
        horizon = now - policy.window
        while window and window[0] <= horizon:
            window.popleft()
        if len(window) >= policy.threshold:
            window.clear()
            if record is None:
                record = self._records[name] = QuarantineRecord(name)
                self._has_records = True
            return self._trip(record)
        return False

    def _trip(self, record: QuarantineRecord) -> bool:
        """Quarantine one class; caller holds the lock."""
        policy = self.policy  # known QuarantinePolicy
        record.trips += 1
        if record.trips >= policy.max_trips or not policy.probation:
            record.state = QuarantineState.PERMANENT
        else:
            record.state = QuarantineState.QUARANTINED
            record.until_tick = self.tick + policy.cooldown_for(record.trips)
        self._shed.add(record.automaton)
        return True

    # -- governor shedding -------------------------------------------------------

    def governor_shed(self, name: str) -> None:
        """Detach one class for overhead (the governor's final rung,
        DESIGN §5.8).

        Rides the quarantine shed set and the same change hook, so
        dispatch plans, translator chains and the interest epoch all
        follow through ``_on_supervisor_change`` exactly as a quarantine
        trip would — shedding for cost and shedding for faults are one
        mechanism with two policies."""
        with self._lock:
            if name in self._governor_shed:
                return
            self._governor_shed.add(name)
            already = name in self._shed
            self._shed.add(name)
        if not already:
            self._fire_change()

    def governor_unshed(self, name: str) -> None:
        """Release the governor's claim on one class (probation restore
        or governor trip).  A class quarantine still holds stays shed."""
        with self._lock:
            if name not in self._governor_shed:
                return
            self._governor_shed.discard(name)
            record = self._records.get(name)
            if record is not None and record.state in (
                QuarantineState.QUARANTINED,
                QuarantineState.PERMANENT,
            ):
                return
            self._shed.discard(name)
        self._fire_change()

    @property
    def governor_shed_classes(self) -> frozenset:
        return frozenset(self._governor_shed)

    def is_shed(self, name: str) -> bool:
        """Whether this class is currently detached from dispatch."""
        return name in self._shed

    @property
    def shed_classes(self) -> frozenset:
        return frozenset(self._shed)

    @property
    def degraded(self) -> bool:
        """Whether the monitor is running with reduced coverage or has
        contained any fault at all."""
        return bool(self._shed) or self.contained > 0

    def quarantine_state(self, name: str) -> QuarantineState:
        record = self._records.get(name)
        return QuarantineState.ARMED if record is None else record.state

    def quarantine_rows(self) -> List[QuarantineRecord]:
        """Every class that ever tripped, for the health report."""
        with self._lock:
            return [
                QuarantineRecord(
                    automaton=r.automaton,
                    state=r.state,
                    trips=r.trips,
                    until_tick=r.until_tick,
                    probation_until=r.probation_until,
                )
                for r in self._records.values()
            ]

    @property
    def total_faults(self) -> int:
        return self.contained + self.propagated

    # -- maintenance -----------------------------------------------------------

    def reset(self) -> None:
        """Zero counters and lift every quarantine (between runs/tests)."""
        with self._lock:
            had_shed = bool(self._shed)
            self.tick = 0
            self.contained = 0
            self.propagated = 0
            self.injected_recorded = 0
            self.handler_faults = 0
            self.fault_counts.clear()
            self.stage_counts.clear()
            self.last_faults.clear()
            self._windows.clear()
            self._records.clear()
            self._shed.clear()
            self._governor_shed.clear()
            self._has_records = False
        if had_shed:
            self._fire_change()
