"""The drain side of the deferred event pipeline (DESIGN §5.4).

:class:`DrainController` owns one :class:`~repro.runtime.ringbuf.EventRing`
per application thread plus the machinery that turns captured events back
into verdicts: a *drain pass* collects every ring's published slots,
sorts the combined batch by global sequence number (recovering an
interleaving consistent with each thread's program order) and feeds it to
:meth:`~repro.runtime.manager.TeslaRuntime.dispatch_batch` — the same
shard-grouped ingestion the synchronous runtime uses, so sharding,
compiled plans, supervision and quarantine all compose unchanged.

Two drain modes:

* **background** (``deferred=True``): a daemon drainer thread
  (``tesla-drainer``) wakes on a short interval — or immediately when a
  producer's ring crosses half full — and drains continuously, keeping
  queue depths shallow while application threads never pay dispatch.
* **deterministic** (``deferred="manual"``): no thread; events drain only
  at explicit :meth:`drain`/:meth:`flush` calls and at synchronization
  points, so tests replay byte-identical schedules.

**Synchronization points.**  Evaluation may lag capture only where the
paper's semantics cannot observe the lag.  Events that can themselves
produce a verdict — assertion sites, ``NOW``-bound entry/exit, events
referenced by ``strict`` automata — plus introspection reads
(``health_report``/``coverage_report``/…) and runtime teardown must see a
fully evaluated store, so each forces :meth:`flush`: a rendezvous that
drains *every* thread's ring (not just the caller's) to empty before
proceeding.  A :class:`~repro.errors.TemporalAssertionError` raised while
draining on the application thread therefore surfaces exactly where the
synchronous runtime would have raised it; one raised on the background
drainer is parked and re-raised at the next synchronization point.

**Backpressure.**  A full ring never drops.  ``overflow_policy="flush"``
(default) turns the producer into the drainer for one pass — an inline
flush, paying the synchronous cost it had been deferring;
``overflow_policy="block"`` parks the producer until the background
drainer makes room (requiring ``deferred=True``).

**Fault containment.**  The drain boundary carries its own fault points
(``drain.enqueue``, ``drain.merge``, ``drain.flush``) and routes faults
through the runtime's :class:`~repro.runtime.supervisor.Supervisor` like
every other boundary: contained faults may lose the in-flight batch
(recorded in ``events_lost_to_faults``) but never reach application
frames and never wedge the pipeline; ``TemporalAssertionError`` is never
contained.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..errors import TemporalAssertionError
from . import faultinject as _fi
from .faultinject import fault_site
from .ringbuf import DEFAULT_RING_CAPACITY, EventRing, SeqnoSource, Slot

__all__ = ["DRAINER_THREAD_NAME", "DrainController", "OVERFLOW_POLICIES"]

_FP_ENQUEUE = fault_site("drain.enqueue")
_FP_MERGE = fault_site("drain.merge")
_FP_FLUSH = fault_site("drain.flush")
_FP_TIMER = fault_site("drain.timer")

#: Name every background drainer thread carries, so test hygiene can spot
#: a leaked one by inspecting ``threading.enumerate()``.
DRAINER_THREAD_NAME = "tesla-drainer"

OVERFLOW_POLICIES = ("flush", "block")


def _slot_seqno(slot: Slot) -> int:
    return slot[0]


class DrainController:
    """Per-runtime ring registry, drain passes and synchronization flushes."""

    def __init__(
        self,
        runtime,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        overflow_policy: str = "flush",
        background: bool = True,
        drain_interval: float = 0.002,
        journal=None,
    ) -> None:
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow_policy must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow_policy!r}"
            )
        if overflow_policy == "block" and not background:
            raise ValueError(
                "overflow_policy='block' needs the background drainer "
                "(deferred=True); deterministic mode would deadlock on a "
                "full ring — use overflow_policy='flush'"
            )
        self.runtime = runtime
        self.ring_capacity = ring_capacity
        self.overflow_policy = overflow_policy
        self.background = background
        self.drain_interval = drain_interval
        self._seqnos = SeqnoSource()
        self._local = threading.local()
        self._rings: List[EventRing] = []
        self._rings_lock = threading.Lock()
        #: Serialises drain passes: one merge-and-dispatch at a time, so
        #: the dispatched stream is a clean seqno-sorted concatenation.
        self._drain_lock = threading.RLock()
        #: Producers parked under ``overflow_policy="block"``.
        self._space = threading.Condition(threading.Lock())
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._thread_lock = threading.Lock()
        self._stop = False
        #: Errors raised on the drainer thread (fail-stop violations,
        #: uncontained monitor faults), parked for the next sync point.
        self._pending_errors: List[BaseException] = []
        #: Optional recorder: every drained (seqno, event) in dispatch
        #: order — the differential replay oracle's merged sequence.
        self.dispatch_log: Optional[List[Slot]] = None
        #: Optional durable sink (DESIGN §5.6): every drained slot is
        #: appended to the journal *before* the batch is evaluated, so the
        #: log always covers the event that produced a verdict.
        self.journal = journal
        self.journal_errors = 0
        # -- accounting (surfaced via repro.introspect.dispatch_stats) --
        self.events_enqueued = 0
        self.events_drained = 0
        self.events_discarded = 0
        self.events_lost_to_faults = 0
        self.drains = 0
        self.flushes = 0
        self.sync_flushes = 0
        self.inline_flushes = 0
        self.backpressure_waits = 0
        self.max_batch = 0
        self.flush_seconds = 0.0
        self.last_flush_seconds = 0.0

    # -- capture ---------------------------------------------------------------

    def record_sequence(self) -> List[Slot]:
        """Start recording the merged dispatch order; returns the log."""
        self.dispatch_log = []
        return self.dispatch_log

    def ring_for_current_thread(self) -> EventRing:
        ring = getattr(self._local, "ring", None)
        if ring is None:
            ring = EventRing(
                self.ring_capacity, threading.current_thread().name
            )
            self._local.ring = ring
            with self._rings_lock:
                self._rings.append(ring)
        return ring

    def enqueue(self, event) -> None:
        """The capture fast path: seqno stamp + slot write.

        No locks, no dispatch planning, no automaton work — the cost the
        instrumented thread pays is bounded by this method regardless of
        how many automata observe the event.
        """
        ring = getattr(self._local, "ring", None)
        if ring is None:
            ring = self.ring_for_current_thread()
        if self.background and self._thread is None:
            # Lazily (re)started: first capture after construction, or
            # after a stop()/reset() — an attribute probe per append.
            self._ensure_drainer()
        if _fi._active is not None:
            _fi.fault_point(_FP_ENQUEUE)
        if ring.head - ring.tail >= ring.capacity:
            self._overflow(ring)
        ring.append(self._seqnos.next(), event)
        self.events_enqueued += 1
        if self.background and (ring.head - ring.tail) * 2 >= ring.capacity:
            self._wake.set()

    def _overflow(self, ring: EventRing) -> None:
        """Backpressure on a full ring: block for the drainer or become
        the drainer for one pass.  Never drops."""
        ring.overflows += 1
        if self.overflow_policy == "block":
            thread = self._thread
            if thread is not None and thread.is_alive() and not self._stop:
                self.backpressure_waits += 1
                self._wake.set()
                with self._space:
                    while (
                        ring.full
                        and self._thread is not None
                        and self._thread.is_alive()
                        and not self._stop
                        # A parked error halts the drainer until the next
                        # sync point delivers it; waiting on it would
                        # livelock — fall through to the inline flush.
                        and not self._pending_errors
                    ):
                        self._space.wait(timeout=0.05)
                        self._wake.set()
                if not ring.full:
                    return
            # Drainer gone (stopped, or never started): fall through to an
            # inline flush rather than deadlocking the producer.
        self.inline_flushes += 1
        self._drain_pass()
        if ring.full:
            # Only reachable when a contained drain fault kept the pass
            # from consuming (chaos runs): shed the oldest slots rather
            # than overwrite unconsumed ones.  Recorded, never silent.
            self.events_lost_to_faults += ring.discard()

    # -- evaluation ------------------------------------------------------------

    def queue_depth(self) -> int:
        """Captured-but-unevaluated events across every thread's ring."""
        with self._rings_lock:
            return sum(len(ring) for ring in self._rings)

    def _drain_pass(self, park: bool = False) -> int:
        """One merge-and-dispatch round: collect every ring, sort by
        seqno, feed the shard dispatcher.  Returns slots consumed (the
        pass made progress) — 0 means every ring was empty.

        ``park=True`` is the background drainer calling: anything that
        would propagate (a fail-stop violation, an uncontained monitor
        fault) is parked *before the drain lock is released*, so a
        synchronization flush that serialises after this pass is
        guaranteed to see it — delivery can never slip past a sync point
        on a thread race.
        """
        with self._drain_lock:
            if not park:
                return self._drain_pass_body()
            try:
                return self._drain_pass_body()
            except BaseException as exc:  # noqa: BLE001 - parked, not lost
                self._pending_errors.append(exc)
                return 0

    def _drain_pass_body(self) -> int:
        """The pass itself; caller holds ``_drain_lock``."""
        gov = getattr(self.runtime, "governor", None)
        t0 = gov.now() if gov is not None else 0.0
        t1 = t0
        merged: List[Slot] = []
        with self._rings_lock:
            rings = list(self._rings)
        for ring in rings:
            ring.drain_into(merged)
        if not merged:
            return 0
        taken = len(merged)
        self.drains += 1
        try:
            if _fi._active is not None:
                _fi.fault_point(_FP_MERGE)
            merged.sort(key=_slot_seqno)
            if self.dispatch_log is not None:
                self.dispatch_log.extend(merged)
            if self.journal is not None:
                # Journal before dispatch: a fail-stop verdict mid-batch
                # still leaves every event up to (and past) the violation
                # on disk.  A journal fault is contained like any other
                # monitor fault — it costs durability, never verdicts.
                try:
                    self.journal.append_batch(merged)
                except Exception as exc:
                    self.journal_errors += 1
                    if not self._contain("journal", exc):
                        raise
            if gov is not None:
                t1 = gov.now()
            self.runtime.dispatch_batch(
                [slot[1] for slot in merged], include_local=False
            )
        except TemporalAssertionError:
            # The fail-stop violation policy speaking mid-batch: exactly
            # as synchronous dispatch, later events are not processed.
            # Never contained.
            self.events_drained += taken
            self._notify_space()
            raise
        except Exception as exc:
            # The batch was already consumed from the rings; a contained
            # fault here loses it (coverage, never correctness) but the
            # pipeline keeps moving.
            self.events_lost_to_faults += taken
            if not self._contain("drain", exc):
                self._notify_space()
                raise
        else:
            self.events_drained += taken
            if taken > self.max_batch:
                self.max_batch = taken
            if gov is not None:
                # Merge/sort/journal time is monitoring cost too: charge it
                # to the non-sheddable pseudo-label ``(drain)`` (events=0 —
                # dispatch already counted them) so the budget accounting
                # stays honest about pipeline overhead.  Fail-safe like
                # every governor touch: a fault trips the governor and is
                # contained; it never costs the batch its verdicts.
                try:
                    gov.charge("(drain)", t1 - t0, 0)
                except Exception as exc:
                    gov.trip()
                    if not self._contain("governor", exc):
                        self._notify_space()
                        raise
        self._notify_space()
        return taken

    def drain(self) -> int:
        """One explicit drain pass (deterministic mode's main loop step)."""
        return self._drain_pass()

    def flush(self, sync: bool = False) -> None:
        """Rendezvous: evaluate everything captured so far, in every ring.

        Called at synchronization points (``sync=True``), introspection
        reads and teardown.  Re-raises errors parked by the background
        drainer first — delivery is never staler than the next sync point.
        """
        self._raise_pending()
        started = time.perf_counter()
        if _fi._active is not None:
            try:
                _fi.fault_point(_FP_FLUSH)
            except Exception as exc:
                # A contained flush fault abandons this rendezvous; the
                # rings keep their events for the next one.
                if not self._contain("flush", exc):
                    raise
                return
        while self._drain_pass() > 0:
            pass
        # The final (empty) pass serialised behind any in-flight drainer
        # pass, and the drainer parks errors before releasing the drain
        # lock — so an error from a concurrent pass is visible here.
        self._raise_pending()
        # Sync-point timer check (DESIGN §5.9): every captured event has
        # now been evaluated, so any deadline still pending with no
        # successor event is overdue — this is where it surfaces.  A
        # faulting timer path is contained like any other drain-stage
        # fault: the class degrades to ordinal semantics (the obligation
        # still reports at cleanup), never to a dropped verdict.
        # getattr, not attribute access: the controller is duck-typed
        # over anything with handle_event/dispatch_batch (property-test
        # stubs included), and only the real runtime keeps timers.
        check_timers = getattr(self.runtime, "check_timers", None)
        if check_timers is not None:
            try:
                if _fi._active is not None:
                    _fi.fault_point(_FP_TIMER)
                check_timers()
            except TemporalAssertionError:
                raise
            except Exception as exc:
                if not self._contain("timer", exc):
                    raise
        elapsed = time.perf_counter() - started
        self.flushes += 1
        if sync:
            self.sync_flushes += 1
        self.flush_seconds += elapsed
        self.last_flush_seconds = elapsed

    def _raise_pending(self) -> None:
        if self._pending_errors:
            raise self._pending_errors.pop(0)

    def _contain(self, stage: str, exc: BaseException) -> bool:
        supervisor = getattr(self.runtime, "supervisor", None)
        if supervisor is None:
            return False
        return supervisor.contain("(drain)", stage, exc)

    def _notify_space(self) -> None:
        if self.overflow_policy == "block":
            with self._space:
                self._space.notify_all()

    # -- the background drainer --------------------------------------------------

    def _ensure_drainer(self) -> None:
        with self._thread_lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop = False
            self._thread = threading.Thread(
                target=self._drainer_loop,
                name=DRAINER_THREAD_NAME,
                daemon=True,
            )
            self._thread.start()

    def _drainer_loop(self) -> None:
        while not self._stop:
            self._wake.wait(self.drain_interval)
            self._wake.clear()
            if self._stop:
                break
            if self._pending_errors:
                # A fail-stop violation (or uncontained monitor fault) is
                # awaiting delivery on an application thread; stop making
                # progress past it, like synchronous dispatch would have.
                continue
            self._drain_pass(park=True)

    @property
    def drainer_alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stop(self) -> None:
        """Stop the background drainer (pending events stay in the rings)."""
        with self._thread_lock:
            thread = self._thread
            self._stop = True
            self._wake.set()
        if thread is not None:
            thread.join(timeout=5.0)
        with self._thread_lock:
            self._thread = None
        self._notify_space()

    # -- maintenance -------------------------------------------------------------

    def discard_pending(self) -> int:
        """Throw away captured-but-unevaluated events and parked errors
        (teardown after an application failure, runtime reset)."""
        with self._drain_lock:
            dropped = 0
            with self._rings_lock:
                rings = list(self._rings)
            for ring in rings:
                dropped += ring.discard()
            self.events_discarded += dropped
            self._pending_errors.clear()
        self._notify_space()
        return dropped

    def reset(self) -> None:
        """Stop the drainer, drop pending events, zero the accounting.

        The ring registry and thread-locals survive — a thread that kept a
        reference to its ring keeps appending into the same (now empty)
        ring, so nothing captured after the reset can be stranded.
        """
        self.stop()
        self.discard_pending()
        for ring in self._rings:
            ring.appended = 0
            ring.overflows = 0
            ring.max_depth = 0
        self.dispatch_log = None
        self.journal_errors = 0
        self.events_enqueued = 0
        self.events_drained = 0
        self.events_discarded = 0
        self.events_lost_to_faults = 0
        self.drains = 0
        self.flushes = 0
        self.sync_flushes = 0
        self.inline_flushes = 0
        self.backpressure_waits = 0
        self.max_batch = 0
        self.flush_seconds = 0.0
        self.last_flush_seconds = 0.0

    def stats(self) -> dict:
        with self._rings_lock:
            ring_rows = [ring.stats() for ring in self._rings]
        journal = None
        if self.journal is not None:
            journal = dict(self.journal.stats())
            journal["errors"] = self.journal_errors
        return {
            "journal": journal,
            "background": self.background,
            "overflow_policy": self.overflow_policy,
            "drainer_alive": self.drainer_alive,
            "queue_depth": sum(row["depth"] for row in ring_rows),
            "rings": ring_rows,
            "events_enqueued": self.events_enqueued,
            "events_drained": self.events_drained,
            "events_discarded": self.events_discarded,
            "events_lost_to_faults": self.events_lost_to_faults,
            "drains": self.drains,
            "flushes": self.flushes,
            "sync_flushes": self.sync_flushes,
            "inline_flushes": self.inline_flushes,
            "backpressure_waits": self.backpressure_waits,
            "max_batch": self.max_batch,
            "flush_seconds": self.flush_seconds,
            "last_flush_seconds": self.last_flush_seconds,
        }
