"""Automata stores: global and thread-local (sections 3.2, 4.4).

libtesla "can store automata state in either a global or a thread-local
store, as specified by the programmer".  Thread-local stores need no
locking — event serialisation is implicit within a thread.  The global
store provides explicit, lock-based serialisation whose cost figure 12
measures: an event "cannot complete until its instrumentation hook has
finished running", which commits the automaton to an event order consistent
with actual behaviour.

The paper's libtesla serialises the whole global store behind one lock —
the scalability cliff of figure 12.  :class:`ShardedGlobalStore` is this
reproduction's answer: automata classes are hashed (stably, by name) onto
N shards, each owning its own lock, class map and bound-tracker epoch
state, so events for unrelated assertions never contend.  ``shards=1``
degenerates to the paper's single-lock semantics exactly.
"""

from __future__ import annotations

import os
import threading
import zlib
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.automaton import Automaton, Transition
from ..core.events import EventKind
from ..errors import ContextError
from . import faultinject as _fi
from .faultinject import fault_site
from .instance import AutomatonInstance
from .plans import TransitionPlan, build_transition_plan
from .prealloc import DEFAULT_CAPACITY, InstancePool

_FP_PLAN_FOR = fault_site("store.plan_for")

#: An event's routing identity: (event kind, dispatch name).
DispatchKey = Tuple[EventKind, str]
#: A temporal bound's identity: (init dispatch key, cleanup dispatch key).
BoundId = Tuple[DispatchKey, DispatchKey]


class BoundTracker:
    """Per-context record of open temporal bounds (lazy mode, §5.2.2)."""

    __slots__ = ("open", "epoch", "touched", "entry_ts")

    def __init__(self) -> None:
        self.open: Dict[BoundId, bool] = {}
        self.epoch: Dict[BoundId, int] = {}
        self.touched: Dict[BoundId, Set[str]] = {}
        #: Capture timestamp of the event that opened each bound — the
        #: reference point lazily-joined timed instances measure deadlines
        #: and ``since_entry`` guards from (DESIGN §5.9).
        self.entry_ts: Dict[BoundId, float] = {}

    def begin(self, bound: BoundId, ts: float = 0.0) -> None:
        if self.open.get(bound):
            return  # re-entrant bound: ignore until cleanup
        self.open[bound] = True
        self.epoch[bound] = self.epoch.get(bound, 0) + 1
        self.touched[bound] = set()
        self.entry_ts[bound] = ts

    def end(self, bound: BoundId) -> Set[str]:
        if not self.open.get(bound):
            return set()
        self.open[bound] = False
        return self.touched.pop(bound, set())


class ClassRuntime:
    """Per-store state for one automaton class.

    ``active`` tracks whether the temporal bound is currently open;
    ``pending`` is the lazy-initialisation flag (section 5.2.2): the bound
    is open but the wildcard instance has not been materialised because no
    relevant event has arrived yet.
    """

    __slots__ = (
        "automaton",
        "pool",
        "active",
        "pending",
        "seen_epoch",
        "lazy_binding",
        "lazy_entry_ts",
        "overflow_mark",
        "overflow_reported",
        "sample_rate",
        "transition_counts",
        "errors",
        "accepts",
        "sites_reached",
        "_plans",
        "_plan_epoch",
        "plan_hits",
        "plan_misses",
        "plan_invalidations",
        "_gen",
        "_gen_epoch",
        "gen_hits",
        "gen_misses",
        "gen_fallback_plans",
        "gen_fallback_hits",
        "gen_invalidations",
        "gen_elided_guards",
        "gen_elided_transitions",
        "gen_seconds",
    )

    def __init__(self, automaton: Automaton, capacity: int = DEFAULT_CAPACITY) -> None:
        self.automaton = automaton
        self.pool = InstancePool(capacity)
        self.active = False
        self.pending = False
        #: Last bound epoch this class joined (lazy mode, section 5.2.2).
        self.seen_epoch = -1
        #: Binding captured from the bound's entry event (eager mode).
        self.lazy_binding: Dict[str, object] = {}
        #: Capture timestamp of the bound's entry event, threaded to
        #: instances materialised later (pending/lazy joins) so timed
        #: guards measure from when the bound actually opened.
        self.lazy_entry_ts = 0.0
        #: Pool overflow count when the current bound opened; a site miss
        #: after further overflows is suppressed (the dropped instance may
        #: have been the one that would have matched).
        self.overflow_mark = 0
        #: Whether the current bound already emitted its (single) OVERFLOW
        #: notification — a saturated pool reports once per bound, with
        #: exact drop counts kept in ``pool.stats()``.
        self.overflow_reported = False
        #: The overhead governor's honesty annotation (DESIGN §5.8): the
        #: 1-in-N instantiation rate in force when the current bound was
        #: admitted.  1 = unsampled; violations carry this value so a
        #: sampled finding can never report as full coverage.
        self.sample_rate = 1
        #: Transition → times taken; drives figure 9's weighted graphs.
        self.transition_counts: Dict[Transition, int] = {}
        self.errors = 0
        self.accepts = 0
        self.sites_reached = 0
        #: Compiled transition plans, keyed by dispatch key; valid only
        #: while ``_plan_epoch`` matches the global interest epoch.
        self._plans: Dict[DispatchKey, TransitionPlan] = {}
        self._plan_epoch = -1
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_invalidations = 0
        #: tesla-jit generated step functions (DESIGN §5.7), keyed like
        #: plans; an entry is a ``CompiledStep`` or a ``GenerationFallback``
        #: (the "can't specialize" decision is cached too, so the compiled
        #: interpreter fallback costs one dict probe, not a regeneration).
        self._gen: Dict[DispatchKey, object] = {}
        self._gen_epoch = -1
        self.gen_hits = 0
        self.gen_misses = 0
        self.gen_fallback_plans = 0
        self.gen_fallback_hits = 0
        self.gen_invalidations = 0
        self.gen_elided_guards = 0
        self.gen_elided_transitions = 0
        self.gen_seconds = 0.0

    def count_transition(self, transition: Transition) -> None:
        self.transition_counts[transition] = (
            self.transition_counts.get(transition, 0) + 1
        )

    def plan_for(self, key: DispatchKey, epoch: int) -> TransitionPlan:
        """The compiled plan for ``key``, rebuilt lazily on epoch change.

        ``epoch`` is the caller's snapshot of the global interest epoch
        (read once per event, outside any per-class loop).  The caller
        must hold whatever lock serialises this class — the cache is
        per-class state like the pool.
        """
        if _fi._active is not None:
            _fi.fault_point(_FP_PLAN_FOR)
        if self._plan_epoch != epoch:
            if self._plans:
                self.plan_invalidations += 1
                self._plans.clear()
            self._plan_epoch = epoch
        plan = self._plans.get(key)
        if plan is None:
            self.plan_misses += 1
            plan = build_transition_plan(self.automaton, key)
            self._plans[key] = plan
        else:
            self.plan_hits += 1
        return plan

    def step_for(self, key: DispatchKey, epoch: int, facts):
        """The tesla-jit generated step for ``key``, or ``None`` when the
        generator declined this plan (the caller then runs the compiled
        interpreter via :meth:`plan_for`).

        Same caching discipline as :meth:`plan_for`: valid while
        ``_gen_epoch`` matches the caller's interest-epoch snapshot, and
        the caller must hold whatever lock serialises this class.
        ``facts`` is the runtime's :class:`~repro.runtime.codegen.
        CodegenFacts` snapshot — it only changes on installs, which bump
        the epoch, so facts-staleness rides the same invalidation.
        """
        if self._gen_epoch != epoch:
            if self._gen:
                self.gen_invalidations += 1
                self._gen.clear()
            self._gen_epoch = epoch
        entry = self._gen.get(key)
        if entry is None:
            from time import perf_counter

            from .codegen import compile_plan_step

            self.gen_misses += 1
            plan = self.plan_for(key, epoch)
            start = perf_counter()
            entry = compile_plan_step(self.automaton, plan, facts)
            self.gen_seconds += perf_counter() - start
            self._gen[key] = entry
            if entry.step is None:
                self.gen_fallback_plans += 1
                return None
            self.gen_elided_guards += entry.elided_guards
            self.gen_elided_transitions += entry.elided_transitions
            return entry
        if entry.step is None:
            self.gen_fallback_hits += 1
            return None
        self.gen_hits += 1
        return entry

    def gen_summary(self) -> Dict[str, object]:
        """Per-key generated/fallback split for the codegen report."""
        generated = []
        fallback = []
        for key, entry in self._gen.items():
            label = f"{key[0].value}:{key[1]}"
            if entry.step is None:
                fallback.append((label, entry.reason))
            else:
                generated.append(label)
        return {
            "generated_keys": sorted(generated),
            "fallback_keys": sorted(fallback),
        }

    @property
    def plan_cache_size(self) -> int:
        return len(self._plans)

    @property
    def gen_cache_size(self) -> int:
        return len(self._gen)

    def reset(self) -> None:
        self.pool.expunge()
        self.active = False
        self.pending = False
        self.seen_epoch = -1
        self.lazy_binding = {}
        self.lazy_entry_ts = 0.0
        self.overflow_mark = 0
        self.overflow_reported = False
        self.sample_rate = 1
        # Plans and generated steps survive a reset (the automaton is
        # unchanged); only the effectiveness counters restart.
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_invalidations = 0
        self.gen_hits = 0
        self.gen_misses = 0
        self.gen_fallback_hits = 0
        self.gen_invalidations = 0
        # gen_fallback_plans / gen_elided_* / gen_seconds describe the
        # cache's *contents* (which survive the reset), not traffic.


class Store:
    """One store context: a set of automata classes and their instances."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._classes: Dict[str, ClassRuntime] = {}

    def install(self, automaton: Automaton) -> ClassRuntime:
        if automaton.name in self._classes:
            existing = self._classes[automaton.name]
            if existing.automaton is not automaton:
                raise ContextError(
                    f"automaton {automaton.name!r} already installed with a "
                    f"different definition"
                )
            return existing
        runtime = ClassRuntime(automaton, self.capacity)
        self._classes[automaton.name] = runtime
        return runtime

    def get(self, name: str) -> Optional[ClassRuntime]:
        return self._classes.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[ClassRuntime]:
        return iter(self._classes.values())

    @property
    def names(self) -> List[str]:
        return sorted(self._classes)

    def reset(self) -> None:
        for runtime in self._classes.values():
            runtime.reset()


class PerThreadStores:
    """A :class:`Store` per thread, created on first use.

    Keeps a registry of every thread's store so introspection (coverage,
    weighted graphs) can merge counters after multi-threaded runs.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._local = threading.local()
        self._all: List[Store] = []
        self._all_lock = threading.Lock()
        self._automata: List[Automaton] = []

    def register(self, automaton: Automaton) -> None:
        """Remember an automaton so stores created later include it."""
        self._automata.append(automaton)
        with self._all_lock:
            for store in self._all:
                store.install(automaton)

    def current(self) -> Store:
        store = getattr(self._local, "store", None)
        if store is None:
            store = Store(self.capacity)
            for automaton in self._automata:
                store.install(automaton)
            self._local.store = store
            with self._all_lock:
                self._all.append(store)
        return store

    def all_stores(self) -> List[Store]:
        with self._all_lock:
            return list(self._all)

    def reset(self) -> None:
        with self._all_lock:
            for store in self._all:
                store.reset()


class GlobalStore:
    """The single cross-thread store, serialised by a lock (figure 12).

    Retained as the paper-faithful baseline; the runtime proper now uses
    :class:`ShardedGlobalStore` (with ``shards=1`` reproducing this
    behaviour bit-for-bit).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.store = Store(capacity)
        self.lock = threading.RLock()

    def register(self, automaton: Automaton) -> None:
        with self.lock:
            self.store.install(automaton)

    def reset(self) -> None:
        with self.lock:
            self.store.reset()


# ---------------------------------------------------------------------------
# Lock-striped sharding
# ---------------------------------------------------------------------------


def default_shard_count() -> int:
    """``min(32, 4 × cpu_count)`` — enough stripes that unrelated
    assertion classes rarely collide, without unbounded lock tables."""
    return min(32, 4 * (os.cpu_count() or 1))


def shard_index_for(name: str, shards: int) -> int:
    """Stable shard assignment for an automaton class name.

    Uses CRC-32 rather than :func:`hash` so the mapping survives
    ``PYTHONHASHSEED`` randomisation: the same class lands on the same
    shard in every process, which keeps committed benchmark results and
    cross-run introspection comparable.
    """
    return zlib.crc32(name.encode("utf-8")) % shards


class ShardLock:
    """A re-entrant lock that counts acquisitions and contended waits.

    The counters are updated while the lock is held, so they are exact;
    they feed the per-shard contention rows surfaced through
    :func:`repro.introspect.aggregate.shard_contention`.
    """

    __slots__ = ("_lock", "acquisitions", "contended")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.acquisitions = 0
        self.contended = 0

    def __enter__(self) -> "ShardLock":
        contended = not self._lock.acquire(blocking=False)
        if contended:
            self._lock.acquire()
        self.acquisitions += 1
        if contended:
            self.contended += 1
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()

    def reset_counters(self) -> None:
        self.acquisitions = 0
        self.contended = 0


class GlobalShard:
    """One stripe of the global store: a lock, a class map and the
    bound-tracker epoch state for the classes hashed onto it."""

    __slots__ = ("index", "store", "lock", "tracker", "batches")

    def __init__(self, index: int, capacity: int = DEFAULT_CAPACITY) -> None:
        self.index = index
        self.store = Store(capacity)
        self.lock = ShardLock()
        self.tracker = BoundTracker()
        #: Batched-ingestion invocations that touched this shard.
        self.batches = 0


class _ShardedStoreView:
    """Read-only merged view over every shard's class map.

    Keeps ``runtime.global_store.store`` working for callers written
    against the single-store :class:`GlobalStore` API.
    """

    __slots__ = ("_sharded",)

    def __init__(self, sharded: "ShardedGlobalStore") -> None:
        self._sharded = sharded

    def get(self, name: str) -> Optional[ClassRuntime]:
        return self._sharded.get(name)

    def __contains__(self, name: str) -> bool:
        return self._sharded.get(name) is not None

    def __iter__(self) -> Iterator[ClassRuntime]:
        for shard in self._sharded.shards:
            yield from shard.store

    @property
    def names(self) -> List[str]:
        out: List[str] = []
        for shard in self._sharded.shards:
            out.extend(shard.store.names)
        return sorted(out)


class ShardedGlobalStore:
    """The cross-thread store, lock-striped across N shards.

    Each automaton class name hashes (stably) to exactly one shard; that
    shard's lock serialises every event the class observes, preserving the
    paper's per-class event-ordering guarantee while letting events for
    classes on different shards proceed without contention.  Temporal
    bounds shared by classes on several shards are tracked independently
    per shard — epochs are per-shard counters, and a class only ever
    consults its own shard's tracker, so no cross-shard lock ordering
    exists (and therefore no deadlock is possible).
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, shards: Optional[int] = None
    ) -> None:
        count = default_shard_count() if shards is None else shards
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        self.capacity = capacity
        self.shard_count = count
        self.shards: List[GlobalShard] = [
            GlobalShard(i, capacity) for i in range(count)
        ]

    def shard_index(self, name: str) -> int:
        return shard_index_for(name, self.shard_count)

    def shard_for(self, name: str) -> GlobalShard:
        return self.shards[shard_index_for(name, self.shard_count)]

    def register(self, automaton: Automaton) -> ClassRuntime:
        shard = self.shard_for(automaton.name)
        with shard.lock:
            return shard.store.install(automaton)

    def get(self, name: str) -> Optional[ClassRuntime]:
        return self.shard_for(name).store.get(name)

    def all_stores(self) -> List[Store]:
        return [shard.store for shard in self.shards]

    @property
    def store(self) -> _ShardedStoreView:
        """Single-store compatibility view (:class:`GlobalStore` API)."""
        return _ShardedStoreView(self)

    def reset(self) -> None:
        for shard in self.shards:
            with shard.lock:
                shard.store.reset()
                shard.tracker = BoundTracker()
                shard.batches = 0
            shard.lock.reset_counters()

    def contention_stats(self) -> List[Dict[str, object]]:
        """One row per shard: lock traffic and resident classes."""
        rows = []
        for shard in self.shards:
            rows.append(
                {
                    "shard": shard.index,
                    "classes": tuple(shard.store.names),
                    "acquisitions": shard.lock.acquisitions,
                    "contended": shard.lock.contended,
                    "batches": shard.batches,
                }
            )
        return rows
