"""Automata stores: global and thread-local (sections 3.2, 4.4).

libtesla "can store automata state in either a global or a thread-local
store, as specified by the programmer".  Thread-local stores need no
locking — event serialisation is implicit within a thread.  The global
store provides explicit, lock-based serialisation whose cost figure 12
measures: an event "cannot complete until its instrumentation hook has
finished running", which commits the automaton to an event order consistent
with actual behaviour.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from ..core.automaton import Automaton, Transition
from ..errors import ContextError
from .instance import AutomatonInstance
from .prealloc import DEFAULT_CAPACITY, InstancePool


class ClassRuntime:
    """Per-store state for one automaton class.

    ``active`` tracks whether the temporal bound is currently open;
    ``pending`` is the lazy-initialisation flag (section 5.2.2): the bound
    is open but the wildcard instance has not been materialised because no
    relevant event has arrived yet.
    """

    __slots__ = (
        "automaton",
        "pool",
        "active",
        "pending",
        "seen_epoch",
        "lazy_binding",
        "overflow_mark",
        "transition_counts",
        "errors",
        "accepts",
        "sites_reached",
    )

    def __init__(self, automaton: Automaton, capacity: int = DEFAULT_CAPACITY) -> None:
        self.automaton = automaton
        self.pool = InstancePool(capacity)
        self.active = False
        self.pending = False
        #: Last bound epoch this class joined (lazy mode, section 5.2.2).
        self.seen_epoch = -1
        #: Binding captured from the bound's entry event (eager mode).
        self.lazy_binding: Dict[str, object] = {}
        #: Pool overflow count when the current bound opened; a site miss
        #: after further overflows is suppressed (the dropped instance may
        #: have been the one that would have matched).
        self.overflow_mark = 0
        #: Transition → times taken; drives figure 9's weighted graphs.
        self.transition_counts: Dict[Transition, int] = {}
        self.errors = 0
        self.accepts = 0
        self.sites_reached = 0

    def count_transition(self, transition: Transition) -> None:
        self.transition_counts[transition] = (
            self.transition_counts.get(transition, 0) + 1
        )

    def reset(self) -> None:
        self.pool.expunge()
        self.active = False
        self.pending = False
        self.seen_epoch = -1
        self.lazy_binding = {}
        self.overflow_mark = 0


class Store:
    """One store context: a set of automata classes and their instances."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._classes: Dict[str, ClassRuntime] = {}

    def install(self, automaton: Automaton) -> ClassRuntime:
        if automaton.name in self._classes:
            existing = self._classes[automaton.name]
            if existing.automaton is not automaton:
                raise ContextError(
                    f"automaton {automaton.name!r} already installed with a "
                    f"different definition"
                )
            return existing
        runtime = ClassRuntime(automaton, self.capacity)
        self._classes[automaton.name] = runtime
        return runtime

    def get(self, name: str) -> Optional[ClassRuntime]:
        return self._classes.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[ClassRuntime]:
        return iter(self._classes.values())

    @property
    def names(self) -> List[str]:
        return sorted(self._classes)

    def reset(self) -> None:
        for runtime in self._classes.values():
            runtime.reset()


class PerThreadStores:
    """A :class:`Store` per thread, created on first use.

    Keeps a registry of every thread's store so introspection (coverage,
    weighted graphs) can merge counters after multi-threaded runs.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._local = threading.local()
        self._all: List[Store] = []
        self._all_lock = threading.Lock()
        self._automata: List[Automaton] = []

    def register(self, automaton: Automaton) -> None:
        """Remember an automaton so stores created later include it."""
        self._automata.append(automaton)
        with self._all_lock:
            for store in self._all:
                store.install(automaton)

    def current(self) -> Store:
        store = getattr(self._local, "store", None)
        if store is None:
            store = Store(self.capacity)
            for automaton in self._automata:
                store.install(automaton)
            self._local.store = store
            with self._all_lock:
                self._all.append(store)
        return store

    def all_stores(self) -> List[Store]:
        with self._all_lock:
            return list(self._all)

    def reset(self) -> None:
        with self._all_lock:
            for store in self._all:
                store.reset()


class GlobalStore:
    """The single cross-thread store, serialised by a lock (figure 12)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.store = Store(capacity)
        self.lock = threading.RLock()

    def register(self, automaton: Automaton) -> None:
        with self.lock:
            self.store.install(automaton)

    def reset(self) -> None:
        with self.lock:
            self.store.reset()
