"""tesla-jit: compile :class:`TransitionPlan` objects to generated Python.

The compiled fast path (DESIGN §5.2) still *interprets* a chain of
closures per event: ``plan.enabled`` probes each body triple, each triple
calls a compiled matcher closure, and every match result is re-examined
by ``tesla_update_state``.  This module goes one step further and emits
specialized Python *source* per (automaton, dispatch-key) plan — matcher
checks, bind extraction and transition application fused into a single
``exec``-compiled function with no per-step closure dispatch:

* event-static work (arity checks, ``Const``/``Flags``/``Bitmask``/
  ``AddressOf`` filters, ``Var`` value extraction) is hoisted out of the
  instance loop and evaluated once per event;
* the per-instance loop is unrolled over the plan's body triples, with
  the dominant single-match/no-new-binding case stepped inline
  (``frozenset`` state update + transition counting, no function calls);
* multi-match and clone-producing cases delegate to
  :func:`_instance_slow_step`, which reuses the interpreter's own
  ``_step``/dedupe/clone machinery so verdicts stay bit-identical;
* a batch variant ``step_batch(cr, events, hub)`` evaluates an entire
  drain sub-batch for one key in one call, amortizing the per-event
  dispatch overhead the deferred pipeline (DESIGN §5.4) pays 100k+ times
  a second.

Lint facts (DESIGN §5.5) feed the generator: under a lint-clean report,
arity guards re-proven by ``arity_safe`` are simply never emitted, and
transitions whose source state can never be occupied (outside the
forward closure of the entry states over EVENT/SITE transitions) are
dropped from the generated code entirely — guard elision extended from
"skip a check" to "the check never exists".

The generator is deliberately *loud* about its limits: any plan it
cannot specialize (an unknown :class:`Pattern` subclass, an exotic
event expression) yields a :class:`GenerationFallback` carrying the
reason, the caller falls back to the compiled interpreter, and the
fallback is counted in ``dispatch_stats``.  A generated function also
bails out to the interpreter at call time whenever fault injection is
armed or the notification hub is in detailed mode — both paths need the
interpreter's exact checkpoint/notification sequence, which the lean
generated code deliberately omits (it emits only the always-on ERROR
and OVERFLOW notifications).

Determinism contract: for one (automaton, key, facts) triple the
generated source is byte-identical across runs and processes — all
runtime values (transitions, pattern constants, variable names) are
injected through the ``exec`` namespace as numbered constants, never
``repr``-ed into the source, and generation never iterates an unordered
collection.  ``tests/property/test_codegen_props.py`` pins this with
Hypothesis and ``tests/fixtures/golden_codegen.txt`` byte-pins one
representative function (bump :data:`CODEGEN_VERSION` on any layout
change, mirroring the journal's ``golden.tjournal`` protocol).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..core.ast import (
    AssertionSite,
    FieldAssign,
    FunctionCall,
    FunctionReturn,
)
from ..core.automaton import Automaton, Transition, TransitionKind
from ..core.events import EventKind
from ..core.patterns import (
    EMPTY_BINDING,
    UNBOUND,
    AddressOf,
    Any_,
    Bitmask,
    Const,
    Flags,
    Pattern,
    Ref,
    Var,
)
from ..errors import TemporalViolation
from . import faultinject as _fi
from .notify import Notification, NotificationKind
from .plans import PlanKey, TransitionPlan
from .update import (
    _already_satisfied as _upd_already_satisfied,
    _materialise,
    _same_binding,
    _step,
    tesla_update_state,
)

#: Bump on any change to the generated source layout (see the golden
#: fixture's upgrade protocol in ``tests/unit/runtime/test_codegen.py``).
CODEGEN_VERSION = 1

#: Sentinel for "this symbol did not match" in generated code.  Distinct
#: from ``None`` so generated locals can never be confused with a
#: matcher's ``NO_MATCH`` contract leaking out of the function.
_NO = object()


class CodegenFacts:
    """The lint-derived facts the generator may rely on.

    ``clean`` is the gate: elisions are only sound when the installed
    batches linted without errors *or warnings* (the same bar the event
    translator uses for its dynamic-guard elision).  ``arity_safe`` holds
    ``(function-name, arity)`` pairs statically proven against the hook
    registry by TESLA010's analysis.

    ``occupancy`` carries tesla-prove's per-automaton occupiable-state
    sets (DESIGN §5.10): the union of states over every configuration its
    subset-stepping fixpoint explored.  Unlike the lint facts it needs no
    ``clean`` gate — the fixpoint itself is the proof that a state outside
    the set is never occupied, whatever else lint had to say — so a prove
    report *widens* dead-transition elision to batches lint left dirty.
    """

    __slots__ = ("clean", "arity_safe", "occupancy")

    NONE: "CodegenFacts"

    def __init__(
        self,
        clean: bool = False,
        arity_safe: FrozenSet[Tuple[str, int]] = frozenset(),
        occupancy: object = (),
    ) -> None:
        self.clean = clean
        self.arity_safe = frozenset(arity_safe)
        #: automaton name -> frozenset of prove-occupiable states.
        self.occupancy: Dict[str, FrozenSet[int]] = dict(occupancy)

    @classmethod
    def from_report(cls, report, prove=None) -> "CodegenFacts":
        """Facts from a :class:`~repro.analysis.diagnostics.LintReport`
        and optionally a :class:`~repro.analysis.prove.ProveReport`
        (``None``: no report means no facts, never an error)."""
        if report is None and prove is None:
            return cls.NONE
        return cls(
            clean=bool(report.clean) if report is not None else False,
            arity_safe=(
                frozenset(getattr(report, "arity_safe", ()))
                if report is not None
                else frozenset()
            ),
            occupancy=(
                prove.occupiable_states() if prove is not None else ()
            ),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CodegenFacts)
            and self.clean == other.clean
            and self.arity_safe == other.arity_safe
            and self.occupancy == other.occupancy
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.clean,
                self.arity_safe,
                frozenset(self.occupancy.items()),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"<CodegenFacts clean={self.clean} "
            f"arity_safe={len(self.arity_safe)} "
            f"occupancy={len(self.occupancy)}>"
        )


CodegenFacts.NONE = CodegenFacts()


class GenerationFallback:
    """Why a plan could not be specialized (stored in the step cache so
    the decision is made once per key, not per event).

    ``step``/``step_batch`` are ``None`` class attributes so cache
    consumers discriminate with one attribute load, no isinstance.
    """

    __slots__ = ("reason",)

    step = None
    step_batch = None

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<GenerationFallback {self.reason!r}>"


class GeneratedSource:
    """The outcome of source generation for one plan."""

    __slots__ = (
        "source",
        "fallback_reason",
        "elided_guards",
        "elided_transitions",
        "namespace",
    )

    def __init__(
        self,
        source: str = "",
        fallback_reason: Optional[str] = None,
        elided_guards: int = 0,
        elided_transitions: int = 0,
        namespace: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.source = source
        self.fallback_reason = fallback_reason
        self.elided_guards = elided_guards
        self.elided_transitions = elided_transitions
        self.namespace = namespace


class CompiledStep:
    """An ``exec``-compiled plan: the fused per-event function and its
    batch variant, plus the generation accounting."""

    __slots__ = (
        "step",
        "step_batch",
        "source",
        "elided_guards",
        "elided_transitions",
    )

    def __init__(
        self,
        step,
        step_batch,
        source: str,
        elided_guards: int,
        elided_transitions: int,
    ) -> None:
        self.step = step
        self.step_batch = step_batch
        self.source = source
        self.elided_guards = elided_guards
        self.elided_transitions = elided_transitions


# ---------------------------------------------------------------------------
# Shared slow-path helpers (injected into every generated namespace)
# ---------------------------------------------------------------------------


def _instance_slow_step(cr, instance, matched_pairs, hub, event, clones, enabled):
    """The multi-match / clone-producing tail of the instance walk.

    Byte-for-byte the same algorithm as the general branch of
    ``tesla_update_state`` (split by new bindings, dedupe extensions,
    clone, re-step the clone), reusing the interpreter's ``_step`` so
    transition counting and site accounting stay identical.  Returns
    ``(any_progress, site_taken)`` for this instance.
    """
    progress = False
    site = False
    empty: List[Transition] = []
    extensions: List[Dict[str, Any]] = []
    for transition, new in matched_pairs:
        if new:
            if not any(_same_binding(new, seen) for seen in extensions):
                extensions.append(new)
        else:
            empty.append(transition)
    if empty:
        progress = True
        if _step(cr, instance, empty, hub, event):
            site = True
    for extension in extensions:
        merged = dict(instance.binding)
        merged.update(extension)
        if cr.pool.find(merged) is not None or any(
            c.same_binding(merged) for c in clones
        ):
            continue
        clone = instance.clone(extension)
        clone_matches = enabled(clone.states, event, clone.binding)
        complete = [t for t, new in clone_matches if not new]
        if complete:
            progress = True
            if _step(cr, clone, complete, hub, event):
                site = True
        clones.append(clone)
    return progress, site


def _add_clones(cr, clones, hub) -> None:
    """Pool-add accumulated clones with the once-per-bound OVERFLOW."""
    for clone in clones:
        if not cr.pool.add(clone):
            if not cr.overflow_reported:
                cr.overflow_reported = True
                hub.emit(
                    Notification(
                        kind=NotificationKind.OVERFLOW,
                        automaton=cr.automaton.name,
                        instance_name=clone.name,
                    )
                )


def _site_error(cr, event, hub) -> None:
    """The assertion-site miss (always-on ERROR notification)."""
    violation = TemporalViolation(
        automaton=cr.automaton.name,
        reason=(
            "no automaton instance could accept the assertion site "
            "(the expected prior events never occurred with these values)"
        ),
        event=event,
        binding=tuple(sorted(event.scope.items())),
        sampling_rate=cr.sample_rate,
    )
    hub.emit(
        Notification(
            kind=NotificationKind.ERROR,
            automaton=cr.automaton.name,
            event=event,
            violation=violation,
        )
    )


def _strict_error(cr, event, hub) -> None:
    violation = TemporalViolation(
        automaton=cr.automaton.name,
        reason="strict automaton observed an event it cannot consume",
        event=event,
        sampling_rate=cr.sample_rate,
    )
    hub.emit(
        Notification(
            kind=NotificationKind.ERROR,
            automaton=cr.automaton.name,
            event=event,
            violation=violation,
        )
    )


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    """Raised internally when a plan cannot be specialized."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _Emitter:
    """Accumulates source lines and the exec namespace side by side, so a
    constant is *named* in the source and *bound* in the namespace in one
    step (values never appear in the text — the determinism contract)."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.namespace: Dict[str, Any] = {}
        self._const_n = 0

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def const(self, value: Any, stem: str) -> str:
        name = f"_{stem}{self._const_n}"
        self._const_n += 1
        self.namespace[name] = value
        return name

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _SymbolPlan:
    """Per-symbol generated fragments: the event-static prologue and the
    per-instance match block (both as line lists at abstract indent 0)."""

    __slots__ = ("match_var", "prologue", "instance_block")

    def __init__(self, match_var: str) -> None:
        self.match_var = match_var
        self.prologue: List[Tuple[int, str]] = []
        self.instance_block: List[Tuple[int, str]] = []


def _pattern_value_checks(
    em: _Emitter,
    pattern: Pattern,
    value_expr: str,
    static: List[str],
    variables: List[Tuple[str, str]],
    extract: List[Tuple[str, str]],
) -> None:
    """Decompose one pattern against one value expression.

    Appends the pattern's *event-static* predicate to ``static``, and for
    ``Var`` patterns records ``(name, local)`` in ``variables`` plus the
    guarded extraction assignment in ``extract``.
    """
    if isinstance(pattern, Any_):
        return
    if isinstance(pattern, Const):
        const = em.const(pattern.value, "K")
        static.append(f"{value_expr} == {const}")
        return
    if isinstance(pattern, Var):
        local = f"_x{len(variables)}"
        variables.append((pattern.name, local))
        extract.append((local, value_expr))
        return
    if isinstance(pattern, Flags):
        const = em.const(pattern.flags, "K")
        static.append(
            f"isinstance({value_expr}, int) "
            f"and ({value_expr} & {const}) == {const}"
        )
        return
    if isinstance(pattern, Bitmask):
        const = em.const(~pattern.mask, "K")
        static.append(
            f"isinstance({value_expr}, int) "
            f"and ({value_expr} & {const}) == 0"
        )
        return
    if isinstance(pattern, AddressOf):
        static.append(f"isinstance({value_expr}, _Ref)")
        _pattern_value_checks(
            em, pattern.inner, f"{value_expr}.value", static, variables, extract
        )
        return
    raise _Unsupported(f"unsupported-pattern:{type(pattern).__name__}")


def _compile_symbol(
    em: _Emitter,
    symbol_id: int,
    symbol,
    automaton: Automaton,
    facts: CodegenFacts,
) -> Tuple[_SymbolPlan, int]:
    """Generate the prologue + per-instance block for one event symbol.

    Returns the fragments and the number of arity guards elided.
    """
    expr = symbol.expr
    plan = _SymbolPlan(f"_m{symbol_id}")
    elided_guards = 0

    if isinstance(expr, AssertionSite):
        # Site symbols constrain only the scope variables the site
        # supplies; membership and extraction are event-static.
        has: List[Tuple[str, str, str]] = []  # (name, has-local, val-local)
        for k, name in enumerate(symbol.site_variables):
            n_const = em.const(name, "N")
            h = f"_h{symbol_id}_{k}"
            x = f"_sv{symbol_id}_{k}"
            plan.prologue.append((0, f"{h} = {n_const} in _scope"))
            plan.prologue.append((0, f"{x} = _scope.get({n_const})"))
            has.append((n_const, h, x))
        m = plan.match_var
        if not has:
            plan.instance_block.append((0, f"{m} = _E"))
            return plan, elided_guards
        plan.instance_block.append((0, f"{m} = _E"))
        plan.instance_block.append((0, "_nb = None"))
        for n_const, h, x in has:
            plan.instance_block.append((0, f"if {h}:"))
            plan.instance_block.append(
                (1, f"_b = _bind.get({n_const}, _UB)")
            )
            plan.instance_block.append((1, "if _b is _UB:"))
            plan.instance_block.append((2, "if _nb is None:"))
            plan.instance_block.append((3, f"_nb = {{{n_const}: {x}}}"))
            plan.instance_block.append((2, "else:"))
            plan.instance_block.append((3, f"_nb[{n_const}] = {x}"))
            plan.instance_block.append(
                (1, f"elif not (_b is {x} or _b == {x}):")
            )
            plan.instance_block.append((2, f"{m} = _NO"))
        plan.instance_block.append(
            (0, f"if {m} is not _NO and _nb is not None:")
        )
        plan.instance_block.append((1, f"{m} = _nb"))
        return plan, elided_guards

    static: List[str] = []
    variables: List[Tuple[str, str]] = []
    extract: List[Tuple[str, str]] = []

    if isinstance(expr, FunctionCall):
        if expr.args is not None:
            arity = len(expr.args)
            if facts.clean and (expr.function, arity) in facts.arity_safe:
                elided_guards += 1
            else:
                static.append(f"len(_args) == {arity}")
            for k, pattern in enumerate(expr.args):
                _pattern_value_checks(
                    em, pattern, f"_args[{k}]", static, variables, extract
                )
    elif isinstance(expr, FunctionReturn):
        if expr.args is not None:
            arity = len(expr.args)
            if facts.clean and (expr.function, arity) in facts.arity_safe:
                elided_guards += 1
            else:
                static.append(f"len(_args) == {arity}")
            for k, pattern in enumerate(expr.args):
                _pattern_value_checks(
                    em, pattern, f"_args[{k}]", static, variables, extract
                )
        if expr.retval is not None:
            _pattern_value_checks(
                em, expr.retval, "_ret", static, variables, extract
            )
    elif isinstance(expr, FieldAssign):
        if expr.op is not None:
            op_const = em.const(expr.op, "K")
            static.append(f"_op is {op_const}")
        if expr.target is not None:
            _pattern_value_checks(
                em, expr.target, "_target", static, variables, extract
            )
        if expr.value is not None:
            _pattern_value_checks(
                em, expr.value, "_ret", static, variables, extract
            )
    else:
        raise _Unsupported(f"unsupported-event:{type(expr).__name__}")

    ok = f"_ok{symbol_id}"
    m = plan.match_var

    # Deduplicate repeated variables: the first occurrence binds, later
    # occurrences must agree with it — checked once per event against the
    # extracted values (``match_all``'s scratch-consistency rule).
    first_local: Dict[str, str] = {}
    consistency: List[str] = []
    deduped: List[Tuple[str, str]] = []
    for name, local in variables:
        seen = first_local.get(name)
        if seen is None:
            first_local[name] = local
            deduped.append((name, local))
        else:
            consistency.append(f"({seen} is {local} or {seen} == {local})")

    if not static and not extract:
        # No constraints at all (or args=None): every event of this key
        # matches, learning nothing.
        plan.instance_block.append((0, f"{m} = _E"))
        return plan, elided_guards

    if static:
        plan.prologue.append((0, f"{ok} = " + " and ".join(static)))
    else:
        plan.prologue.append((0, f"{ok} = True"))
    if extract:
        plan.prologue.append((0, f"if {ok}:"))
        for local, value_expr in extract:
            plan.prologue.append((1, f"{local} = {value_expr}"))
        for check in consistency:
            plan.prologue.append((1, f"if not {check}:"))
            plan.prologue.append((2, f"{ok} = False"))

    if not deduped:
        plan.instance_block.append((0, f"{m} = _E if {ok} else _NO"))
        return plan, elided_guards

    plan.instance_block.append((0, f"if {ok}:"))
    plan.instance_block.append((1, f"{m} = _E"))
    plan.instance_block.append((1, "_nb = None"))
    for name, local in deduped:
        n_const = em.const(name, "N")
        plan.instance_block.append((1, f"_b = _bind.get({n_const}, _UB)"))
        plan.instance_block.append((1, "if _b is _UB:"))
        plan.instance_block.append((2, "if _nb is None:"))
        plan.instance_block.append((3, f"_nb = {{{n_const}: {local}}}"))
        plan.instance_block.append((2, "else:"))
        plan.instance_block.append((3, f"_nb[{n_const}] = {local}"))
        plan.instance_block.append(
            (1, f"elif not (_b is {local} or _b == {local}):")
        )
        plan.instance_block.append((2, f"{m} = _NO"))
    plan.instance_block.append((1, f"if {m} is not _NO and _nb is not None:"))
    plan.instance_block.append((2, f"{m} = _nb"))
    plan.instance_block.append((0, "else:"))
    plan.instance_block.append((1, f"{m} = _NO"))
    return plan, elided_guards


def _occupiable_states(automaton: Automaton) -> FrozenSet[int]:
    """States an instance can ever occupy: the forward closure of the
    entry states over EVENT/SITE transitions.

    Under the runtime's move-or-stay stepping a state is only ever
    *added* when some EVENT/SITE transition targets it from an occupied
    state, so transitions whose source lies outside this closure can
    never fire — eliding them from generated code is verdict-preserving.
    (TESLA002's co-reachability is deliberately *not* used here: a
    transition that cannot reach accept can still fire and change the
    verdict under move-or-stay semantics.)
    """
    seen = set(automaton.entry_states)
    frontier = list(automaton.entry_states)
    while frontier:
        state = frontier.pop()
        for t in automaton.outgoing(state):
            if t.kind in (TransitionKind.EVENT, TransitionKind.SITE):
                if t.dst not in seen:
                    seen.add(t.dst)
                    frontier.append(t.dst)
    return frozenset(seen)


def _emit_event_body(
    em: _Emitter,
    base: int,
    automaton: Automaton,
    key: PlanKey,
    body: List[Tuple[int, Transition, int]],
    symbol_plans: Dict[int, _SymbolPlan],
    triple_consts: List[Tuple[str, str, str, str, bool]],
    hoist_pending: bool = False,
) -> None:
    """Emit the per-event evaluation (prologue, instance walk, endgame)
    at indentation ``base`` — shared between ``step`` and the event loop
    of ``step_batch``.  ``hoist_pending=True`` skips the lazy-materialise
    check (the batch variant performs it once before its event loop:
    ``cr.pending`` is only ever set by a lazy join, which the dispatcher
    runs before ``step_batch``, never during it)."""
    kind = key[0]
    is_site_key = kind is EventKind.ASSERTION_SITE
    strict = automaton.strict

    if not hoist_pending:
        em.emit(base, "if cr.pending:")
        em.emit(base + 1, "cr.pending = False")
        em.emit(base + 1, "_mat(cr, hub, dict(cr.lazy_binding))")

    if not body:
        # Every body transition was elided (or the plan was empty): no
        # instance can ever step on this key; only the endgame remains.
        em.emit(base, "_prog = False")
        em.emit(base, "_site = False")
        _emit_endgame(em, base, is_site_key, strict)
        return

    # Event field loads + per-symbol static evaluation.
    if kind is EventKind.CALL:
        em.emit(base, "_args = event.args")
    elif kind is EventKind.RETURN:
        em.emit(base, "_args = event.args")
        em.emit(base, "_ret = event.retval")
    elif kind is EventKind.FIELD_ASSIGN:
        em.emit(base, "_op = event.op")
        em.emit(base, "_target = event.target")
        em.emit(base, "_ret = event.retval")
    else:
        em.emit(base, "_scope = event.scope")
    for sid in sorted(symbol_plans):
        for ind, text in symbol_plans[sid].prologue:
            em.emit(base + ind, text)

    em.emit(base, "_prog = False")
    em.emit(base, "_site = False")
    em.emit(base, "_clones = []")
    em.emit(base, "_tc = cr.transition_counts")
    em.emit(base, "for instance in _pool.live():")
    em.emit(base + 1, "_st = instance.states")
    em.emit(base + 1, "_bind = instance.binding")
    for sid in sorted(symbol_plans):
        for ind, text in symbol_plans[sid].instance_block:
            em.emit(base + 1 + ind, text)
    # Per-triple enabled flags and the match count.
    flags = []
    for i, (src_c, _, _, _, _) in enumerate(triple_consts):
        sid = body[i][2]
        m = symbol_plans[sid].match_var
        f = f"_f{i}"
        flags.append(f)
        em.emit(base + 1, f"{f} = {src_c} in _st and {m} is not _NO")
    em.emit(base + 1, f"_n = {' + '.join(flags)}")
    em.emit(base + 1, "if not _n:")
    em.emit(base + 2, "continue")
    em.emit(base + 1, "if _n == 1:")
    first = True
    for i, (src_c, tr_c, srct_c, dfs_c, took_site) in enumerate(triple_consts):
        sid = body[i][2]
        m = symbol_plans[sid].match_var
        dst_c = dfs_c  # strict: frozenset const; else dst tuple const
        kw = "if" if first else "elif"
        first = False
        em.emit(base + 2, f"{kw} _f{i}:")
        em.emit(base + 3, f"if {m} is _E:")
        # Inline single-transition step (update._step's len==1 branch,
        # hub.detailed known False here).
        em.emit(base + 4, "_prog = True")
        if strict:
            em.emit(base + 4, f"instance.states = {dst_c}")
        else:
            em.emit(
                base + 4,
                f"instance.states = _st.difference({srct_c})"
                f".union({dst_c})",
            )
        em.emit(base + 4, f"_tc[{tr_c}] = _tc.get({tr_c}, 0) + 1")
        if took_site:
            em.emit(base + 4, "instance.saw_site = True")
            em.emit(base + 4, "cr.sites_reached += 1")
            em.emit(base + 4, "_site = True")
        em.emit(base + 4, "continue")
        # Single match with a new binding: the clone's only completing
        # transition is this one (any other triple that could complete
        # for the clone would have matched this instance too, making
        # _n >= 2), so the interpreter's clone-and-re-step collapses to
        # a dedupe probe plus an inline step — no matcher re-evaluation.
        em.emit(base + 3, "_nb2 = dict(_bind)")
        em.emit(base + 3, f"_nb2.update({m})")
        em.emit(base + 3, "if _pool.find(_nb2) is None:")
        em.emit(base + 4, "for _c in _clones:")
        em.emit(base + 5, "if _c.same_binding(_nb2):")
        em.emit(base + 6, "break")
        em.emit(base + 4, "else:")
        em.emit(base + 5, f"_cl = instance.clone({m})")
        em.emit(base + 5, "_prog = True")
        if strict:
            em.emit(base + 5, f"_cl.states = {dst_c}")
        else:
            em.emit(
                base + 5,
                f"_cl.states = _st.difference({srct_c}).union({dst_c})",
            )
        em.emit(base + 5, f"_tc[{tr_c}] = _tc.get({tr_c}, 0) + 1")
        if took_site:
            em.emit(base + 5, "_cl.saw_site = True")
            em.emit(base + 5, "cr.sites_reached += 1")
            em.emit(base + 5, "_site = True")
        em.emit(base + 5, "_clones.append(_cl)")
        em.emit(base + 3, "continue")
    em.emit(base + 1, "else:")
    em.emit(base + 2, "_mt = []")
    for i, (_, tr_c, _, _, _) in enumerate(triple_consts):
        sid = body[i][2]
        m = symbol_plans[sid].match_var
        em.emit(base + 2, f"if _f{i}:")
        em.emit(base + 3, f"_mt.append(({tr_c}, {m}))")
    em.emit(
        base + 1,
        "_p, _s = _slow(cr, instance, _mt, hub, event, _clones, _enabled)",
    )
    em.emit(base + 1, "if _p:")
    em.emit(base + 2, "_prog = True")
    em.emit(base + 1, "if _s:")
    em.emit(base + 2, "_site = True")
    em.emit(base, "if _clones:")
    em.emit(base + 1, "_addc(cr, _clones, hub)")

    _emit_endgame(em, base, is_site_key, strict)


def _emit_endgame(em: _Emitter, base: int, is_site_key: bool, strict: bool) -> None:
    """The interpreter's post-walk verdict chain with the is-site-event /
    strict / references() terms folded at gentime.

    ``references(event)`` is constant-true here: a generated step only
    ever runs for keys the automaton observes as body keys (or its own
    site), exactly the dispatch-index condition ``references`` tests.
    """
    if is_site_key:
        em.emit(base, "if not _site:")
        em.emit(base + 1, "if _already(cr, event):")
        em.emit(base + 2, "cr.sites_reached += 1")
        em.emit(base + 2, "_site = True")
        em.emit(base + 1, "elif _pool.overflows > cr.overflow_mark:")
        em.emit(base + 2, "cr.sites_reached += 1")
        em.emit(base + 2, "_site = True")
        em.emit(base, "if not _site:")
        em.emit(base + 1, "cr.errors += 1")
        em.emit(base + 1, "_serr(cr, event, hub)")
        if strict:
            em.emit(base, "elif not _prog:")
            em.emit(base + 1, "cr.errors += 1")
            em.emit(base + 1, "_xerr(cr, event, hub)")
    elif strict:
        em.emit(base, "if not _prog:")
        em.emit(base + 1, "cr.errors += 1")
        em.emit(base + 1, "_xerr(cr, event, hub)")


def generate_source(
    automaton: Automaton,
    plan: TransitionPlan,
    facts: Optional[CodegenFacts] = None,
) -> GeneratedSource:
    """Generate specialized step/step_batch source for one plan.

    Returns a :class:`GeneratedSource`; an unspecializable plan yields
    one with ``fallback_reason`` set and no source.
    """
    if facts is None:
        facts = CodegenFacts.NONE
    key = plan.key
    em = _Emitter()
    try:
        if automaton.timed:
            # Timed automata (DESIGN §5.9) need per-event deadline expiry
            # and clock-guard filtering, which live in the interpreter's
            # tesla_update_state; a generated step would bypass both.
            # Refuse every plan of a timed automaton — the loud, counted
            # fallback keeps verdicts exact at interpreter speed.
            raise _Unsupported("timed-automaton:clock-guards")
        occupiable = _occupiable_states(automaton)
        # tesla-prove widening: an occupancy fact intersects the forward
        # closure with the prove fixpoint's occupied-state union and —
        # being a proof in its own right — lifts the lint-clean gate.
        proved_occ = facts.occupancy.get(automaton.name)
        if proved_occ is not None:
            occupiable = occupiable & proved_occ
        may_elide = facts.clean or proved_occ is not None
        body: List[Tuple[int, Transition, int]] = []
        elided_transitions = 0
        for src, transition, _matcher in plan.body:
            if may_elide and src not in occupiable:
                elided_transitions += 1
                continue
            body.append((src, transition, transition.symbol))

        symbol_plans: Dict[int, _SymbolPlan] = {}
        elided_guards = 0
        for _, _, sid in body:
            if sid not in symbol_plans:
                sym_plan, elided = _compile_symbol(
                    em, sid, automaton.symbols[sid], automaton, facts
                )
                symbol_plans[sid] = sym_plan
                elided_guards += elided
    except _Unsupported as exc:
        return GeneratedSource(fallback_reason=exc.reason)

    triple_consts: List[Tuple[str, str, str, str, bool]] = []
    for src, transition, _sid in body:
        src_c = em.const(src, "S")
        tr_c = em.const(transition, "T")
        srct_c = em.const((src,), "ST")
        if automaton.strict:
            dfs_c = em.const(frozenset((transition.dst,)), "D")
        else:
            dfs_c = em.const((transition.dst,), "D")
        triple_consts.append(
            (src_c, tr_c, srct_c, dfs_c,
             transition.kind is TransitionKind.SITE)
        )

    header = (
        f"# tesla-jit v{CODEGEN_VERSION} automaton={automaton.name} "
        f"key={key[0].name}:{key[1]} strict={automaton.strict} "
        f"triples={len(body)} elided_guards={elided_guards} "
        f"elided_transitions={elided_transitions}"
    )
    em.lines.append(header)
    em.emit(0, "def step(cr, event, hub):")
    em.emit(1, "if _fi._active is not None or hub.detailed:")
    em.emit(2, "return _interp(cr, event, hub, True, _plan)")
    em.emit(1, "if not cr.active:")
    em.emit(2, "return")
    em.emit(1, "_pool = cr.pool")
    _emit_event_body(em, 1, automaton, key, body, symbol_plans, triple_consts)
    em.emit(0, "")
    em.emit(0, "def step_batch(cr, events, hub):")
    em.emit(1, "if _fi._active is not None or hub.detailed:")
    em.emit(2, "for event in events:")
    em.emit(3, "_interp(cr, event, hub, True, _plan)")
    em.emit(2, "return")
    em.emit(1, "if not cr.active:")
    em.emit(2, "return")
    em.emit(1, "_pool = cr.pool")
    em.emit(1, "if cr.pending:")
    em.emit(2, "cr.pending = False")
    em.emit(2, "_mat(cr, hub, dict(cr.lazy_binding))")
    em.emit(1, "for event in events:")
    _emit_event_body(em, 2, automaton, key, body, symbol_plans, triple_consts,
                     hoist_pending=True)

    namespace = dict(em.namespace)
    namespace.update(
        {
            "_fi": _fi,
            "_interp": tesla_update_state,
            "_plan": plan,
            "_mat": _materialise,
            "_slow": _instance_slow_step,
            "_addc": _add_clones,
            "_already": _upd_already_satisfied,
            "_serr": _site_error,
            "_xerr": _strict_error,
            "_enabled": plan.enabled,
            "_E": EMPTY_BINDING,
            "_NO": _NO,
            "_UB": UNBOUND,
            "_Ref": Ref,
        }
    )
    return GeneratedSource(
        source=em.source(),
        elided_guards=elided_guards,
        elided_transitions=elided_transitions,
        namespace=namespace,
    )


def compile_plan_step(
    automaton: Automaton,
    plan: TransitionPlan,
    facts: Optional[CodegenFacts] = None,
):
    """Compile one plan to a :class:`CompiledStep`, or a
    :class:`GenerationFallback` naming why it could not be specialized."""
    generated = generate_source(automaton, plan, facts)
    if generated.fallback_reason is not None:
        return GenerationFallback(generated.fallback_reason)
    namespace = generated.namespace
    code = compile(
        generated.source,
        f"<tesla-jit {automaton.name} {plan.key[0].name}:{plan.key[1]}>",
        "exec",
    )
    exec(code, namespace)
    return CompiledStep(
        step=namespace["step"],
        step_batch=namespace["step_batch"],
        source=generated.source,
        elided_guards=generated.elided_guards,
        elided_transitions=generated.elided_transitions,
    )


def dump_sources(
    automaton: Automaton, facts: Optional[CodegenFacts] = None
) -> List[Tuple[PlanKey, GeneratedSource]]:
    """Generated source for every body dispatch key of one automaton,
    in deterministic key order (the CLI's ``codegen --dump`` surface)."""
    from .plans import build_transition_plan

    keys = set()
    for t in automaton.transitions:
        if t.kind not in (TransitionKind.EVENT, TransitionKind.SITE):
            continue
        if t.symbol is None:
            continue
        kind, name = automaton.symbols[t.symbol].dispatch_key
        if kind is EventKind.ASSERTION_SITE:
            keys.add((kind, automaton.name))
        else:
            keys.add((kind, name))
    out: List[Tuple[PlanKey, GeneratedSource]] = []
    for key in sorted(keys, key=lambda k: (k[0].value, k[1])):
        plan = build_transition_plan(automaton, key)
        out.append((key, generate_source(automaton, plan, facts)))
    return out
