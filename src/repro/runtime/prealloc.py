"""Bounded instance pools (section 4.4.1).

"In the kernel we rely on preallocation to avoid dynamic allocation in code
paths that do not permit it (e.g., while holding mutexes). … we preallocate
a fixed-size memory block per thread, giving a deterministic memory
footprint, and report overflows so that we can adjust preallocation size on
the next run."

Python has no mutex-unsafe allocator, so what matters — and what this module
reproduces — is the *bounded, deterministic footprint with overflow
reporting*: an :class:`InstancePool` holds at most ``capacity`` instances;
insertions past the limit are dropped and counted, never silently grown.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from . import faultinject as _fi
from .faultinject import fault_site
from .instance import AutomatonInstance

_FP_INSERT = fault_site("prealloc.insert")

#: Matches libtesla's modest default; kernel configurations override it.
DEFAULT_CAPACITY = 128


class InstancePool:
    """A fixed-capacity container of automaton instances."""

    __slots__ = ("capacity", "_instances", "overflows", "high_water")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._instances: List[AutomatonInstance] = []
        #: Number of instances dropped because the pool was full.
        self.overflows = 0
        #: Largest simultaneous population — the number to size the next run.
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[AutomatonInstance]:
        return iter(self._instances)

    def add(self, instance: AutomatonInstance) -> bool:
        """Insert; returns False (and counts an overflow) when full."""
        if _fi._active is not None:
            _fi.fault_point(_FP_INSERT)
        if len(self._instances) >= self.capacity:
            self.overflows += 1
            return False
        self._instances.append(instance)
        if len(self._instances) > self.high_water:
            self.high_water = len(self._instances)
        return True

    def find(self, binding) -> Optional[AutomatonInstance]:
        """The instance with exactly this binding, if present."""
        for instance in self._instances:
            if instance.same_binding(binding):
                return instance
        return None

    def prune(self, predicate) -> List[AutomatonInstance]:
        """Remove and return every instance ``predicate`` selects.

        Used by deadline expiry (DESIGN §5.9): expired instances leave the
        pool immediately so the population numbers stay honest and a later
        cleanup does not double-report the same obligation.
        """
        kept: List[AutomatonInstance] = []
        removed: List[AutomatonInstance] = []
        for instance in self._instances:
            (removed if predicate(instance) else kept).append(instance)
        if removed:
            self._instances = kept
        return removed

    def expunge(self) -> List[AutomatonInstance]:
        """Remove and return every instance (the «cleanup» reset)."""
        out = self._instances
        self._instances = []
        return out

    def snapshot(self) -> List[AutomatonInstance]:
        return list(self._instances)

    def live(self) -> List[AutomatonInstance]:
        """The live instance list itself, NOT a copy.

        For the dispatch hot loop, which walks the population once per
        event: the transition engine accumulates clones in a side list and
        only :meth:`add`\\ s them after the walk, so the list never mutates
        under iteration.  Callers that might add or expunge mid-walk must
        use :meth:`snapshot`.
        """
        return self._instances

    def stats(self) -> dict:
        """The overflow-report-then-resize numbers (§4.4.1), one pool.

        Aggregated per shard by the sharded global store's introspection
        rows so preallocation can be resized where the pressure actually
        is rather than globally.
        """
        return {
            "capacity": self.capacity,
            "population": len(self._instances),
            "high_water": self.high_water,
            "overflows": self.overflows,
        }
