"""X.509-style certificate chains and the figure 2 verification bug.

The paper opens with a diff against OpenSSL's ``apps`` code::

    - if (!reqfile && !X509_verify_cert(&xsc))
    + if (!reqfile && X509_verify_cert(&xsc) <= 0)

``X509_verify_cert`` is another tri-state API: 1 = chain verified, 0 = the
chain does not verify, and a negative value on internal/parse errors.  An
application testing the result with ``!`` treats the error case as
success — the same class of bug as CVE-2008-5077, one layer up.

This module provides a toy certificate, chain building/verification with
the tri-state contract, and both the buggy and fixed application-level
checks, so a TESLA assertion over ``X509_verify_cert == 1`` can catch the
conflation exactly as figure 6's did for ``EVP_VerifyFinal``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .asn1 import Asn1Error, forge_bit_string_tag
from .crypto import DsaKey, DSA_generate_key, DSA_sign, DSA_verify

#: ``X509_verify_cert`` error returns (negative, like OpenSSL's
#: X509_V_ERR... surfaced through the apps' conflation).
X509_V_OK = 1
X509_V_FAIL = 0
X509_V_ERR = -1


@dataclass
class Certificate:
    """A pared-down certificate: subject, issuer, key, issuer's signature."""

    subject: str
    issuer: str
    public_key: DsaKey
    signature: bytes = b""

    def tbs_digest(self) -> bytes:
        """Digest of the to-be-signed portion."""
        body = f"{self.subject}|{self.issuer}|{self.public_key.y}".encode()
        return hashlib.sha256(body).digest()


def issue_certificate(
    subject: str, subject_key: DsaKey, issuer: "CertificateAuthority"
) -> Certificate:
    """Create a certificate for ``subject`` signed by ``issuer``."""
    certificate = Certificate(
        subject=subject,
        issuer=issuer.name,
        public_key=subject_key.public,
    )
    certificate.signature = DSA_sign(certificate.tbs_digest(), issuer.key)
    return certificate


@dataclass
class CertificateAuthority:
    """A CA: a name, a keypair and a self-signed root certificate."""

    name: str
    key: DsaKey = field(default_factory=lambda: DSA_generate_key(0xCA))

    def root_certificate(self) -> Certificate:
        root = Certificate(
            subject=self.name, issuer=self.name, public_key=self.key.public
        )
        root.signature = DSA_sign(root.tbs_digest(), self.key)
        return root


class X509StoreCtx:
    """``X509_STORE_CTX``: the chain to verify plus trusted roots."""

    def __init__(
        self,
        chain: Sequence[Certificate],
        trusted: Sequence[Certificate],
    ) -> None:
        #: leaf first, root (or closest-to-root) last.
        self.chain = list(chain)
        self.trusted = list(trusted)
        self.error: Optional[str] = None


def X509_verify_cert(ctx: X509StoreCtx) -> int:
    """Verify the chain; the tri-state of figure 2.

    * ``1`` — every link verifies and terminates in a trusted root;
    * ``0`` — a signature does not verify, or no trusted root is reached;
    * negative — an *error* occurred (empty chain, malformed signature
      DER), which buggy callers conflate with success via ``!``.
    """
    if not ctx.chain:
        ctx.error = "empty chain"
        return X509_V_ERR
    try:
        for child, parent in zip(ctx.chain, ctx.chain[1:]):
            if child.issuer != parent.subject:
                ctx.error = f"issuer mismatch at {child.subject}"
                return X509_V_FAIL
            if DSA_verify(child.tbs_digest(), child.signature, parent.public_key) != 1:
                ctx.error = f"bad signature on {child.subject}"
                return X509_V_FAIL
        top = ctx.chain[-1]
        for root in ctx.trusted:
            if root.subject == top.issuer:
                if DSA_verify(top.tbs_digest(), top.signature, root.public_key) == 1:
                    return X509_V_OK
                ctx.error = f"bad signature on {top.subject}"
                return X509_V_FAIL
        ctx.error = f"no trusted root for {top.issuer}"
        return X509_V_FAIL
    except Asn1Error as exc:
        ctx.error = f"malformed certificate data: {exc}"
        return X509_V_ERR


def forge_certificate_signature(certificate: Certificate) -> Certificate:
    """Retag the certificate signature's second INTEGER as BIT STRING —
    the same attack as the key-exchange forgery, applied one layer up."""
    return Certificate(
        subject=certificate.subject,
        issuer=certificate.issuer,
        public_key=certificate.public_key,
        signature=forge_bit_string_tag(certificate.signature),
    )


# ---------------------------------------------------------------------------
# the application-level checks of figure 2
# ---------------------------------------------------------------------------


def app_accepts_chain_buggy(ctx: X509StoreCtx) -> bool:
    """The pre-patch check: ``if (!X509_verify_cert(&xsc)) reject`` —
    any non-zero return, *including errors*, is treated as acceptance."""
    return bool(X509_verify_cert(ctx))


def app_accepts_chain_fixed(ctx: X509StoreCtx) -> bool:
    """The patched check: only a positive return is acceptance
    (``X509_verify_cert(&xsc) <= 0`` rejects)."""
    return X509_verify_cert(ctx) > 0
