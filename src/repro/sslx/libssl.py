""""libssl": the TLS-ish handshake layer, including the vulnerable check.

``ssl3_get_key_exchange`` is where CVE-2008-5077 lived: the server's
key-exchange signature is verified with ``EVP_VerifyFinal``, whose
*tri-state* return the vulnerable code mishandles::

    vulnerable:  if (EVP_VerifyFinal(...))        # -1 is truthy → accepted!
    fixed:       if (EVP_VerifyFinal(...) == 1)   # only 1 is success

Both variants ship here, selected by ``Ssl.strict_verify``, so the use
case can demonstrate detection on the vulnerable client and a clean pass
on the fixed one.  ``EVP_VerifyFinal`` is imported from "libcrypto" — an
uninstrumentable library — so TESLA hooks it *caller-side* by rewriting
this module's binding (section 4.2).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# Imported by name so caller-side instrumentation can rewrite the binding.
from .crypto import DsaKey, EVP_VerifyFinal, EVP_VerifyInit, EVP_VerifyUpdate

_conn_counter = itertools.count(1)


class SslError(Exception):
    """Handshake or record-layer failure."""


@dataclass
class KeyExchangeMessage:
    """ServerKeyExchange: DH-style parameters plus their signature."""

    params: bytes
    signature: bytes


@dataclass
class Ssl:
    """An SSL connection object (``SSL *``)."""

    strict_verify: bool = True
    state: str = "init"
    client_random: bytes = b""
    server_random: bytes = b""
    peer_key: Optional[DsaKey] = None
    session_key: bytes = b""
    server: Any = None
    conn_id: int = field(default_factory=lambda: next(_conn_counter))


def SSL_new(strict_verify: bool = True) -> Ssl:
    """Allocate a connection object; ``strict_verify`` picks the check."""
    return Ssl(strict_verify=strict_verify)


def _transcript(ssl: Ssl, params: bytes) -> bytes:
    return ssl.client_random + ssl.server_random + params


def ssl3_get_key_exchange(ssl: Ssl, message: KeyExchangeMessage) -> int:
    """Process ServerKeyExchange; returns 1 on acceptance, raises on reject.

    The verification-check bug is reproduced byte-for-byte in spirit: the
    non-strict branch treats any non-zero return — including the
    exceptional ``-1`` — as success.
    """
    ctx = EVP_VerifyInit()
    EVP_VerifyUpdate(ctx, _transcript(ssl, message.params))
    verify = EVP_VerifyFinal(ctx, message.signature, len(message.signature), ssl.peer_key)
    if ssl.strict_verify:
        accepted = verify == 1
    else:
        # CVE-2008-5077: "an exceptional failure ... incorrectly conflated
        # with success by libssl client code."
        accepted = verify != 0
    if not accepted:
        ssl.state = "error"
        raise SslError(f"key exchange signature rejected (verify={verify})")
    ssl.session_key = hashlib.sha256(message.params + b"session").digest()
    return 1


def SSL_connect(ssl: Ssl, server: Any) -> int:
    """Run the client side of the handshake against an in-process server.

    Returns 1 on success; raises :class:`SslError` on failure.
    """
    ssl.server = server
    ssl.client_random = hashlib.sha256(f"client{ssl.conn_id}".encode()).digest()[:16]
    hello = server.server_hello(ssl.client_random)
    ssl.server_random = hello["server_random"]
    ssl.peer_key = hello["certificate"]
    message = server.server_key_exchange(ssl.client_random, ssl.server_random)
    ssl3_get_key_exchange(ssl, message)
    server.finish_handshake(ssl.conn_id, ssl.session_key)
    ssl.state = "connected"
    return 1


def SSL_write(ssl: Ssl, data: bytes) -> int:
    """Send application data over the connected session."""
    if ssl.state != "connected":
        raise SslError("write on unconnected SSL")
    ssl.server.receive(ssl.conn_id, data)
    return len(data)


def SSL_read(ssl: Ssl) -> bytes:
    """Receive the server's pending response."""
    if ssl.state != "connected":
        raise SslError("read on unconnected SSL")
    return ssl.server.respond(ssl.conn_id)


def SSL_shutdown(ssl: Ssl) -> int:
    """Close the session."""
    ssl.state = "closed"
    return 0
