"""A miniature OpenSSL-like stack: libcrypto, libssl, s_server, libfetch.

The substrate for the CVE-2008-5077 use case (section 3.5.1) and the
figure 10 build-overhead experiment: a layered TLS-ish implementation whose
tri-state ``EVP_VerifyFinal`` can be mishandled exactly as history did.
"""

from .asn1 import (
    Asn1Error,
    decode_dsa_signature,
    encode_dsa_signature,
    forge_bit_string_tag,
)
from .crypto import (
    DsaKey,
    DSA_generate_key,
    DSA_sign,
    DSA_verify,
    EVP_SignFinal,
    EVP_VerifyFinal,
    EVP_VerifyInit,
    EVP_VerifyUpdate,
)
from .fetch import VERIFY_ASSERTION, fetch_assertion, fetch_url
from .libssl import (
    KeyExchangeMessage,
    Ssl,
    SslError,
    SSL_connect,
    SSL_new,
    SSL_read,
    SSL_write,
    ssl3_get_key_exchange,
)
from .server import SServer
from .x509 import (
    Certificate,
    CertificateAuthority,
    X509StoreCtx,
    X509_verify_cert,
    app_accepts_chain_buggy,
    app_accepts_chain_fixed,
    forge_certificate_signature,
    issue_certificate,
)

__all__ = [
    "Asn1Error",
    "decode_dsa_signature",
    "encode_dsa_signature",
    "forge_bit_string_tag",
    "DsaKey",
    "DSA_generate_key",
    "DSA_sign",
    "DSA_verify",
    "EVP_SignFinal",
    "EVP_VerifyFinal",
    "EVP_VerifyInit",
    "EVP_VerifyUpdate",
    "VERIFY_ASSERTION",
    "fetch_assertion",
    "fetch_url",
    "KeyExchangeMessage",
    "Ssl",
    "SslError",
    "SSL_connect",
    "SSL_new",
    "SSL_read",
    "SSL_write",
    "ssl3_get_key_exchange",
    "SServer",
    "Certificate",
    "CertificateAuthority",
    "X509StoreCtx",
    "X509_verify_cert",
    "app_accepts_chain_buggy",
    "app_accepts_chain_fixed",
    "forge_certificate_signature",
    "issue_certificate",
]
