"""A miniature ASN.1 DER codec.

Just enough of DER for the CVE-2008-5077 reproduction: INTEGER, BIT STRING
and SEQUENCE encoding/decoding with definite lengths.  The attack in the
paper forges "an ASN.1 tag inside a DSA signature so that one of two large
integers claimed to have the BIT STRING type rather than INTEGER", causing
an exceptional (-1) failure inside libcrypto — so the codec must byte-
accurately distinguish those tags and reject the mismatch.
"""

from __future__ import annotations

from typing import List, Tuple

TAG_INTEGER = 0x02
TAG_BIT_STRING = 0x03
TAG_OCTET_STRING = 0x04
TAG_SEQUENCE = 0x30


class Asn1Error(ValueError):
    """Malformed DER, or an unexpected tag where a specific one is required."""


def encode_length(length: int) -> bytes:
    """DER length octets (short or long form)."""
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def decode_length(data: bytes, offset: int) -> Tuple[int, int]:
    """Returns (length, next_offset)."""
    if offset >= len(data):
        raise Asn1Error("truncated length")
    first = data[offset]
    if first < 0x80:
        return first, offset + 1
    n_bytes = first & 0x7F
    if n_bytes == 0 or offset + 1 + n_bytes > len(data):
        raise Asn1Error("bad long-form length")
    value = int.from_bytes(data[offset + 1 : offset + 1 + n_bytes], "big")
    return value, offset + 1 + n_bytes


def encode_tlv(tag: int, value: bytes) -> bytes:
    """One DER TLV: tag, length, value."""
    return bytes([tag]) + encode_length(len(value)) + value


def decode_tlv(data: bytes, offset: int = 0) -> Tuple[int, bytes, int]:
    """Returns (tag, value, next_offset)."""
    if offset >= len(data):
        raise Asn1Error("truncated TLV")
    tag = data[offset]
    length, body_start = decode_length(data, offset + 1)
    body_end = body_start + length
    if body_end > len(data):
        raise Asn1Error("value runs past end of data")
    return tag, data[body_start:body_end], body_end


def encode_integer(value: int) -> bytes:
    """DER INTEGER: two's complement, minimal length, 0x00 pad for the
    high bit of non-negative values."""
    if value == 0:
        return encode_tlv(TAG_INTEGER, b"\x00")
    if value < 0:
        raise Asn1Error("negative integers not needed by this codec")
    body = value.to_bytes((value.bit_length() + 7) // 8, "big")
    if body[0] & 0x80:
        body = b"\x00" + body
    return encode_tlv(TAG_INTEGER, body)


def decode_integer(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Returns (value, next_offset); raises on a non-INTEGER tag.

    This is the check the forged BIT STRING tag trips: DER decoding of a
    signature INTEGER must fail *exceptionally*, not return "mismatch".
    """
    tag, body, next_offset = decode_tlv(data, offset)
    if tag != TAG_INTEGER:
        raise Asn1Error(f"expected INTEGER (0x02), got tag {tag:#04x}")
    if not body:
        raise Asn1Error("empty INTEGER body")
    return int.from_bytes(body, "big"), next_offset


def encode_sequence(parts: List[bytes]) -> bytes:
    """DER SEQUENCE wrapping the given encoded parts."""
    return encode_tlv(TAG_SEQUENCE, b"".join(parts))


def decode_sequence(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Returns (sequence body, next_offset); raises on a non-SEQUENCE tag."""
    tag, body, next_offset = decode_tlv(data, offset)
    if tag != TAG_SEQUENCE:
        raise Asn1Error(f"expected SEQUENCE (0x30), got tag {tag:#04x}")
    return body, next_offset


def encode_dsa_signature(r: int, s: int) -> bytes:
    """A DSA-Sig-Value: SEQUENCE of two INTEGERs."""
    return encode_sequence([encode_integer(r), encode_integer(s)])


def decode_dsa_signature(data: bytes) -> Tuple[int, int]:
    """Decode ``SEQUENCE { r INTEGER, s INTEGER }``; strict on tags."""
    body, _ = decode_sequence(data)
    r, offset = decode_integer(body, 0)
    s, offset = decode_integer(body, offset)
    if offset != len(body):
        raise Asn1Error("trailing bytes after DSA signature integers")
    return r, s


def forge_bit_string_tag(signature: bytes) -> bytes:
    """The paper's attack: retag the *second* INTEGER of a DSA signature as
    BIT STRING, leaving lengths and bytes otherwise intact."""
    body, _ = decode_sequence(signature)
    _, after_first = decode_integer(body, 0)
    # Compute the second integer's absolute position within the signature.
    header = len(signature) - len(body)
    absolute = header + after_first
    if signature[absolute] != TAG_INTEGER:
        raise Asn1Error("second element is not an INTEGER; nothing to forge")
    return signature[:absolute] + bytes([TAG_BIT_STRING]) + signature[absolute + 1 :]
