""""libfetch": the HTTP-over-SSL client of the figure 6 use case.

The library author, "on the day after CVE-2008-5077 was announced", wants
to know whether the client is vulnerable — without inspecting all the code
that might call libcrypto incorrectly.  The figure 6 assertion lives here:

    within ``fetch_url``, previously
    ``EVP_VerifyFinal(ANY, ANY, ANY, ANY) == 1``

anchored at the :func:`~repro.instrument.hooks.tesla_site` reached once the
document has been retrieved.  "The return value may not have been correctly
checked, but if the function returns non-success, it will not satisfy the
TESLA expression" — so a handshake accepted via the -1 confusion trips the
assertion even though libssl raised no error.
"""

from __future__ import annotations

from typing import Tuple

from ..core.ast import Context, TemporalAssertion
from ..core.dsl import ANY, fn, previously, tesla_within
from ..instrument.hooks import instrumentable, tesla_site
from .libssl import SSL_connect, SSL_new, SSL_read, SSL_shutdown, SSL_write
from .server import SServer

#: The figure 6 assertion name (and its site, below).
VERIFY_ASSERTION = "libfetch.verify-finalised"


def fetch_assertion() -> TemporalAssertion:
    """Figure 6, transliterated: the key-exchange signature must have been
    *successfully* verified before the fetched document is used."""
    return tesla_within(
        "fetch_url",
        previously(
            fn("EVP_VerifyFinal", ANY("ptr"), ANY("ptr"), ANY("int"), ANY("ptr")) == 1
        ),
        name=VERIFY_ASSERTION,
        location="repro.sslx.fetch:fetch_url",
        tags=("openssl", "cve-2008-5077"),
    )


@instrumentable()
def fetch_url(server: SServer, path: str = "/index.html", strict_verify: bool = False) -> bytes:
    """Retrieve a document over SSL; the paper's "simple client".

    ``strict_verify=False`` selects the historically vulnerable check in
    libssl — the configuration under test in section 3.5.1.
    """
    ssl = SSL_new(strict_verify=strict_verify)
    SSL_connect(ssl, server)
    SSL_write(ssl, f"GET {path} HTTP/1.0\r\n\r\n".encode())
    response = SSL_read(ssl)
    # The document is about to be *used*: if we get here, the connection
    # must rest on a successfully verified key exchange.
    tesla_site(VERIFY_ASSERTION)
    SSL_shutdown(ssl)
    header, _, body = response.partition(b"\r\n\r\n")
    if not header.startswith(b"HTTP/1.0 200"):
        raise IOError(f"fetch failed: {header!r}")
    return body
