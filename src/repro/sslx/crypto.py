""""libcrypto": a toy DSA implementation behind the EVP verification API.

This module plays the role of a library that *cannot be recompiled*: none
of its functions are built instrumentable, so TESLA assertions about
``EVP_VerifyFinal`` must use caller-side instrumentation — exactly the
situation of section 4.2's caller/callee discussion and the figure 6 use
case (an assertion in libfetch driving instrumentation "on either side of
another library API, between OpenSSL's libssl and libcrypto").

``EVP_VerifyFinal`` keeps OpenSSL's infamous tri-state contract:

* ``1``  — signature verified;
* ``0``  — signature did not verify;
* ``-1`` — *exceptional* failure (e.g. the signature's DER is malformed).

CVE-2008-5077 existed because callers conflated -1 with success by writing
``if (!EVP_VerifyFinal(...))`` style checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from .asn1 import Asn1Error, decode_dsa_signature, encode_dsa_signature

# A small, fixed DSA-like parameter set (toy sizes; the protocol shape is
# what matters, not cryptographic strength).
DSA_P = 0xE95E4A5F737059DC60DFC7AD95B3D8139515620F  # 160-bit prime
DSA_Q = 0xF518AA8781A8DF278ABA4E7D64B7CB9D49462353  # used as modulus helper
DSA_G = 2


@dataclass
class DsaKey:
    """A DSA-style keypair (x private, y = g^x mod p public)."""

    x: int
    y: int

    @property
    def public(self) -> "DsaKey":
        return DsaKey(x=0, y=self.y)


def DSA_generate_key(seed: int = 0x1234_5678) -> DsaKey:
    """Deterministic toy keypair from a seed."""
    x = (seed * 0x9E3779B97F4A7C15 + 1) % (DSA_P - 2) + 1
    y = pow(DSA_G, x, DSA_P)
    return DsaKey(x=x, y=y)


def _digest_to_int(digest: bytes) -> int:
    return int.from_bytes(digest, "big") % DSA_P


def DSA_sign(digest: bytes, key: DsaKey) -> bytes:
    """Sign a digest, returning a DER ``SEQUENCE { r INTEGER, s INTEGER }``.

    A deterministic Schnorr-style toy scheme with DSA's wire format:
    k derived from digest+key, r = g^k mod p, s = k + x*e mod (p-1).
    """
    e = _digest_to_int(digest)
    k = (e * 31 + key.x * 17 + 1) % (DSA_P - 2) + 1
    r = pow(DSA_G, k, DSA_P)
    s = (k + key.x * e) % (DSA_P - 1)
    return encode_dsa_signature(r, s)


def DSA_verify(digest: bytes, signature: bytes, key: DsaKey) -> int:
    """1 = good, 0 = mismatch; raises :class:`Asn1Error` on malformed DER.

    Verification: g^s == r * y^e (mod p).
    """
    r, s = decode_dsa_signature(signature)
    e = _digest_to_int(digest)
    lhs = pow(DSA_G, s, DSA_P)
    rhs = (r * pow(key.y, e, DSA_P)) % DSA_P
    return 1 if lhs == rhs else 0


class EvpContext:
    """``EVP_MD_CTX``: an incremental digest for sign/verify."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.finalised = False

    def update(self, data: bytes) -> None:
        self._hash.update(data)

    def digest(self) -> bytes:
        return self._hash.digest()


def EVP_VerifyInit() -> EvpContext:
    """Begin an incremental verification digest."""
    return EvpContext()


def EVP_VerifyUpdate(ctx: EvpContext, data: bytes) -> int:
    """Feed data into the verification digest."""
    ctx.update(data)
    return 1


def EVP_VerifyFinal(ctx: EvpContext, sigbuf: bytes, siglen: int, pkey: DsaKey) -> int:
    """The tri-state verification call at the heart of CVE-2008-5077."""
    if siglen != len(sigbuf):
        return -1
    try:
        return DSA_verify(ctx.digest(), sigbuf, pkey)
    except Asn1Error:
        # The exceptional failure: malformed DER (e.g. a forged BIT STRING
        # tag where an INTEGER belongs) is an error, not a mismatch.
        return -1


def EVP_SignFinal(ctx: EvpContext, key: DsaKey) -> bytes:
    """Sign the accumulated digest with the private key."""
    return DSA_sign(ctx.digest(), key)
