"""``s_server``: the TLS test server, with a malicious mode.

"We modified the OpenSSL server to maliciously craft a key-exchange
signature that would cause an exceptional failure" — :class:`SServer` with
``malicious=True`` reproduces the attack: it signs the key exchange
normally, then forges the ASN.1 tag of the signature's second INTEGER to
BIT STRING, so honest verification fails *exceptionally* (-1) rather than
cleanly (0).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from .asn1 import forge_bit_string_tag
from .crypto import (
    DsaKey,
    DSA_generate_key,
    EVP_SignFinal,
    EVP_VerifyInit,
    EVP_VerifyUpdate,
)
from .libssl import KeyExchangeMessage


class SServer:
    """An in-process TLS-ish server serving one HTML document."""

    def __init__(
        self,
        malicious: bool = False,
        document: bytes = b"<html><body>hello over TLS</body></html>",
        seed: int = 0xFEED_BEEF,
    ) -> None:
        self.malicious = malicious
        self.document = document
        self.key = DSA_generate_key(seed)
        self.sessions: Dict[int, bytes] = {}
        self._requests: Dict[int, bytes] = {}

    # -- handshake ----------------------------------------------------------

    def server_hello(self, client_random: bytes) -> Dict[str, Any]:
        server_random = hashlib.sha256(b"server" + client_random).digest()[:16]
        return {
            "server_random": server_random,
            "certificate": self.key.public,
        }

    def server_key_exchange(
        self, client_random: bytes, server_random: bytes
    ) -> KeyExchangeMessage:
        params = hashlib.sha256(b"dh-params" + server_random).digest()
        ctx = EVP_VerifyInit()  # sign and verify share the digest context
        EVP_VerifyUpdate(ctx, client_random + server_random + params)
        signature = EVP_SignFinal(ctx, self.key)
        if self.malicious:
            signature = forge_bit_string_tag(signature)
        return KeyExchangeMessage(params=params, signature=signature)

    def finish_handshake(self, conn_id: int, session_key: bytes) -> None:
        self.sessions[conn_id] = session_key

    # -- application data -----------------------------------------------------

    def receive(self, conn_id: int, data: bytes) -> None:
        self._requests[conn_id] = data

    def respond(self, conn_id: int) -> bytes:
        request = self._requests.get(conn_id, b"")
        if request.startswith(b"GET "):
            return b"HTTP/1.0 200 OK\r\n\r\n" + self.document
        return b"HTTP/1.0 400 Bad Request\r\n\r\n"
