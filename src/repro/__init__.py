"""TESLA: Temporally Enhanced System Logic Assertions — Python reproduction.

A description, analysis and validation tool for *temporal* safety
properties: assertions about events in the past or future relative to the
assertion site, mechanically translated into finite-state automata, woven
into programs by instrumentation and checked at run time by libtesla.

Reproduces Anderson et al., "TESLA: Temporally Enhanced System Logic
Assertions", EuroSys 2014, including the paper's three case-study
substrates, rebuilt in miniature:

* :mod:`repro.kernel` — a FreeBSD-like kernel with the MAC framework;
* :mod:`repro.sslx` — an OpenSSL-like layered TLS stack (CVE-2008-5077);
* :mod:`repro.gui` — a GNUstep-like GUI stack with dynamic dispatch.

Quickstart::

    from repro import (
        TeslaRuntime, Instrumenter, tesla_within, previously, fn, ANY, var,
        instrumentable, tesla_site,
    )

    @instrumentable()
    def security_check(subject, obj, op):
        return 0

    def do_operation(obj, op):
        tesla_site("checked-before-use", o=obj, op=op)

    @instrumentable()
    def enclosing_fn(obj, op):
        security_check("me", obj, op)
        do_operation(obj, op)

    assertion = tesla_within(
        "enclosing_fn",
        previously(fn("security_check", ANY("ptr"), var("o"), var("op")) == 0),
        name="checked-before-use",
    )
    runtime = TeslaRuntime()
    with Instrumenter(runtime) as session:
        session.instrument([assertion])
        enclosing_fn("obj", 42)   # passes; remove the check and it raises
"""

from .core import (
    ANY,
    AssertionRegistry,
    Automaton,
    Context,
    ProgramManifest,
    Ref,
    TemporalAssertion,
    UnitManifest,
    addr,
    analyse_module,
    analyse_program,
    assertion_site,
    atleast,
    bitmask,
    call,
    caller_side,
    combine,
    compile_assertions,
    either,
    eventually,
    field_assign,
    field_increment,
    flags,
    fn,
    one_of,
    optionally,
    previously,
    returned,
    returnfrom,
    strictly,
    tesla_assert,
    tesla_global,
    tesla_perthread,
    tesla_within,
    translate,
    tsequence,
    var,
)
from .errors import (
    AssertionParseError,
    BoundsOverflowError,
    ContextError,
    InstrumentationError,
    ManifestError,
    TemporalAssertionError,
    TemporalViolation,
    TeslaError,
)
from .instrument import (
    BuildSystem,
    CompileUnit,
    Instrumenter,
    TeslaStruct,
    hook_registry,
    instrumentable,
    instrumentable_struct,
    site_registry,
    tesla_site,
)
from .analysis import StaticModel, apply_static_elision
from .session import monitoring
from .runtime import (
    CollectingHandler,
    FailStop,
    LogAndContinue,
    NotificationKind,
    ObjectMonitor,
    TeslaRuntime,
    instrument_object_assertion,
)

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "AssertionRegistry",
    "Automaton",
    "Context",
    "ProgramManifest",
    "Ref",
    "TemporalAssertion",
    "UnitManifest",
    "addr",
    "analyse_module",
    "analyse_program",
    "assertion_site",
    "atleast",
    "bitmask",
    "call",
    "caller_side",
    "combine",
    "compile_assertions",
    "either",
    "eventually",
    "field_assign",
    "field_increment",
    "flags",
    "fn",
    "one_of",
    "optionally",
    "previously",
    "returned",
    "returnfrom",
    "strictly",
    "tesla_assert",
    "tesla_global",
    "tesla_perthread",
    "tesla_within",
    "translate",
    "tsequence",
    "var",
    "AssertionParseError",
    "BoundsOverflowError",
    "ContextError",
    "InstrumentationError",
    "ManifestError",
    "TemporalAssertionError",
    "TemporalViolation",
    "TeslaError",
    "BuildSystem",
    "CompileUnit",
    "Instrumenter",
    "TeslaStruct",
    "hook_registry",
    "instrumentable",
    "instrumentable_struct",
    "site_registry",
    "tesla_site",
    "StaticModel",
    "apply_static_elision",
    "CollectingHandler",
    "FailStop",
    "LogAndContinue",
    "NotificationKind",
    "ObjectMonitor",
    "TeslaRuntime",
    "instrument_object_assertion",
    "monitoring",
    "__version__",
]
