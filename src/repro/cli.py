"""The ``tesla`` command-line interface (``python -m repro``).

Developer-facing plumbing around the analyser, mirroring the original
tool's command-line workflow: inspect assertion sets, dump automata (text
or Graphviz), write and combine ``.tesla`` manifests, and run the static
elision pass — all without writing a Python driver.

Commands
========

``table1``
    Print Table 1 (the kernel assertion sets and their sizes).
``list <set>``
    List the assertions in one kernel set (MF, MS, MP, M, P, All, …).
``automaton <name> [--dot]``
    Translate one kernel assertion and print its automaton (or DOT).
``manifest <path> [--set NAME]``
    Write a kernel assertion set as a ``.tesla`` program manifest.
``show <path>``
    Summarise a ``.tesla`` manifest from disk.
``elide <set>``
    Run the static must-check analysis over a kernel set and report what
    could be discharged, doomed, or must stay monitored.
``lint [suite …]``
    Run tesla-lint over the in-repo assertion corpus (``examples``,
    ``kernel``, ``sslx``, ``gui`` — default all), with text or ``--json``
    output, ``--min-severity`` filtering and a ``--fail-on`` exit-code
    contract (0 clean, 1 warnings under ``--fail-on warning``, 2 errors).
``codegen <suite> [--assertion NAME] [--dump]``
    Show what tesla-jit generates for a suite: a summary row per
    (assertion, dispatch key) — generated vs fallback with the reason —
    or, with ``--dump``, the full generated Python source (0 ok, 2
    unknown suite/assertion).
``replay <journal> [--config …] [--at-seqno N] [--json]``
    Replay a recorded trace journal offline through any runtime
    configuration, cross-checked against the independent LTL oracle
    (0 clean, 1 violations reproduced or oracle disagreement, 2 unusable
    input).  ``--at-seqno`` dumps automaton state mid-window instead.
``bugs``
    List the injectable kernel bugs and their paper provenance.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.manifest import ProgramManifest, UnitManifest, combine
from .core.translate import translate


def _kernel_sets():
    from .kernel.assertions import assertion_sets

    return assertion_sets()


def cmd_table1(args: argparse.Namespace) -> int:
    """Print Table 1 and verify the sizes against the paper."""
    from .kernel.assertions import TABLE1_SIZES

    sets = _kernel_sets()
    print(f"{'Symbol':<8}{'Description':<26}{'Assertions':>10}")
    descriptions = {
        "MF": "MAC (filesystem)",
        "MS": "MAC (sockets)",
        "MP": "MAC (processes)",
        "M": "All MAC assertions",
        "P": "Process lifetimes",
        "All": "All TESLA assertions",
    }
    for symbol in ("MF", "MS", "MP", "M", "P", "All"):
        print(f"{symbol:<8}{descriptions[symbol]:<26}{len(sets[symbol]):>10}")
    for symbol, expected in TABLE1_SIZES.items():
        if len(sets[symbol]) != expected:
            print(f"warning: {symbol} has {len(sets[symbol])}, paper says {expected}")
            return 1
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """List one kernel assertion set with its tags."""
    sets = _kernel_sets()
    if args.set not in sets:
        print(f"unknown set {args.set!r}; known: {', '.join(sorted(sets))}")
        return 2
    for assertion in sets[args.set]:
        tags = ",".join(assertion.tags)
        print(f"{assertion.name:<40} [{tags}]")
    return 0


def _find_assertion(name: str):
    for assertions in _kernel_sets().values():
        for assertion in assertions:
            if assertion.name == name:
                return assertion
    return None


def cmd_automaton(args: argparse.Namespace) -> int:
    """Translate one kernel assertion and print it (text or DOT)."""
    assertion = _find_assertion(args.name)
    if assertion is None:
        print(f"no kernel assertion named {args.name!r} (try 'list All')")
        return 2
    automaton = translate(assertion)
    if args.dot:
        from .introspect.weights import WeightedEdge, WeightedGraph, to_dot

        graph = WeightedGraph(
            automaton=automaton.name,
            n_states=automaton.n_states,
            start=automaton.start,
            accept=automaton.accept,
        )
        from .core.automaton import TransitionKind

        for transition in automaton.transitions:
            if transition.symbol is not None and transition.kind in (
                TransitionKind.EVENT,
                TransitionKind.SITE,
            ):
                label = automaton.symbols[transition.symbol].describe()
            else:
                label = f"«{transition.kind.value}»"
            graph.edges.append(
                WeightedEdge(
                    src=transition.src,
                    dst=transition.dst,
                    label=label,
                    kind=transition.kind.value,
                    weight=0,
                )
            )
        print(to_dot(graph, scale_weights=False))
    else:
        print(assertion.describe())
        print()
        print(automaton.describe())
    return 0


def cmd_manifest(args: argparse.Namespace) -> int:
    """Write a kernel assertion set to disk as a .tesla manifest."""
    sets = _kernel_sets()
    if args.set not in sets:
        print(f"unknown set {args.set!r}; known: {', '.join(sorted(sets))}")
        return 2
    manifest = combine(
        [UnitManifest(unit=f"kernel.{args.set}", assertions=sets[args.set])]
    )
    path = manifest.save(args.path)
    targets = manifest.instrumentation_targets()
    print(f"wrote {len(manifest.assertions)} assertions to {path}")
    print(f"instrumentation targets: {len(targets)} functions")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """Summarise a .tesla manifest: units, assertions, hook targets."""
    manifest = ProgramManifest.load(args.path)
    assertions = manifest.assertions
    print(f"{args.path}: {len(manifest.units)} unit(s), {len(assertions)} assertion(s)")
    for unit in manifest.units:
        print(f"  unit {unit.unit}: {len(unit.assertions)} assertion(s)")
    targets = manifest.instrumentation_targets()
    print(f"functions needing instrumentation: {len(targets)}")
    for fn_name in sorted(targets)[: args.limit]:
        print(f"  {fn_name}  <- {', '.join(targets[fn_name][:4])}")
    return 0


def cmd_elide(args: argparse.Namespace) -> int:
    """Run the static must-check analysis over a kernel set."""
    import repro.kernel.mac.checks
    import repro.kernel.net.select
    import repro.kernel.net.socket
    import repro.kernel.process
    import repro.kernel.procfs
    import repro.kernel.syscalls
    import repro.kernel.vfs.ufs
    import repro.kernel.vfs.vfs_ops

    from .analysis import StaticModel, apply_static_elision

    sets = _kernel_sets()
    if args.set not in sets:
        print(f"unknown set {args.set!r}; known: {', '.join(sorted(sets))}")
        return 2
    model = StaticModel.from_modules(
        [
            repro.kernel.mac.checks,
            repro.kernel.net.select,
            repro.kernel.net.socket,
            repro.kernel.process,
            repro.kernel.procfs,
            repro.kernel.syscalls,
            repro.kernel.vfs.ufs,
            repro.kernel.vfs.vfs_ops,
        ]
    )
    report = apply_static_elision(model, sets[args.set])
    print(report.summary())
    return 1 if report.doomed else 0


def _check_suites(suites) -> "Union[List[str], int]":
    """Validate suite names against the corpus; 2 (exit code) if unknown."""
    from .analysis.lint import available_suites

    known = available_suites()
    names = list(suites) or list(known)
    unknown = [name for name in names if name not in known]
    if unknown:
        print(
            f"unknown suite(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(known)}"
        )
        return 2
    return names


def _check_fail_on(value: str) -> Optional[str]:
    """Validate ``--fail-on``: a severity word, ``never``, or a TESLA
    code from the table.  Returns an error message, or ``None`` if ok."""
    from .analysis import CODES

    if value in ("error", "warning", "never") or value in CODES:
        return None
    return (
        f"--fail-on must be 'error', 'warning', 'never' or a known "
        f"TESLA code (TESLA001..TESLA{len(CODES):03d}), got {value!r}"
    )


def _check_min_severity(value: str) -> "Union[str, Tuple[None, str]]":
    """Resolve ``--min-severity``: a severity word or a TESLA code (the
    code's default severity).  Returns the severity value, or a
    ``(None, message)`` pair on an unknown value."""
    from .analysis import CODES

    if value in ("info", "warning", "error"):
        return value
    if value in CODES:
        return CODES[value][0].value
    return (
        None,
        f"--min-severity must be 'info', 'warning', 'error' or a known "
        f"TESLA code, got {value!r}",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Run tesla-lint over assertion suites; exit per ``--fail-on``."""
    from .analysis import Severity
    from .analysis.lint import lint_corpus

    names = _check_suites(args.suites)
    if isinstance(names, int):
        return names
    problem = _check_fail_on(args.fail_on)
    if problem is not None:
        print(problem)
        return 2
    min_severity = _check_min_severity(args.min_severity)
    if isinstance(min_severity, tuple):
        print(min_severity[1])
        return 2
    report = lint_corpus(names)
    if args.json:
        print(report.dumps())
    else:
        print(report.format(min_severity=Severity(min_severity)))
    return report.exit_code(args.fail_on)


def cmd_prove(args: argparse.Namespace) -> int:
    """Run tesla-prove over assertion suites; exit per ``--fail-on``.

    Mirrors ``lint``'s contract: text or ``--json`` (same schema
    version), exit 0 when clean, 2 on VIOLATED results (TESLA014) or on
    a requested ``--fail-on`` code, 2 on bad arguments.
    """
    from .analysis import Severity
    from .analysis.lint import prove_corpus

    names = _check_suites(args.suites)
    if isinstance(names, int):
        return names
    problem = _check_fail_on(args.fail_on)
    if problem is not None:
        print(problem)
        return 2
    min_severity = _check_min_severity(args.min_severity)
    if isinstance(min_severity, tuple):
        print(min_severity[1])
        return 2
    report = prove_corpus(names)
    if args.json:
        print(report.dumps())
    else:
        print(report.format(min_severity=Severity(min_severity)))
    return report.exit_code(args.fail_on)


def cmd_codegen(args: argparse.Namespace) -> int:
    """Show what tesla-jit generates for an assertion suite.

    Default output is one summary row per (assertion, dispatch key):
    generated or fallback (with the generator's reason) plus elision
    counts.  ``--dump`` prints the full generated source — the
    debuggability surface for "what does my assertion actually run".
    Exit codes: 0 ok, 2 unknown suite or assertion.
    """
    from .analysis.lint import available_suites, lint_assertions, load_suite
    from .core.translate import translate_all
    from .runtime.codegen import CODEGEN_VERSION, CodegenFacts, dump_sources

    known = available_suites()
    if args.suite not in known:
        print(f"unknown suite {args.suite!r}; known: {', '.join(known)}")
        return 2
    assertions, model = load_suite(args.suite)
    if args.assertion is not None:
        assertions = [a for a in assertions if a.name == args.assertion]
        if not assertions:
            print(
                f"no assertion named {args.assertion!r} in suite "
                f"{args.suite!r} (try 'lint {args.suite}')"
            )
            return 2
    # The same lint handoff the runtime uses: suite-wide facts decide
    # which guards the generator may elide.
    facts = CodegenFacts.from_report(
        lint_assertions(assertions, program=model)
    )
    if not args.dump:
        print(
            f"{'assertion':<36} {'dispatch key':<30} "
            f"{'status':<10} {'elided':>7}"
        )
    for automaton in translate_all(assertions):
        for key, gen in dump_sources(automaton, facts):
            label = f"{key[0].value}:{key[1]}"
            if gen.fallback_reason is not None:
                if args.dump:
                    print(
                        f"# tesla-jit v{CODEGEN_VERSION} "
                        f"automaton={automaton.name} key={label} "
                        f"FALLBACK: {gen.fallback_reason}"
                    )
                else:
                    print(
                        f"{automaton.name:<36} {label:<30} "
                        f"{'fallback':<10} {gen.fallback_reason}"
                    )
                continue
            if args.dump:
                print(gen.source)
                print()
            else:
                elided = gen.elided_guards + gen.elided_transitions
                print(
                    f"{automaton.name:<36} {label:<30} "
                    f"{'generated':<10} {elided:>7}"
                )
    return 0


def cmd_governor(args: argparse.Namespace) -> int:
    """Demo the adaptive overhead governor on a synthetic workload.

    Installs a handful of assertion classes with deliberately skewed
    evaluation cost, drives direct dispatch under ``--budget``, and dumps
    the governor's status: measured spend, the per-assertion cost ranking
    with each class's shedding-ladder rung, and the decision history.
    Exit codes: 0 ok, 2 unusable ``--budget``.
    """
    import json as _json

    from .core.dsl import ANY, fn, previously, tesla_within
    from .core.events import assertion_site_event, call_event, return_event
    from .introspect import format_health, health_report
    from .runtime.manager import TeslaRuntime
    from .runtime.notify import LogAndContinue

    try:
        runtime = TeslaRuntime(
            policy=LogAndContinue(), overhead_budget=args.budget
        )
    except ValueError as exc:
        print(f"governor: {exc}")
        return 2
    classes = 4
    runtime.install_assertions(
        [
            tesla_within(
                "gov_bound",
                previously(fn(f"gov_chk{i}", ANY("c")) == 0),
                name=f"gov_cls{i}",
            )
            for i in range(classes)
        ]
    )
    # Skewed load: class 0 sees 8 body events per bound occurrence, the
    # rest see one — the governor should find and degrade the hot one
    # first when the budget is tight.
    for op in range(args.ops):
        runtime.handle_event(call_event("gov_bound", ()))
        for _ in range(8):
            runtime.handle_event(return_event("gov_chk0", ("c",), 0))
        for i in range(1, classes):
            runtime.handle_event(return_event(f"gov_chk{i}", ("c",), 0))
        if op % 16 == 0:
            runtime.handle_event(
                assertion_site_event("gov_cls0", {})
            )
        runtime.handle_event(return_event("gov_bound", (), None))
    report = runtime.governor.report()
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"governor demo: {args.ops} ops, {runtime.events_processed} "
        f"events, budget {args.budget:.1%}"
    )
    print(format_health(health_report(runtime)))
    if report["transitions"]:
        print("  decisions (decision#, class, from, to):")
        for row in report["transitions"]:
            print(f"    #{row[0]:<6} {row[1]:<12} {row[2]} -> {row[3]}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a recorded trace journal offline (DESIGN §5.6).

    Exit codes: 0 — clean replay (or an empty journal: a no-op), 1 —
    violations reproduced or the LTL oracle disagreed with the replay,
    2 — unusable input (corrupt journal, unknown config, no assertions).
    """
    import json as json_module

    from .errors import JournalError
    from .replay import LTLUnsupported, ReplayEngine, ltl_verdicts
    from .runtime.journal import read_journal

    try:
        journal = read_journal(args.path, tolerate_tail=args.tolerate_tail)
    except (JournalError, OSError) as exc:
        print(f"error: {exc}")
        return 2

    assertions = None
    if args.manifest is not None:
        try:
            assertions = ProgramManifest.load(args.manifest).assertions
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load manifest {args.manifest}: {exc}")
            return 2

    try:
        engine = ReplayEngine(journal, assertions=assertions)
    except JournalError as exc:
        print(f"error: {exc}")
        return 2

    if args.at_seqno is not None:
        try:
            state = engine.state_at(args.at_seqno, config=args.config)
        except JournalError as exc:
            print(f"error: {exc}")
            return 2
        if args.json:
            print(json_module.dumps(state, indent=2, sort_keys=True))
        else:
            print(
                f"state at seqno {state['seqno']} "
                f"({state['events_replayed']} event(s) replayed, "
                f"config {state['config']}):"
            )
            for cls in state["classes"]:
                print(
                    f"  {cls['automaton']} [{cls['context']}] "
                    f"active={cls['active']} accepts={cls['accepts']} "
                    f"errors={cls['errors']} sites={cls['sites_reached']}"
                )
                for instance in cls["instances"]:
                    binding = ", ".join(
                        f"{key}={value}"
                        for key, value in instance["binding"].items()
                    )
                    print(
                        f"    {instance['name']}: states={instance['states']} "
                        f"saw_site={instance['saw_site']} "
                        f"binding={{{binding}}}"
                    )
        return 0

    try:
        result = engine.run(config=args.config)
    except JournalError as exc:
        print(f"error: {exc}")
        return 2

    oracle_report: Optional[dict] = None
    agree = True
    if not args.no_oracle and engine.assertions:
        oracle_report = {}
        try:
            verdicts = ltl_verdicts(engine.assertions, engine.slots)
        except LTLUnsupported as exc:
            oracle_report = {"skipped": str(exc)}
        else:
            for name, verdict in verdicts.items():
                replayed = result.classes.get(name)
                matches = (
                    replayed is not None
                    and replayed.accepts == verdict.accepts
                    and replayed.errors == verdict.errors
                    and result.violations.get(name, [])
                    == verdict.reason_stream()
                )
                agree = agree and matches
                oracle_report[name] = {
                    "accepts": verdict.accepts,
                    "errors": verdict.errors,
                    "satisfied_sites": verdict.satisfied_sites,
                    "violations": [
                        {"seqno": v.seqno, "kind": v.kind}
                        for v in verdict.violations
                    ],
                    "agrees_with_replay": matches,
                }

    status = 0
    if not result.clean:
        status = 1
    if not agree:
        status = 1

    if args.json:
        payload = {
            "journal": {
                "version": journal.version,
                "events": len(journal.slots),
                "assertions": len(engine.assertions),
                "clean_close": journal.clean_close,
                "tail_error": journal.tail_error,
                "bytes": journal.byte_size,
            },
            "replay": result.to_json(),
            "oracle": oracle_report,
            "oracle_agrees": agree,
            "status": status,
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return status

    close = "clean close" if journal.clean_close else "NO clean close"
    print(
        f"journal: {len(journal.slots)} event(s), "
        f"{len(engine.assertions)} assertion(s), "
        f"version {journal.version}, {close}"
    )
    if journal.tail_error:
        print(f"  tail: {journal.tail_error}")
    if not journal.slots:
        print("empty journal: nothing to replay")
        return 0
    print(f"replay [{result.config}]: {result.events} event(s), "
          f"{result.threads} thread(s)")
    for name, verdict in sorted(result.classes.items()):
        print(
            f"  {name}: accepts={verdict.accepts} errors={verdict.errors} "
            f"sites={verdict.sites_reached} live={verdict.live}"
        )
        for reason in result.violations.get(name, []):
            print(f"    violation: {reason}")
    if oracle_report is not None:
        if "skipped" in oracle_report:
            print(f"oracle: skipped ({oracle_report['skipped']})")
        else:
            for name, entry in sorted(oracle_report.items()):
                mark = "agrees" if entry["agrees_with_replay"] else "DISAGREES"
                print(
                    f"oracle: {name} accepts={entry['accepts']} "
                    f"errors={entry['errors']} -> {mark}"
                )
    if status == 0:
        print("verdict: clean")
    elif not agree:
        print("verdict: ORACLE DISAGREEMENT (replay and LTL reading differ)")
    else:
        total = sum(len(v) for v in result.violations.values())
        errors = sum(v.errors for v in result.classes.values())
        print(f"verdict: {max(total, errors)} violation(s) reproduced")
    return status


def cmd_bugs(args: argparse.Namespace) -> int:
    """List the injectable kernel bugs and their paper provenance."""
    from .kernel.bugs import KNOWN_BUGS, bugs

    provenance = {
        "kqueue_missing_mac_check": "§3.5.2: poll checked for select/poll but not kqueue",
        "sopoll_wrong_cred": "§3.5.2: cached file_cred passed instead of active_cred",
        "sugid_not_set": "§3.5.2: credential change without P_SUGID (eventually)",
        "kld_check_skipped": "figure 7: module load is an open-like op with its own hook",
        "extattr_wrong_check": "figure 7: extattr enforcement differs per code path",
    }
    for name in KNOWN_BUGS:
        state = "ON " if bugs.enabled(name) else "off"
        print(f"[{state}] {name:<28} {provenance.get(name, '')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TESLA reproduction: analyser and manifest tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1").set_defaults(func=cmd_table1)

    list_parser = sub.add_parser("list", help="list a kernel assertion set")
    list_parser.add_argument("set")
    list_parser.set_defaults(func=cmd_list)

    automaton_parser = sub.add_parser(
        "automaton", help="print one kernel assertion's automaton"
    )
    automaton_parser.add_argument("name")
    automaton_parser.add_argument("--dot", action="store_true")
    automaton_parser.set_defaults(func=cmd_automaton)

    manifest_parser = sub.add_parser(
        "manifest", help="write a kernel set as a .tesla manifest"
    )
    manifest_parser.add_argument("path", type=Path)
    manifest_parser.add_argument("--set", default="All")
    manifest_parser.set_defaults(func=cmd_manifest)

    show_parser = sub.add_parser("show", help="summarise a .tesla manifest")
    show_parser.add_argument("path", type=Path)
    show_parser.add_argument("--limit", type=int, default=10)
    show_parser.set_defaults(func=cmd_show)

    elide_parser = sub.add_parser(
        "elide", help="run static elision over a kernel set"
    )
    elide_parser.add_argument("set")
    elide_parser.set_defaults(func=cmd_elide)

    lint_parser = sub.add_parser(
        "lint", help="statically verify assertion suites (tesla-lint)"
    )
    lint_parser.add_argument(
        "suites",
        nargs="*",
        metavar="suite",
        help="suites to lint (default: all of examples, kernel, sslx, gui)",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit the schema-versioned JSON"
    )
    lint_parser.add_argument(
        "--fail-on",
        default="error",
        dest="fail_on",
        help="exit non-zero on: errors (default), also warnings, never, "
        "or whenever a specific TESLA code fires (e.g. TESLA014)",
    )
    lint_parser.add_argument(
        "--min-severity",
        default="info",
        dest="min_severity",
        help="hide text findings below this severity (a severity word or "
        "a TESLA code, meaning that code's default severity)",
    )
    lint_parser.set_defaults(func=cmd_lint)

    prove_parser = sub.add_parser(
        "prove", help="statically discharge assertion suites (tesla-prove)"
    )
    prove_parser.add_argument(
        "suites",
        nargs="*",
        metavar="suite",
        help="suites to prove (default: the whole corpus)",
    )
    prove_parser.add_argument(
        "--json", action="store_true", help="emit the schema-versioned JSON"
    )
    prove_parser.add_argument(
        "--fail-on",
        default="error",
        dest="fail_on",
        help="exit non-zero on: errors/VIOLATED (default), also warnings, "
        "never, or whenever a specific TESLA code fires",
    )
    prove_parser.add_argument(
        "--min-severity",
        default="info",
        dest="min_severity",
        help="hide text findings below this severity (word or TESLA code)",
    )
    prove_parser.set_defaults(func=cmd_prove)

    codegen_parser = sub.add_parser(
        "codegen", help="show tesla-jit generated code for a suite"
    )
    codegen_parser.add_argument(
        "suite",
        help="assertion suite (examples, kernel, sslx, gui)",
    )
    codegen_parser.add_argument(
        "--assertion",
        default=None,
        help="restrict to one assertion by name",
    )
    codegen_parser.add_argument(
        "--dump",
        action="store_true",
        help="print full generated source instead of the summary table",
    )
    codegen_parser.set_defaults(func=cmd_codegen)

    replay_parser = sub.add_parser(
        "replay", help="replay a recorded trace journal offline"
    )
    replay_parser.add_argument("path", type=Path, help="journal file")
    replay_parser.add_argument(
        "--config",
        default="naive",
        help="replay configuration: naive (default), lazy, compiled, deferred",
    )
    replay_parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        help="load assertions from a .tesla manifest instead of the journal",
    )
    replay_parser.add_argument(
        "--at-seqno",
        type=int,
        default=None,
        dest="at_seqno",
        help="stop at this seqno and dump automaton state instead of verdicts",
    )
    replay_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    replay_parser.add_argument(
        "--no-oracle",
        action="store_true",
        dest="no_oracle",
        help="skip the independent LTL-oracle cross-check",
    )
    replay_parser.add_argument(
        "--tolerate-tail",
        action="store_true",
        dest="tolerate_tail",
        help="recover the valid prefix of a truncated/corrupt journal",
    )
    replay_parser.set_defaults(func=cmd_replay)

    governor_parser = sub.add_parser(
        "governor",
        help="demo the adaptive overhead governor and dump its status",
    )
    governor_parser.add_argument(
        "--budget",
        type=float,
        default=0.05,
        help="monitoring budget as a fraction of wall time (default 0.05)",
    )
    governor_parser.add_argument(
        "--ops",
        type=int,
        default=3000,
        help="synthetic workload size in operations (default 3000)",
    )
    governor_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw governor report as JSON",
    )
    governor_parser.set_defaults(func=cmd_governor)

    sub.add_parser("bugs", help="list injectable kernel bugs").set_defaults(
        func=cmd_bugs
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
