"""Windows, the run loop, and the Xnee-style event replayer.

:func:`run_loop_iteration` is the temporal bound of the figure 8 tracing
assertion: "our automata were simple, stating that in between two
instrumentation points, which we placed at the start and end of a run-loop
iteration, some (or none) of the API methods should have been called."

:class:`XneeReplayer` stands in for GNU Xnee: it replays a deterministic
script of synthetic X11 events (motion, press, release, expose) into the
application, driving redraws whose durations figure 14b reports.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..instrument.hooks import instrumentable, tesla_site
from .backend import NewBackend, OldBackend
from .cursor import IBEAM, POINTING_HAND, NSCursor, TrackingManager
from .geometry import NSMakeRect, NSPoint, NSRect
from .graphics import GraphicsContext
from .runtime import NSObject, msg_send, selector
from .views import (
    NSBox,
    NSButton,
    NSImageView,
    NSSlider,
    NSTableView,
    NSTextField,
    NSView,
)
from .widgets import NSProgressIndicator, NSScrollView


class NSWindow(NSObject):
    """A top-level window: content view + tracking + back-end."""

    def __init__(
        self,
        frame: NSRect,
        backend: Any = None,
        buggy_event_order: bool = False,
    ) -> None:
        self.frame = frame
        self.backend = backend if backend is not None else OldBackend()
        self.content_view = NSView(NSMakeRect(0, 0, frame.width, frame.height))
        self.content_view.window = self
        self.tracking = TrackingManager(buggy_event_order=buggy_event_order)
        #: Named tracking-rect tags, filled in by scene builders.
        self.tracking_tags: Dict[str, int] = {}
        self.last_context: Optional[GraphicsContext] = None

    @selector("contentView")
    def get_content_view(self) -> NSView:
        return self.content_view

    @selector("display")
    def display(self) -> GraphicsContext:
        """Redraw the whole window; returns the context for inspection."""
        ctx = GraphicsContext(self.backend)
        msg_send(self.content_view, "display:", ctx)
        self.last_context = ctx
        return ctx

    @selector("sendEvent:")
    def send_event(self, event: "XEvent") -> None:
        if event.kind == "motion":
            msg_send(self.tracking, "mouseMovedTo:", event.point)
            hit = msg_send(self.content_view, "hitTest:", event.point)
            if hit is not None:
                msg_send(hit, "mouseMoved:", event.point)
        elif event.kind == "press":
            hit = msg_send(self.content_view, "hitTest:", event.point)
            if hit is not None:
                msg_send(hit, "mouseDown:", event.point)
        elif event.kind == "release":
            hit = msg_send(self.content_view, "hitTest:", event.point)
            if hit is not None:
                msg_send(hit, "mouseUp:", event.point)
        elif event.kind == "expose":
            msg_send(self.content_view, "setNeedsDisplay:", True)


class XEvent:
    """A synthetic X11-ish input event."""

    __slots__ = ("kind", "point")

    def __init__(self, kind: str, x: float = 0.0, y: float = 0.0) -> None:
        self.kind = kind
        self.point = NSPoint(x, y)

    def __repr__(self) -> str:
        return f"<XEvent {self.kind} ({self.point.x},{self.point.y})>"


@instrumentable()
def run_loop_iteration(window: NSWindow, events: Sequence[XEvent]) -> bool:
    """One turn of the run loop: deliver events, redraw if needed.

    Entry and exit are the figure 8 instrumentation points; the trace site
    fires at the end of the iteration.  Returns True when a redraw ran.
    """
    for event in events:
        msg_send(window, "sendEvent:", event)
    redrew = False
    if window.content_view.needs_display:
        msg_send(window, "display")
        redrew = True
    tesla_site("gnustep.trace")
    return redrew


def build_demo_window(
    backend: Any = None, buggy_event_order: bool = False
) -> NSWindow:
    """A window with enough controls to exercise the instrumented API:
    a titled box of buttons, text fields, a slider, an image well and a
    zebra-striped table (the non-LIFO save/restore trigger)."""
    window = NSWindow(NSMakeRect(0, 0, 400, 300), backend, buggy_event_order)
    content = window.content_view

    box = NSBox(NSMakeRect(10, 10, 180, 130), title="Controls")
    ok_button = NSButton(NSMakeRect(10, 20, 70, 24), value="OK")
    cancel = NSButton(NSMakeRect(90, 20, 70, 24), value="Cancel")
    name_field = NSTextField(NSMakeRect(10, 55, 150, 22), value="name")
    volume = NSSlider(NSMakeRect(10, 90, 150, 20), value=0.5)
    msg_send(box, "addSubview:", ok_button)
    msg_send(box, "addSubview:", cancel)
    msg_send(box, "addSubview:", name_field)
    msg_send(box, "addSubview:", volume)

    icon = NSImageView(NSMakeRect(200, 10, 48, 48), image_name="folder")
    table = NSTableView(
        NSMakeRect(10, 150, 380, 126),
        rows=[[f"r{i}c0", f"r{i}c1", f"r{i}c2"] for i in range(7)],
    )
    progress = NSProgressIndicator(NSMakeRect(260, 10, 130, 14))
    msg_send(progress, "setDoubleValue:", 40.0)
    scroll = NSScrollView(NSMakeRect(200, 70, 190, 70))
    log_view = NSView(NSMakeRect(0, 0, 178, 140))
    for line in range(6):
        msg_send(
            log_view, "addSubview:",
            NSTextField(NSMakeRect(2, line * 22, 170, 20), value=f"log {line}"),
        )
    msg_send(scroll, "setDocumentView:", log_view)
    msg_send(content, "addSubview:", box)
    msg_send(content, "addSubview:", icon)
    msg_send(content, "addSubview:", progress)
    msg_send(content, "addSubview:", scroll)
    msg_send(content, "addSubview:", table)

    # Tracking rectangles: hovering the buttons shows a pointing hand,
    # hovering the text field an I-beam.  Tags are kept on the window so
    # scenarios (and tests) can invalidate specific rectangles.
    window.tracking_tags = {
        "ok": msg_send(
            window.tracking, "addTrackingRect:cursor:view:",
            NSMakeRect(20, 30, 70, 24), POINTING_HAND, ok_button,
        ),
        "cancel": msg_send(
            window.tracking, "addTrackingRect:cursor:view:",
            NSMakeRect(100, 30, 70, 24), POINTING_HAND, cancel,
        ),
        "field": msg_send(
            window.tracking, "addTrackingRect:cursor:view:",
            NSMakeRect(20, 65, 150, 22), IBEAM, name_field,
        ),
    }
    return window


def cursor_bug_scenario(window: NSWindow) -> int:
    """Drive the cursor push/pop bug (or its absence) on ``window``.

    Hover the OK button, invalidate its tracking rectangle (the view
    "moved"), keep hovering, then leave.  With correct event ordering the
    cursor stack nets to zero; with ``buggy_event_order`` the invalidation
    lands *after* the next inspection, the entered flag is lost, the same
    cursor is pushed twice and popped once.  Returns the final stack depth.
    """
    NSCursor.reset_stack()
    run_loop_iteration(window, [XEvent("motion", 40, 40)])   # enter OK: push
    msg_send(
        window.tracking, "invalidateTrackingRect:newRect:",
        window.tracking_tags["ok"], NSMakeRect(20, 30, 70, 24),
    )
    run_loop_iteration(window, [XEvent("motion", 41, 41)])   # inspect first
    run_loop_iteration(window, [XEvent("motion", 42, 42)])   # duplicate push?
    run_loop_iteration(window, [XEvent("motion", 300, 200)]) # leave: one pop
    return NSCursor.stack_depth()


class XneeReplayer:
    """Replays a deterministic input script, batched per loop iteration."""

    def __init__(self, window: NSWindow) -> None:
        self.window = window

    def script(self, hover_cycles: int = 3) -> List[List[XEvent]]:
        """A dialog-interaction script: sweep the cursor across the
        controls (entering and leaving tracking rects), click OK, drag the
        slider, and force a couple of full exposes."""
        batches: List[List[XEvent]] = []
        for _ in range(hover_cycles):
            # Sweep across: outside -> OK button -> cancel -> field -> out.
            batches.append([XEvent("motion", 5, 5)])
            batches.append([XEvent("motion", 40, 40)])     # enter OK rect
            batches.append([XEvent("motion", 120, 40)])    # OK -> cancel
            batches.append([XEvent("motion", 60, 75)])     # cancel -> field
            batches.append([XEvent("motion", 300, 200)])   # leave them all
        batches.append([XEvent("press", 40, 40), XEvent("release", 40, 40)])
        batches.append([XEvent("press", 60, 100), XEvent("release", 60, 100)])
        batches.append([XEvent("expose")])
        batches.append([XEvent("motion", 5, 5), XEvent("expose")])
        return batches

    def replay(self, hover_cycles: int = 3) -> Dict[str, int]:
        """Run the script through the run loop; returns simple statistics."""
        redraws = 0
        iterations = 0
        for batch in self.script(hover_cycles):
            if run_loop_iteration(self.window, batch):
                redraws += 1
            iterations += 1
        return {
            "iterations": iterations,
            "redraws": redraws,
            "cursor_stack_depth": NSCursor.stack_depth(),
        }
