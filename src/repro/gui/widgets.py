"""Additional AppKit-style widgets: scrolling, menus, matrices, indicators.

The GNUstep investigation instrumented "roughly 110 methods, some in the
back end and some in the library"; this module fills the view library out
to a comparable selector surface.  Everything dispatches through
:func:`~repro.gui.runtime.msg_send`, so the figure 8 tracing assertion and
the interposition table see it all.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from .geometry import NSMakeRect, NSPoint, NSRect
from .graphics import BLACK, GraphicsContext
from .runtime import NSObject, msg_send, selector
from .views import BLUE, GRAY, LIGHT, NSCell, NSControl, NSView


class NSClipView(NSView):
    """The scrolled-content window: translates its document by the scroll
    offset during drawing."""

    def __init__(self, frame: NSRect) -> None:
        super().__init__(frame)
        self.offset = NSPoint(0, 0)

    @selector("scrollToPoint:")
    def scroll_to_point(self, point: NSPoint) -> None:
        self.offset = point
        msg_send(self, "setNeedsDisplay:", True)

    @selector("documentVisibleRect")
    def document_visible_rect(self) -> NSRect:
        return NSMakeRect(
            self.offset.x, self.offset.y, self.frame.width, self.frame.height
        )

    @selector("display:")
    def display(self, ctx: GraphicsContext) -> None:
        token = msg_send(self, "saveGraphicsState:", ctx)
        ctx.translate(self.frame.x - self.offset.x, self.frame.y - self.offset.y)
        for subview in self.subviews:
            msg_send(subview, "display:", ctx)
        msg_send(self, "restoreGraphicsState:", ctx, token)
        self.needs_display = False


class NSScroller(NSControl):
    """A scroll bar: a float position in [0, 1]."""

    @selector("scrollPosition")
    def scroll_position(self) -> float:
        return float(msg_send(self.cell, "objectValue") or 0.0)

    @selector("setScrollPosition:")
    def set_scroll_position(self, position: float) -> None:
        msg_send(self.cell, "setObjectValue:", max(0.0, min(1.0, position)))
        msg_send(self, "setNeedsDisplay:", True)

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        ctx.set_color(LIGHT)
        ctx.fill_rect(rect)
        knob_y = rect.y + msg_send(self, "scrollPosition") * (rect.height - 10)
        ctx.set_color(GRAY)
        ctx.fill_rect(NSMakeRect(rect.x + 1, knob_y, rect.width - 2, 10))


class NSScrollView(NSView):
    """Clip view + scroller, wired together."""

    def __init__(self, frame: NSRect) -> None:
        super().__init__(frame)
        self.clip_view = NSClipView(
            NSMakeRect(0, 0, frame.width - 12, frame.height)
        )
        self.scroller = NSScroller(
            NSMakeRect(frame.width - 12, 0, 12, frame.height), value=0.0
        )
        msg_send(self, "addSubview:", self.clip_view)
        msg_send(self, "addSubview:", self.scroller)
        self.document_height = frame.height

    @selector("setDocumentView:")
    def set_document_view(self, view: NSView) -> None:
        msg_send(self.clip_view, "addSubview:", view)
        self.document_height = max(self.frame.height, view.frame.max_y)

    @selector("scrollTo:")
    def scroll_to(self, fraction: float) -> None:
        msg_send(self.scroller, "setScrollPosition:", fraction)
        span = max(0.0, self.document_height - self.clip_view.frame.height)
        msg_send(self.clip_view, "scrollToPoint:", NSPoint(0, fraction * span))


class NSMenuItem(NSObject):
    """One entry in a menu: a title, an action and an enabled flag."""

    def __init__(self, title: str, action: Optional[str] = None, target: Any = None) -> None:
        self.title = title
        self.action = action
        self.target = target
        self.enabled = True
        self.submenu: Optional["NSMenu"] = None

    @selector("title")
    def get_title(self) -> str:
        return self.title

    @selector("setEnabled:")
    def set_enabled(self, flag: bool) -> None:
        self.enabled = flag

    @selector("isEnabled")
    def is_enabled(self) -> bool:
        return self.enabled

    @selector("setSubmenu:")
    def set_submenu(self, menu: "NSMenu") -> None:
        self.submenu = menu


class NSMenu(NSObject):
    """A menu: ordered items, selectable by title path."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.items: List[NSMenuItem] = []

    @selector("addItem:")
    def add_item(self, item: NSMenuItem) -> NSMenuItem:
        self.items.append(item)
        return item

    @selector("itemWithTitle:")
    def item_with_title(self, title: str) -> Optional[NSMenuItem]:
        for item in self.items:
            if item.title == title:
                return item
        return None

    @selector("numberOfItems")
    def number_of_items(self) -> int:
        return len(self.items)

    @selector("performActionForItemWithTitle:")
    def perform_action(self, title: str) -> bool:
        item = msg_send(self, "itemWithTitle:", title)
        if item is None or not item.enabled:
            return False
        if item.target is not None and item.action is not None:
            msg_send(item.target, item.action, item)
        return True


class NSProgressIndicator(NSView):
    """A determinate progress bar."""

    def __init__(self, frame: NSRect) -> None:
        super().__init__(frame)
        self.value = 0.0
        self.max_value = 100.0

    @selector("setDoubleValue:")
    def set_double_value(self, value: float) -> None:
        self.value = max(0.0, min(self.max_value, value))
        msg_send(self, "setNeedsDisplay:", True)

    @selector("doubleValue")
    def double_value(self) -> float:
        return self.value

    @selector("incrementBy:")
    def increment_by(self, delta: float) -> None:
        msg_send(self, "setDoubleValue:", self.value + delta)

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        token = ctx.save_gstate()
        ctx.set_color(LIGHT)
        ctx.fill_rect(rect)
        fraction = self.value / self.max_value if self.max_value else 0.0
        ctx.set_color(BLUE)
        ctx.fill_rect(NSMakeRect(rect.x, rect.y, rect.width * fraction, rect.height))
        ctx.set_color(BLACK)
        ctx.stroke_rect(rect)
        ctx.restore_gstate(token)


class NSMatrix(NSView):
    """A grid of cells sharing one prototype — radio groups, keypads.

    Like NSTableView, it exercises the delegated-drawing pattern: the
    matrix owns geometry, the cells own appearance.
    """

    def __init__(self, frame: NSRect, rows: int, columns: int, cell_factory: Callable[[], NSCell]) -> None:
        super().__init__(frame)
        self.rows = rows
        self.columns = columns
        self.cells: List[List[NSCell]] = [
            [cell_factory() for _ in range(columns)] for _ in range(rows)
        ]
        self.selected: Optional[Tuple[int, int]] = None

    @selector("cellAtRow:column:")
    def cell_at(self, row: int, column: int) -> Optional[NSCell]:
        if 0 <= row < self.rows and 0 <= column < self.columns:
            return self.cells[row][column]
        return None

    @selector("cellFrameAtRow:column:")
    def cell_frame_at(self, row: int, column: int) -> NSRect:
        width = self.frame.width / self.columns
        height = self.frame.height / self.rows
        return NSMakeRect(column * width, row * height, width, height)

    @selector("selectCellAtRow:column:")
    def select_cell_at(self, row: int, column: int) -> None:
        if self.selected is not None:
            old = msg_send(self, "cellAtRow:column:", *self.selected)
            msg_send(old, "setHighlighted:", False)
        cell = msg_send(self, "cellAtRow:column:", row, column)
        if cell is not None:
            msg_send(cell, "setHighlighted:", True)
            self.selected = (row, column)
            msg_send(self, "setNeedsDisplay:", True)

    @selector("selectedCell")
    def selected_cell(self) -> Optional[NSCell]:
        if self.selected is None:
            return None
        return msg_send(self, "cellAtRow:column:", *self.selected)

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        for row in range(self.rows):
            for column in range(self.columns):
                frame = msg_send(self, "cellFrameAtRow:column:", row, column)
                cell = self.cells[row][column]
                msg_send(cell, "drawWithFrame:inView:", ctx, frame, self)

    @selector("mouseDown:")
    def mouse_down(self, point: NSPoint) -> None:
        width = self.frame.width / self.columns
        height = self.frame.height / self.rows
        column = int(point.x // width)
        row = int(point.y // height)
        msg_send(self, "selectCellAtRow:column:", row, column)


class NSPopUpButton(NSControl):
    """A control presenting an NSMenu of choices."""

    def __init__(self, frame: NSRect, titles: Sequence[str] = ()) -> None:
        super().__init__(frame, value=titles[0] if titles else "")
        self.menu = NSMenu("popup")
        for title in titles:
            msg_send(self.menu, "addItem:", NSMenuItem(title))

    @selector("selectItemWithTitle:")
    def select_item_with_title(self, title: str) -> bool:
        if msg_send(self.menu, "itemWithTitle:", title) is None:
            return False
        msg_send(self, "setStringValue:", title)
        return True

    @selector("titleOfSelectedItem")
    def title_of_selected_item(self) -> str:
        return msg_send(self, "stringValue")
