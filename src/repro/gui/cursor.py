"""Cursors, tracking rectangles, and the push/pop pairing bug.

Section 3.5.3's first bug: "mouse-entered events were, in some cases, not
correctly paired with mouse-exited events and so the same cursors were
pushed onto the cursor stack multiple times … events invalidating cursor
tracking rectangles were being delivered after events that inspected those
rectangles.  This resulted in a later pop only popping one of a number of
duplicated copies of the same cursor, leaving the UI in the wrong state."

:class:`TrackingManager` delivers mouse-entered/exited based on tracking
rectangles.  In the correct ordering, rectangle *invalidation* (e.g. a view
moved) is processed before the next inspection, so entered-state is
reconciled.  With ``buggy_event_order=True``, invalidation is queued and
delivered *after* inspection: a rectangle that was re-added appears fresh,
its ``entered`` flag lost, and the same cursor is pushed again without an
intervening exit — exactly the duplicated-push signature the TESLA traces
exposed.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from .geometry import NSPoint, NSRect
from .runtime import NSObject, msg_send, selector

_rect_tags = itertools.count(1)


class NSCursor(NSObject):
    """A named cursor with the class-level cursor stack."""

    #: The process-wide cursor stack (class state, as in AppKit).
    _stack: List["NSCursor"] = []

    def __init__(self, name: str) -> None:
        self.name = name

    @selector("push")
    def push(self) -> None:
        NSCursor._stack.append(self)

    @selector("pop")
    def pop(self) -> None:
        if NSCursor._stack:
            NSCursor._stack.pop()

    @selector("set")
    def set_(self) -> None:
        if NSCursor._stack:
            NSCursor._stack[-1] = self
        else:
            NSCursor._stack.append(self)

    @classmethod
    def current(cls) -> Optional["NSCursor"]:
        return cls._stack[-1] if cls._stack else None

    @classmethod
    def stack_depth(cls) -> int:
        return len(cls._stack)

    @classmethod
    def reset_stack(cls) -> None:
        cls._stack.clear()

    def __repr__(self) -> str:
        return f"<NSCursor {self.name}>"


ARROW = NSCursor("arrow")
IBEAM = NSCursor("ibeam")
POINTING_HAND = NSCursor("pointing-hand")


class TrackingRect:
    """One cursor tracking rectangle attached to a view."""

    __slots__ = ("tag", "rect", "cursor", "view", "entered")

    def __init__(self, rect: NSRect, cursor: NSCursor, view: Any) -> None:
        self.tag = next(_rect_tags)
        self.rect = rect
        self.cursor = cursor
        self.view = view
        self.entered = False


class TrackingManager(NSObject):
    """Delivers mouse-entered/exited events from tracking rectangles."""

    def __init__(self, buggy_event_order: bool = False) -> None:
        self.rects: Dict[int, TrackingRect] = {}
        self.buggy_event_order = buggy_event_order
        #: Invalidations waiting to be applied (the buggy path's queue).
        self._pending_invalidations: List[Tuple[int, NSRect]] = []

    @selector("addTrackingRect:cursor:view:")
    def add_tracking_rect(self, rect: NSRect, cursor: NSCursor, view: Any) -> int:
        tracking = TrackingRect(rect, cursor, view)
        self.rects[tracking.tag] = tracking
        return tracking.tag

    @selector("removeTrackingRect:")
    def remove_tracking_rect(self, tag: int) -> None:
        tracking = self.rects.pop(tag, None)
        if tracking is not None and tracking.entered:
            # Leaving a rect by removal still exits it.
            msg_send(tracking.cursor, "pop")

    @selector("invalidateTrackingRect:newRect:")
    def invalidate_tracking_rect(self, tag: int, new_rect: NSRect) -> None:
        """A view moved: its tracking rectangle must be replaced.

        Correct ordering applies the invalidation immediately, preserving
        the ``entered`` state.  The buggy ordering defers it until after
        the next inspection — the root cause of the duplicated pushes.
        """
        if self.buggy_event_order:
            self._pending_invalidations.append((tag, new_rect))
        else:
            self._apply_invalidation(tag, new_rect)

    def _apply_invalidation(self, tag: int, new_rect: NSRect) -> None:
        tracking = self.rects.get(tag)
        if tracking is None:
            return
        if self.buggy_event_order:
            # The deferred replacement re-creates the rect, losing its
            # entered flag — the state the later inspection needed.
            replacement = TrackingRect(new_rect, tracking.cursor, tracking.view)
            replacement.tag = tracking.tag
            self.rects[tag] = replacement
        else:
            tracking.rect = new_rect

    @selector("mouseMovedTo:")
    def mouse_moved_to(self, point: NSPoint) -> None:
        """Inspect the rectangles and deliver entered/exited events."""
        for tracking in list(self.rects.values()):
            inside = tracking.rect.contains(point)
            if inside and not tracking.entered:
                tracking.entered = True
                msg_send(tracking.cursor, "push")
                self._notify(tracking, "mouseEntered:")
            elif not inside and tracking.entered:
                tracking.entered = False
                msg_send(tracking.cursor, "pop")
                self._notify(tracking, "mouseExited:")
        # The buggy ordering: invalidations arrive after the inspection.
        if self._pending_invalidations:
            pending, self._pending_invalidations = self._pending_invalidations, []
            for tag, new_rect in pending:
                self._apply_invalidation(tag, new_rect)

    def _notify(self, tracking: TrackingRect, event_selector: str) -> None:
        view = tracking.view
        if view is not None and view.respondsTo(event_selector):
            msg_send(view, event_selector, tracking)
