"""TESLAGOps — the selector inventory for GNUstep-style instrumentation.

The paper's investigation instrumented "roughly 110 methods, some in the
back end and some in the library", listed in a ``TESLAGOps.h`` header
"created simply to list the selectors that we wished to instrument".
This module is that header's analogue: it enumerates every selector
implemented across the GUI substrate (method implementations are counted
per class, as the paper counts methods) and builds the figure 8 assertion
that drives instrumentation for all of them.
"""

from __future__ import annotations

from typing import List, Tuple, Type

from ..core.ast import TemporalAssertion
from ..core.dsl import atleast, call, previously, tesla_within
from . import app, cursor, views, widgets
from .runtime import NSObject


def _gui_classes() -> List[Type[NSObject]]:
    classes: List[Type[NSObject]] = []
    for module in (views, cursor, app, widgets):
        for value in vars(module).values():
            if isinstance(value, type) and issubclass(value, NSObject):
                if value is not NSObject and value not in classes:
                    classes.append(value)
    return classes


def method_implementations() -> List[Tuple[str, str]]:
    """Every (class, selector) implementation — the paper's ~110 methods."""
    implementations: List[Tuple[str, str]] = []
    for cls in _gui_classes():
        for selector_name in cls.__dict__.get("_methods", {}):
            implementations.append((cls.__name__, selector_name))
    return sorted(implementations)


def all_selectors() -> Tuple[str, ...]:
    """Unique selector names across the GUI substrate, sorted."""
    return tuple(sorted({sel for _, sel in method_implementations()}))


#: Selectors whose *returns* the investigation also wanted events for
#: ("the methods listed at the end are those that we wanted to get extra
#: events on method return").
RETURN_TRACED = (
    "drawWithFrame:inView:",
    "drawInteriorWithFrame:inView:",
    "drawRect:",
    "display:",
    "push",
    "pop",
)


def tracing_assertion(name: str = "gnustep.trace") -> TemporalAssertion:
    """Figure 8: ``TESLA_WITHIN(startDrawing, previously(ATLEAST(0, …)))``.

    ``ATLEAST(0, …)`` cannot fail; its purpose is to cause instrumentation
    to be generated for every listed selector so custom handlers receive
    the full event stream.
    """
    events = [call(sel) for sel in all_selectors()]
    return tesla_within(
        "run_loop_iteration",
        previously(atleast(0, *events)),
        name=name,
        location="repro.gui.app:run_loop_iteration",
        tags=("gnustep", "tracing"),
    )
