"""The AppKit-like view hierarchy: views, controls and cells.

"Many views delegate drawing to 'cells' (simple classes that draw data in
a particular way) that are provided by another object" — so control flow
bounces between the view library and the back-end through dynamic dispatch,
and "applications often save and restore the graphics state (a
comparatively expensive operation), when the only aspects of the state that
are changed in between are the current drawing location and the colour".

Every inter-object call goes through :func:`~repro.gui.runtime.msg_send`,
so the interposition table sees the full ~110-selector surface that the
paper instrumented (listed in :mod:`repro.gui.teslag_ops`).

:class:`NSTableView` deliberately restores saved graphics states in
non-LIFO order — a valid AppKit pattern — which renders correctly on the
old back-end and corrupts silently on the new one (section 3.5.3's second
bug).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .geometry import NSMakeRect, NSPoint, NSRect
from .graphics import BLACK, Color, GraphicsContext
from .runtime import NSObject, msg_send, selector

BLUE: Color = (0.2, 0.3, 0.9, 1.0)
GRAY: Color = (0.6, 0.6, 0.6, 1.0)
LIGHT: Color = (0.9, 0.9, 0.9, 1.0)
STRIPE: Color = (0.85, 0.9, 1.0, 1.0)


class NSResponder(NSObject):
    """Event-handling base class."""

    def __init__(self) -> None:
        self.next_responder: Optional["NSResponder"] = None

    @selector("acceptsFirstResponder")
    def accepts_first_responder(self) -> bool:
        return False

    @selector("mouseDown:")
    def mouse_down(self, point: NSPoint) -> None:
        if self.next_responder is not None:
            msg_send(self.next_responder, "mouseDown:", point)

    @selector("mouseUp:")
    def mouse_up(self, point: NSPoint) -> None:
        if self.next_responder is not None:
            msg_send(self.next_responder, "mouseUp:", point)

    @selector("mouseMoved:")
    def mouse_moved(self, point: NSPoint) -> None:
        return None


class NSView(NSResponder):
    """A rectangle in a window with subviews and drawing."""

    def __init__(self, frame: NSRect) -> None:
        super().__init__()
        self.frame = frame
        self.subviews: List["NSView"] = []
        self.superview: Optional["NSView"] = None
        self.window: Any = None
        self.needs_display = True
        self.hidden = False

    # -- geometry -------------------------------------------------------------

    @selector("frame")
    def get_frame(self) -> NSRect:
        return self.frame

    @selector("setFrame:")
    def set_frame(self, frame: NSRect) -> None:
        self.frame = frame
        msg_send(self, "setNeedsDisplay:", True)

    @selector("bounds")
    def bounds(self) -> NSRect:
        return NSMakeRect(0, 0, self.frame.width, self.frame.height)

    @selector("convertPoint:")
    def convert_point(self, point: NSPoint) -> NSPoint:
        return NSPoint(point.x - self.frame.x, point.y - self.frame.y)

    @selector("hitTest:")
    def hit_test(self, point: NSPoint) -> Optional["NSView"]:
        if self.hidden or not self.frame.contains(point):
            return None
        local = msg_send(self, "convertPoint:", point)
        for subview in reversed(self.subviews):
            hit = msg_send(subview, "hitTest:", local)
            if hit is not None:
                return hit
        return self

    # -- hierarchy ---------------------------------------------------------------

    @selector("addSubview:")
    def add_subview(self, view: "NSView") -> None:
        self.subviews.append(view)
        view.superview = self
        view.next_responder = self
        view.window = self.window
        msg_send(view, "viewDidMoveToWindow")

    @selector("removeFromSuperview")
    def remove_from_superview(self) -> None:
        if self.superview is not None:
            self.superview.subviews.remove(self)
            self.superview = None

    @selector("viewDidMoveToWindow")
    def view_did_move_to_window(self) -> None:
        for subview in self.subviews:
            subview.window = self.window
            msg_send(subview, "viewDidMoveToWindow")

    # -- display -------------------------------------------------------------------

    @selector("setNeedsDisplay:")
    def set_needs_display(self, flag: bool) -> None:
        self.needs_display = flag
        if flag and self.superview is not None:
            msg_send(self.superview, "setNeedsDisplay:", True)

    @selector("display:")
    def display(self, ctx: GraphicsContext) -> None:
        if self.hidden:
            return
        token = msg_send(self, "saveGraphicsState:", ctx)
        ctx.translate(self.frame.x, self.frame.y)
        msg_send(self, "drawRect:", ctx, msg_send(self, "bounds"))
        for subview in self.subviews:
            msg_send(subview, "display:", ctx)
        msg_send(self, "restoreGraphicsState:", ctx, token)
        self.needs_display = False

    @selector("saveGraphicsState:")
    def save_graphics_state(self, ctx: GraphicsContext) -> int:
        return ctx.save_gstate()

    @selector("restoreGraphicsState:")
    def restore_graphics_state(self, ctx: GraphicsContext, token: int) -> None:
        ctx.restore_gstate(token)

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        return None


# ---------------------------------------------------------------------------
# cells: delegated drawing
# ---------------------------------------------------------------------------


class NSCell(NSObject):
    """A lightweight drawing delegate."""

    def __init__(self, value: Any = None) -> None:
        self.value = value
        self.highlighted = False

    @selector("setObjectValue:")
    def set_object_value(self, value: Any) -> None:
        self.value = value

    @selector("objectValue")
    def object_value(self) -> Any:
        return self.value

    @selector("setHighlighted:")
    def set_highlighted(self, flag: bool) -> None:
        self.highlighted = flag

    @selector("drawWithFrame:inView:")
    def draw_with_frame(self, ctx: GraphicsContext, frame: NSRect, view: NSView) -> None:
        return None

    @selector("drawInteriorWithFrame:inView:")
    def draw_interior_with_frame(self, ctx: GraphicsContext, frame: NSRect, view: NSView) -> None:
        return None


class NSTextFieldCell(NSCell):
    """Cell drawing an editable text value on a light background."""
    @selector("drawWithFrame:inView:")
    def draw_with_frame(self, ctx: GraphicsContext, frame: NSRect, view: NSView) -> None:
        # The profiled anti-pattern: save, tweak colour/position, restore —
        # even though the next cell sets both explicitly anyway.
        token = ctx.save_gstate()
        ctx.set_color(LIGHT)
        ctx.fill_rect(frame)
        msg_send(self, "drawInteriorWithFrame:inView:", ctx, frame, view)
        ctx.restore_gstate(token)

    @selector("drawInteriorWithFrame:inView:")
    def draw_interior_with_frame(self, ctx: GraphicsContext, frame: NSRect, view: NSView) -> None:
        ctx.set_color(BLACK)
        ctx.draw_text(str(self.value), NSPoint(frame.x + 2, frame.y + 2))


class NSButtonCell(NSCell):
    """Cell drawing a push button, highlighted while pressed."""
    @selector("drawWithFrame:inView:")
    def draw_with_frame(self, ctx: GraphicsContext, frame: NSRect, view: NSView) -> None:
        token = ctx.save_gstate()
        ctx.set_color(BLUE if self.highlighted else GRAY)
        ctx.fill_rect(frame)
        msg_send(self, "drawInteriorWithFrame:inView:", ctx, frame, view)
        ctx.restore_gstate(token)

    @selector("drawInteriorWithFrame:inView:")
    def draw_interior_with_frame(self, ctx: GraphicsContext, frame: NSRect, view: NSView) -> None:
        ctx.set_color(BLACK)
        ctx.draw_text(str(self.value), NSPoint(frame.x + 4, frame.y + 4))
        ctx.stroke_rect(frame)


class NSSliderCell(NSCell):
    """Cell drawing a horizontal track with a value knob."""
    @selector("drawWithFrame:inView:")
    def draw_with_frame(self, ctx: GraphicsContext, frame: NSRect, view: NSView) -> None:
        token = ctx.save_gstate()
        ctx.set_color(GRAY)
        mid = frame.y + frame.height / 2
        ctx.stroke_line(NSPoint(frame.x, mid), NSPoint(frame.max_x, mid))
        knob = frame.x + float(self.value or 0) * frame.width
        ctx.set_color(BLUE)
        ctx.fill_rect(NSMakeRect(knob - 3, frame.y, 6, frame.height))
        ctx.restore_gstate(token)


# ---------------------------------------------------------------------------
# controls
# ---------------------------------------------------------------------------


class NSControl(NSView):
    """A view that delegates its drawing to a cell."""

    cell_class = NSCell

    def __init__(self, frame: NSRect, value: Any = None) -> None:
        super().__init__(frame)
        self.cell = self.cell_class(value)
        self.target: Any = None
        self.action: Optional[str] = None
        self.enabled = True

    @selector("cell")
    def get_cell(self) -> NSCell:
        return self.cell

    @selector("setEnabled:")
    def set_enabled(self, flag: bool) -> None:
        self.enabled = flag

    @selector("stringValue")
    def string_value(self) -> str:
        return str(msg_send(self.cell, "objectValue"))

    @selector("setStringValue:")
    def set_string_value(self, value: str) -> None:
        msg_send(self.cell, "setObjectValue:", value)
        msg_send(self, "setNeedsDisplay:", True)

    @selector("setTarget:")
    def set_target(self, target: Any) -> None:
        self.target = target

    @selector("setAction:")
    def set_action(self, action: str) -> None:
        self.action = action

    @selector("sendAction")
    def send_action(self) -> None:
        if self.target is not None and self.action is not None:
            msg_send(self.target, self.action, self)

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        msg_send(self.cell, "drawWithFrame:inView:", ctx, rect, self)


class NSButton(NSControl):
    """A push-button control: highlights on press, fires its action."""
    cell_class = NSButtonCell

    @selector("acceptsFirstResponder")
    def accepts_first_responder(self) -> bool:
        return True

    @selector("mouseDown:")
    def mouse_down(self, point: NSPoint) -> None:
        msg_send(self.cell, "setHighlighted:", True)
        msg_send(self, "setNeedsDisplay:", True)

    @selector("mouseUp:")
    def mouse_up(self, point: NSPoint) -> None:
        msg_send(self.cell, "setHighlighted:", False)
        msg_send(self, "sendAction")
        msg_send(self, "setNeedsDisplay:", True)


class NSTextField(NSControl):
    """A single-line text control backed by an NSTextFieldCell."""
    cell_class = NSTextFieldCell


class NSSlider(NSControl):
    """A slider control holding a float value in [0, 1]."""
    cell_class = NSSliderCell

    @selector("floatValue")
    def float_value(self) -> float:
        return float(msg_send(self.cell, "objectValue") or 0.0)

    @selector("setFloatValue:")
    def set_float_value(self, value: float) -> None:
        msg_send(self.cell, "setObjectValue:", value)
        msg_send(self, "setNeedsDisplay:", True)


class NSBox(NSView):
    """A decorative border with a title."""

    def __init__(self, frame: NSRect, title: str = "") -> None:
        super().__init__(frame)
        self.title = title

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        token = ctx.save_gstate()
        ctx.set_color(GRAY)
        ctx.stroke_rect(rect.inset(1, 1))
        ctx.set_color(BLACK)
        ctx.draw_text(self.title, NSPoint(rect.x + 6, rect.y))
        ctx.restore_gstate(token)


class NSImageView(NSView):
    """A placeholder image well (draws its image name)."""
    def __init__(self, frame: NSRect, image_name: str = "") -> None:
        super().__init__(frame)
        self.image_name = image_name

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        ctx.set_color(LIGHT)
        ctx.fill_rect(rect)
        ctx.set_color(BLACK)
        ctx.draw_text(f"[{self.image_name}]", NSPoint(rect.x + 2, rect.y + 2))


class NSTableView(NSView):
    """Rows of cells — and the non-LIFO graphics-state pattern.

    Each visible row saves the zebra-stripe state up front; the row states
    are restored *in row order* after all cells have drawn (a batching
    pattern the old back-end supports fine).  Mixed with the per-cell
    LIFO saves, the overall restore order is non-LIFO: valid, but fatal
    to the new back-end.
    """

    def __init__(self, frame: NSRect, rows: Sequence[Sequence[Any]]) -> None:
        super().__init__(frame)
        self.rows = [list(row) for row in rows]
        self.row_height = 18.0
        self.cell = NSTextFieldCell()

    @selector("numberOfRows")
    def number_of_rows(self) -> int:
        return len(self.rows)

    @selector("frameOfCellAtColumn:row:")
    def frame_of_cell(self, column: int, row: int) -> NSRect:
        n_columns = max(len(r) for r in self.rows) if self.rows else 1
        width = self.frame.width / n_columns
        return NSMakeRect(column * width, row * self.row_height, width, self.row_height)

    @selector("drawRect:")
    def draw_rect(self, ctx: GraphicsContext, rect: NSRect) -> None:
        row_tokens: List[int] = []
        for row_index, row in enumerate(self.rows):
            token = ctx.save_gstate()
            row_tokens.append(token)
            ctx.set_color(STRIPE if row_index % 2 else LIGHT)
            ctx.fill_rect(
                NSMakeRect(0, row_index * self.row_height, rect.width, self.row_height)
            )
            for column, value in enumerate(row):
                msg_send(self.cell, "setObjectValue:", value)
                cell_frame = msg_send(self, "frameOfCellAtColumn:row:", column, row_index)
                msg_send(self.cell, "drawWithFrame:inView:", ctx, cell_frame, self)
        # Restore row states oldest-first — non-LIFO by construction — and
        # draw each row's separator *under the restored state*.  On the old
        # back-end each separator picks up its own row's attributes; on the
        # buggy new back-end the restores come back in the wrong order and
        # the separators render with the wrong colours: "things are drawn
        # on the screen incorrectly".
        for row_index, token in enumerate(row_tokens):
            ctx.restore_gstate(token)
            y = (row_index + 1) * self.row_height
            ctx.stroke_line(NSPoint(0, y), NSPoint(rect.width, y))
        ctx.set_color(BLACK)
        ctx.stroke_rect(rect)
