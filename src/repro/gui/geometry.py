"""AppKit geometry types: NSPoint, NSSize, NSRect."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NSPoint:
    x: float
    y: float


@dataclass(frozen=True)
class NSSize:
    width: float
    height: float


@dataclass(frozen=True)
class NSRect:
    """An axis-aligned rectangle: origin + size."""

    x: float
    y: float
    width: float
    height: float

    @property
    def origin(self) -> NSPoint:
        return NSPoint(self.x, self.y)

    @property
    def size(self) -> NSSize:
        return NSSize(self.width, self.height)

    @property
    def max_x(self) -> float:
        return self.x + self.width

    @property
    def max_y(self) -> float:
        return self.y + self.height

    def contains(self, point: NSPoint) -> bool:
        return self.x <= point.x < self.max_x and self.y <= point.y < self.max_y

    def intersects(self, other: "NSRect") -> bool:
        return not (
            other.x >= self.max_x
            or other.max_x <= self.x
            or other.y >= self.max_y
            or other.max_y <= self.y
        )

    def inset(self, dx: float, dy: float) -> "NSRect":
        return NSRect(self.x + dx, self.y + dy, self.width - 2 * dx, self.height - 2 * dy)

    def offset(self, dx: float, dy: float) -> "NSRect":
        return NSRect(self.x + dx, self.y + dy, self.width, self.height)


def NSMakeRect(x: float, y: float, width: float, height: float) -> NSRect:
    """AppKit-style rectangle constructor."""
    return NSRect(x, y, width, height)
