"""A miniature Objective-C runtime: dynamic dispatch with interposition.

"In Objective-C, interprocedural flow control is either a C function call
or a message send; methods can be replaced at run time, so even for an
object of a known class it is impossible to tell statically which method
will be invoked."  This module reproduces that dispatch model:

* classes register *selectors* mapping to implementations, looked up along
  the receiver's MRO at send time (:func:`msg_send`);
* implementations can be replaced at run time (:func:`class_replace_method`);
* "before calling any method, the runtime consults a global table of
  interposition hooks" — the modified-GNUstep-runtime mechanism of
  section 4.3, shared with :mod:`repro.instrument.interpose`.

The four cost tiers of figure 14a map onto build/configuration states:
``tracing_supported = False`` is the release runtime (no table consult at
all); ``True`` with an empty table is "tracing enabled"; installing
:func:`~repro.instrument.interpose.trivial_hook` gives the interposition
cost; installing TESLA hooks adds automaton processing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..instrument.interpose import interposition_table

#: Whether the runtime was built with tracing support (figure 14a mode 2+).
tracing_supported = True


class DoesNotRecognize(AttributeError):
    """The Objective-C ``doesNotRecognizeSelector:`` condition."""

    def __init__(self, receiver: Any, selector: str) -> None:
        super().__init__(
            f"{type(receiver).__name__} does not recognise selector {selector!r}"
        )
        self.receiver = receiver
        self.selector = selector


class NSObject:
    """Root class: provides the per-class method table."""

    #: selector -> implementation; populated by @selector and subclassing.
    _methods: Dict[str, Callable] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # Each class gets its own table; lookup walks the MRO explicitly so
        # run-time replacement on a superclass is visible to subclasses.
        if "_methods" not in cls.__dict__:
            cls._methods = {}
        for value in list(cls.__dict__.values()):
            selector_name = getattr(value, "__objc_selector__", None)
            if selector_name is not None:
                cls._methods[selector_name] = value

    def respondsTo(self, selector_name: str) -> bool:
        return _lookup(type(self), selector_name) is not None


def selector(name: str) -> Callable[[Callable], Callable]:
    """Mark a method as the implementation of an Objective-C selector."""

    def mark(implementation: Callable) -> Callable:
        implementation.__objc_selector__ = name  # type: ignore[attr-defined]
        return implementation

    return mark


def _lookup(cls: type, selector_name: str) -> Optional[Callable]:
    for klass in cls.__mro__:
        methods = klass.__dict__.get("_methods")
        if methods is not None:
            implementation = methods.get(selector_name)
            if implementation is not None:
                return implementation
    return None


def class_replace_method(cls: type, selector_name: str, implementation: Callable) -> None:
    """Replace a method at run time (what makes static analysis hopeless)."""
    if "_methods" not in cls.__dict__:
        cls._methods = {}
    cls._methods[selector_name] = implementation


def msg_send(receiver: Any, selector_name: str, *args: Any) -> Any:
    """``objc_msgSend``: dynamic dispatch with optional interposition."""
    if not tracing_supported:
        implementation = _lookup(type(receiver), selector_name)
        if implementation is None:
            raise DoesNotRecognize(receiver, selector_name)
        return implementation(receiver, *args)
    hooks = interposition_table.hooks_for(selector_name)
    implementation = _lookup(type(receiver), selector_name)
    if implementation is None:
        raise DoesNotRecognize(receiver, selector_name)
    if hooks is None:
        return implementation(receiver, *args)
    for hook in hooks:
        hook("send", receiver, selector_name, args, None)
    result = implementation(receiver, *args)
    for hook in hooks:
        hook("return", receiver, selector_name, args, result)
    return result


def set_tracing_supported(enabled: bool) -> None:
    """Switch between the release and tracing-capable runtime builds."""
    global tracing_supported
    tracing_supported = enabled
