"""The PostScript-style graphics state and drawing context.

"To avoid hundreds of arguments to function calls, various attributes
(stroke colour, transform matrix, and so on) are set independently.
Subsequent commands use these properties, so the behaviour of a single
draw-line method depends on many previous calls" — the stateful-API
problem motivating the GNUstep case study (section 2.3).

:class:`GraphicsContext` records every drawing command *with the state in
effect at the time*, so two renderings can be diffed to expose state
corruption — how the second GNUstep bug ("things are drawn on the screen
incorrectly") manifests here.  State save/restore is delegated to a
back-end (:mod:`repro.gui.backend`), because that is where the bug lived:
the new back-end could not restore graphics states in non-LIFO order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Tuple

from .geometry import NSPoint, NSRect

#: RGBA colour.
Color = Tuple[float, float, float, float]

BLACK: Color = (0.0, 0.0, 0.0, 1.0)
WHITE: Color = (1.0, 1.0, 1.0, 1.0)


@dataclass(frozen=True)
class GraphicsState:
    """The current drawing attributes (a PostScript gstate)."""

    color: Color = BLACK
    line_width: float = 1.0
    #: A 2D affine transform (a, b, c, d, tx, ty).
    transform: Tuple[float, float, float, float, float, float] = (1, 0, 0, 1, 0, 0)
    clip: Optional[NSRect] = None

    def translated(self, dx: float, dy: float) -> "GraphicsState":
        a, b, c, d, tx, ty = self.transform
        return replace(self, transform=(a, b, c, d, tx + dx, ty + dy))

    def apply(self, point: NSPoint) -> NSPoint:
        a, b, c, d, tx, ty = self.transform
        return NSPoint(a * point.x + c * point.y + tx, b * point.x + d * point.y + ty)


@dataclass(frozen=True)
class DrawCommand:
    """One rendered primitive plus the state it was rendered under."""

    op: str
    geometry: Tuple[Any, ...]
    state: GraphicsState


class GraphicsContext:
    """The drawing context handed to views during display."""

    def __init__(self, backend: Any) -> None:
        self.backend = backend
        self.state = GraphicsState()
        self.commands: List[DrawCommand] = []
        backend.reset(self.state)

    # -- state attribute setters (each one an independent stateful call) ----

    def set_color(self, color: Color) -> None:
        self.state = replace(self.state, color=color)
        self.backend.sync_state(self.state)

    def set_line_width(self, width: float) -> None:
        self.state = replace(self.state, line_width=width)
        self.backend.sync_state(self.state)

    def translate(self, dx: float, dy: float) -> None:
        self.state = self.state.translated(dx, dy)
        self.backend.sync_state(self.state)

    def set_clip(self, rect: Optional[NSRect]) -> None:
        self.state = replace(self.state, clip=rect)
        self.backend.sync_state(self.state)

    # -- save/restore: delegated to the back-end -----------------------------

    def save_gstate(self) -> int:
        """Save the current state; returns a token for later restore.

        Unlike strict PostScript gsave/grestore, AppKit allows restoring
        saved states in *non-LIFO* order — "something obvious in traces of
        even simple applications" but unknown to the new back-end's author.
        """
        return self.backend.save_gstate(self.state)

    def restore_gstate(self, token: int) -> None:
        self.state = self.backend.restore_gstate(token)

    # -- drawing primitives -----------------------------------------------------

    def stroke_line(self, start: NSPoint, end: NSPoint) -> None:
        self.commands.append(
            DrawCommand("stroke-line", (self.state.apply(start), self.state.apply(end)), self.state)
        )

    def fill_rect(self, rect: NSRect) -> None:
        origin = self.state.apply(NSPoint(rect.x, rect.y))
        self.commands.append(
            DrawCommand(
                "fill-rect",
                (NSRect(origin.x, origin.y, rect.width, rect.height),),
                self.state,
            )
        )

    def stroke_rect(self, rect: NSRect) -> None:
        origin = self.state.apply(NSPoint(rect.x, rect.y))
        self.commands.append(
            DrawCommand(
                "stroke-rect",
                (NSRect(origin.x, origin.y, rect.width, rect.height),),
                self.state,
            )
        )

    def draw_text(self, text: str, at: NSPoint) -> None:
        self.commands.append(
            DrawCommand("draw-text", (text, self.state.apply(at)), self.state)
        )

    # -- output comparison -------------------------------------------------------

    def render_signature(self) -> List[Tuple[str, Tuple[Any, ...], Color, float]]:
        """A comparable rendering: op, geometry, effective colour and width.

        Two runs of the same scene must produce equal signatures; the
        non-LIFO back-end bug shows up as colour/width differences.
        """
        return [
            (c.op, c.geometry, c.state.color, c.state.line_width)
            for c in self.commands
        ]
