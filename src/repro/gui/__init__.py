"""A miniature GNUstep-like GUI stack: the stateful-API substrate.

Dynamic message dispatch with interposition (the modified Objective-C
runtime of section 4.3), a PostScript-style graphics state, two back-ends
(one with the non-LIFO restore bug), a view/cell hierarchy, the cursor
stack with its event-ordering bug, and an Xnee-style replayer.
"""

from .app import (
    NSWindow,
    XEvent,
    XneeReplayer,
    build_demo_window,
    cursor_bug_scenario,
    run_loop_iteration,
)
from .backend import BackendError, NewBackend, OldBackend
from .cursor import ARROW, IBEAM, POINTING_HAND, NSCursor, TrackingManager
from .geometry import NSMakeRect, NSPoint, NSRect, NSSize
from .graphics import BLACK, WHITE, DrawCommand, GraphicsContext, GraphicsState
from .runtime import (
    DoesNotRecognize,
    NSObject,
    class_replace_method,
    msg_send,
    selector,
    set_tracing_supported,
)
from .teslag_ops import (
    RETURN_TRACED,
    all_selectors,
    method_implementations,
    tracing_assertion,
)
from .widgets import (
    NSClipView,
    NSMatrix,
    NSMenu,
    NSMenuItem,
    NSPopUpButton,
    NSProgressIndicator,
    NSScroller,
    NSScrollView,
)
from .views import (
    NSBox,
    NSButton,
    NSButtonCell,
    NSCell,
    NSControl,
    NSImageView,
    NSSlider,
    NSTableView,
    NSTextField,
    NSTextFieldCell,
    NSView,
)

__all__ = [
    "NSWindow",
    "XEvent",
    "XneeReplayer",
    "build_demo_window",
    "cursor_bug_scenario",
    "run_loop_iteration",
    "BackendError",
    "NewBackend",
    "OldBackend",
    "ARROW",
    "IBEAM",
    "POINTING_HAND",
    "NSCursor",
    "TrackingManager",
    "NSMakeRect",
    "NSPoint",
    "NSRect",
    "NSSize",
    "BLACK",
    "WHITE",
    "DrawCommand",
    "GraphicsContext",
    "GraphicsState",
    "DoesNotRecognize",
    "NSObject",
    "class_replace_method",
    "msg_send",
    "selector",
    "set_tracing_supported",
    "RETURN_TRACED",
    "all_selectors",
    "method_implementations",
    "tracing_assertion",
    "NSBox",
    "NSButton",
    "NSButtonCell",
    "NSCell",
    "NSControl",
    "NSImageView",
    "NSSlider",
    "NSTableView",
    "NSTextField",
    "NSTextFieldCell",
    "NSView",
    "NSClipView",
    "NSMatrix",
    "NSMenu",
    "NSMenuItem",
    "NSPopUpButton",
    "NSProgressIndicator",
    "NSScroller",
    "NSScrollView",
]
