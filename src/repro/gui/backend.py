"""Graphics back-ends: the correct old one and the buggy new one.

The second GNUstep bug (section 3.5.3): "the new back end's inability to
save and restore graphics states in a non-LIFO order.  This was caused by
the author of the code not being aware that this was a valid sequence of
operations."

:class:`OldBackend` keeps saved states in a token-indexed map, so any
saved state can be restored at any time.  :class:`NewBackend` keeps a pure
stack: restoring the top token works, but restoring an *older* token
silently pops to whatever happens to be on top — corrupting subsequent
drawing exactly like "things are drawn on the screen incorrectly".
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from .graphics import GraphicsState


class BackendError(Exception):
    """A back-end refused an operation (unknown token, empty stack)."""


class OldBackend:
    """The mature back-end: non-LIFO save/restore via a token map."""

    name = "old-backend"
    supports_non_lifo = True

    def __init__(self) -> None:
        self._tokens = itertools.count(1)
        self._saved: Dict[int, GraphicsState] = {}
        self.state = GraphicsState()
        #: Statistics the optimisation-profiling discussion feeds on.
        self.saves = 0
        self.restores = 0

    def reset(self, state: GraphicsState) -> None:
        self._saved.clear()
        self.state = state

    def sync_state(self, state: GraphicsState) -> None:
        self.state = state

    def save_gstate(self, state: GraphicsState) -> int:
        token = next(self._tokens)
        self._saved[token] = state
        self.saves += 1
        return token

    def restore_gstate(self, token: int) -> GraphicsState:
        try:
            state = self._saved.pop(token)
        except KeyError:
            raise BackendError(f"unknown gstate token {token}") from None
        self.restores += 1
        self.state = state
        return state


class NewBackend:
    """The new back-end: LIFO-only save/restore — the bug.

    The author assumed gsave/grestore discipline; a non-LIFO restore does
    not fail, it silently restores the *top* of the stack instead of the
    requested state.  No exception, no log — just wrong pixels later.
    """

    name = "new-backend"
    supports_non_lifo = False

    def __init__(self) -> None:
        self._tokens = itertools.count(1)
        self._stack: List[Tuple[int, GraphicsState]] = []
        self.state = GraphicsState()
        self.saves = 0
        self.restores = 0
        #: Count of restores that hit the bug (diagnosable after the fact).
        self.misrestores = 0

    def reset(self, state: GraphicsState) -> None:
        self._stack.clear()
        self.state = state

    def sync_state(self, state: GraphicsState) -> None:
        self.state = state

    def save_gstate(self, state: GraphicsState) -> int:
        token = next(self._tokens)
        self._stack.append((token, state))
        self.saves += 1
        return token

    def restore_gstate(self, token: int) -> GraphicsState:
        if not self._stack:
            raise BackendError("restore with empty gstate stack")
        top_token, state = self._stack.pop()
        self.restores += 1
        if top_token != token:
            # The silent corruption: the wrong state is restored.
            self.misrestores += 1
        self.state = state
        return state
