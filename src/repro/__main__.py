"""``python -m repro`` — the TESLA reproduction's command-line interface."""

import sys

from .cli import main

sys.exit(main())
