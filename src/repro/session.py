"""One-call monitoring sessions.

Most users want exactly one thing: "check these assertions while this code
runs".  :func:`monitoring` composes a :class:`~repro.runtime.manager.TeslaRuntime`
and an :class:`~repro.instrument.module.Instrumenter` into a context
manager::

    with monitoring([assertion]) as runtime:
        run_the_workload()
    print(runtime.class_runtime(assertion.name).accepts)

The instrumentation is fully removed on exit, even when the block raises
(including on a fail-stop :class:`~repro.errors.TemporalAssertionError`).
"""

from __future__ import annotations

import contextlib
import types
from typing import Iterable, Iterator, Optional, Sequence, Union

from .core.ast import TemporalAssertion
from .core.manifest import ProgramManifest
from .instrument.module import Instrumenter
from .runtime.manager import TeslaRuntime
from .runtime.notify import ErrorPolicy
from .runtime.supervisor import FailurePolicy


@contextlib.contextmanager
def monitoring(
    assertions: Union[ProgramManifest, Sequence[TemporalAssertion]],
    policy: Optional[ErrorPolicy] = None,
    caller_modules: Sequence[types.ModuleType] = (),
    objc_selectors: Iterable[str] = (),
    lazy: bool = True,
    capacity: Optional[int] = None,
    compile: Optional[bool] = None,
    codegen: Optional[bool] = None,
    failure_policy: Optional[FailurePolicy] = None,
    shards: Optional[int] = None,
    deferred: object = False,
    overflow_policy: Optional[str] = None,
    ring_capacity: Optional[int] = None,
    drain_interval: Optional[float] = None,
    lint: Optional[str] = None,
    prove: Optional[str] = None,
    journal: object = None,
    overhead_budget: Optional[float] = None,
    clock: object = None,
    stamp_capture: Optional[bool] = None,
) -> Iterator[TeslaRuntime]:
    """Instrument ``assertions`` for the duration of the ``with`` block.

    Parameters mirror :class:`TeslaRuntime` and :class:`Instrumenter`:
    ``policy`` selects fail-stop (default) or log-and-continue;
    ``caller_modules`` enables caller-side weaving for uninstrumentable
    callees; ``objc_selectors`` routes those names through the
    interposition table; ``lazy=False`` selects the pre-optimisation
    runtime (the figure 13 ablation); ``capacity`` bounds instance pools;
    ``compile=False`` disables the compiled transition-plan fast path
    (the dispatch-cost ablation measured by
    ``benchmarks/bench_dispatch_fastpath.py``); ``codegen=True`` layers
    tesla-jit on top of the compiled path — each transition plan is
    specialized into generated Python (DESIGN §5.7), falling back to the
    compiled interpreter per plan when specialization is unsupported;
    ``failure_policy`` selects
    how faults *inside the monitor* are handled (fail-stop default,
    fail-open, callback, or quarantine — see
    :mod:`repro.runtime.supervisor`); ``shards`` sets the global store's
    lock-stripe count.

    ``deferred`` moves evaluation off the instrumented threads (DESIGN
    §5.4): ``True`` captures events into per-thread ring buffers drained
    by a background thread, ``"manual"`` defers with explicit
    ``runtime.drain.drain()``/``flush_deferred()`` calls (deterministic,
    for tests).  ``overflow_policy`` picks the ring-full backpressure:
    ``"flush"`` (inline flush by the producer, the default) or
    ``"block"`` (park the producer for the background drainer);
    ``ring_capacity`` sizes each thread's preallocated ring and
    ``drain_interval`` the background drainer's poll period.  ``lint``
    selects the install-time tesla-lint gate (``"warn"`` default,
    ``"error"`` refuses assertions with lint errors, ``"off"`` skips the
    passes — see DESIGN §5.5).  ``prove`` selects the install-time
    tesla-prove gate (DESIGN §5.10): ``"off"`` default, ``"report"``
    proves each batch on the automaton basis and accumulates
    ``runtime.prove_report``, ``"prune"`` additionally elides PROVED
    assertions at install — their hooks are never woven, so their
    monitoring cost is zero.  ``journal`` installs a durable trace
    journal at the drain boundary (DESIGN §5.6): a path or binary
    file-like object every drained event is appended to, replayable
    offline with ``python -m repro.cli replay``; it requires ``deferred``
    and is footer-closed when the block exits.  ``overhead_budget``
    arms the adaptive overhead governor (DESIGN §5.8): monitoring may
    spend at most that fraction of wall time (e.g. ``0.05`` — "≤5%"),
    enforced by graduated shedding (sample instantiation → journal-only
    demotion → shed via the supervisor) of the most expensive assertion
    classes, with sampled findings annotated with their sampling rate;
    ``clock`` replaces the runtime's single time source — the one
    monotonic clock driving the governor, capture timestamping *and*
    timed-assertion expiry (DESIGN §5.9; an object with ``now()`` or a
    plain callable returning seconds — inject a
    :class:`~repro.runtime.clock.FakeClock` for replayable governor
    decisions and deterministic timed verdicts in tests);
    ``stamp_capture=False`` disables capture-time stamping for event
    streams that arrive pre-stamped (replay from a journal) — it then
    *requires* ``clock=`` naming the clock those stamps came from, since
    judging recorded stamps against an unrelated monotonic epoch would
    be meaningless (conflicting clock sources).  On clean
    exit the block flushes pending events first, so deferred verdicts —
    including a fail-stop :class:`~repro.errors.TemporalAssertionError` —
    are delivered no later than the ``with`` block's exit; if the block
    body itself raised, pending events are discarded instead so the
    application's error is never masked by a monitor verdict.
    """
    kwargs = {"lazy": lazy, "policy": policy}
    if capacity is not None:
        kwargs["capacity"] = capacity
    if compile is not None:
        kwargs["compile"] = compile
    if codegen is not None:
        kwargs["codegen"] = codegen
    if failure_policy is not None:
        kwargs["failure_policy"] = failure_policy
    if shards is not None:
        kwargs["shards"] = shards
    if deferred:
        kwargs["deferred"] = deferred
    if overflow_policy is not None:
        kwargs["overflow_policy"] = overflow_policy
    if ring_capacity is not None:
        kwargs["ring_capacity"] = ring_capacity
    if drain_interval is not None:
        kwargs["drain_interval"] = drain_interval
    if lint is not None:
        kwargs["lint"] = lint
    if prove is not None:
        kwargs["prove"] = prove
    if journal is not None:
        kwargs["journal"] = journal
    if overhead_budget is not None:
        kwargs["overhead_budget"] = overhead_budget
    if clock is not None:
        kwargs["clock"] = clock
    if stamp_capture is not None:
        kwargs["stamp_capture"] = stamp_capture
    runtime = TeslaRuntime(**kwargs)
    session = Instrumenter(
        runtime,
        caller_modules=caller_modules,
        objc_selectors=objc_selectors,
    )
    session.instrument(assertions)
    try:
        yield runtime
    except BaseException:
        # The block body (or a flush inside it) raised: drop pending
        # captures so teardown evaluation cannot mask the original error,
        # then stop the drainer before uninstrumenting.
        if runtime.drain is not None:
            runtime.drain.stop()
            runtime.discard_deferred()
        runtime.close_journal()
        raise
    else:
        # Clean exit is a synchronization point: evaluate everything the
        # block captured.  A deferred fail-stop violation (or an error
        # parked by the background drainer) surfaces here, exactly at the
        # block boundary.
        if runtime.drain is not None:
            try:
                runtime.flush_deferred()
            finally:
                runtime.drain.stop()
                runtime.close_journal()
    finally:
        session.uninstrument()
