"""One-call monitoring sessions.

Most users want exactly one thing: "check these assertions while this code
runs".  :func:`monitoring` composes a :class:`~repro.runtime.manager.TeslaRuntime`
and an :class:`~repro.instrument.module.Instrumenter` into a context
manager::

    with monitoring([assertion]) as runtime:
        run_the_workload()
    print(runtime.class_runtime(assertion.name).accepts)

The instrumentation is fully removed on exit, even when the block raises
(including on a fail-stop :class:`~repro.errors.TemporalAssertionError`).
"""

from __future__ import annotations

import contextlib
import types
from typing import Iterable, Iterator, Optional, Sequence, Union

from .core.ast import TemporalAssertion
from .core.manifest import ProgramManifest
from .instrument.module import Instrumenter
from .runtime.manager import TeslaRuntime
from .runtime.notify import ErrorPolicy
from .runtime.supervisor import FailurePolicy


@contextlib.contextmanager
def monitoring(
    assertions: Union[ProgramManifest, Sequence[TemporalAssertion]],
    policy: Optional[ErrorPolicy] = None,
    caller_modules: Sequence[types.ModuleType] = (),
    objc_selectors: Iterable[str] = (),
    lazy: bool = True,
    capacity: Optional[int] = None,
    compile: Optional[bool] = None,
    failure_policy: Optional[FailurePolicy] = None,
    shards: Optional[int] = None,
) -> Iterator[TeslaRuntime]:
    """Instrument ``assertions`` for the duration of the ``with`` block.

    Parameters mirror :class:`TeslaRuntime` and :class:`Instrumenter`:
    ``policy`` selects fail-stop (default) or log-and-continue;
    ``caller_modules`` enables caller-side weaving for uninstrumentable
    callees; ``objc_selectors`` routes those names through the
    interposition table; ``lazy=False`` selects the pre-optimisation
    runtime (the figure 13 ablation); ``capacity`` bounds instance pools;
    ``compile=False`` disables the compiled transition-plan fast path
    (the dispatch-cost ablation measured by
    ``benchmarks/bench_dispatch_fastpath.py``); ``failure_policy`` selects
    how faults *inside the monitor* are handled (fail-stop default,
    fail-open, callback, or quarantine — see
    :mod:`repro.runtime.supervisor`); ``shards`` sets the global store's
    lock-stripe count.
    """
    kwargs = {"lazy": lazy, "policy": policy}
    if capacity is not None:
        kwargs["capacity"] = capacity
    if compile is not None:
        kwargs["compile"] = compile
    if failure_policy is not None:
        kwargs["failure_policy"] = failure_policy
    if shards is not None:
        kwargs["shards"] = shards
    runtime = TeslaRuntime(**kwargs)
    session = Instrumenter(
        runtime,
        caller_modules=caller_modules,
        objc_selectors=objc_selectors,
    )
    session.instrument(assertions)
    try:
        yield runtime
    finally:
        session.uninstrument()
