"""Program-layer lint passes: assertions cross-checked against real code.

The machine layer (:mod:`repro.analysis.machine`) proves an automaton
sane in isolation; this layer proves it sane *for this program*, via
Python's ``ast``/``inspect`` instead of the paper's Clang AST walk:

* TESLA007 — every referenced function resolves to an instrumentable
  symbol: a registered hook point, an interposition selector, or a
  function defined in the modelled sources (caller-side weaving).
* TESLA008 — argument patterns are arity- and type-compatible with the
  resolved function's real signature: a pattern arity no call can produce
  means the event can never match, and a constant pattern whose type
  contradicts a concrete annotation means the same.
* TESLA009 — field-assignment events name a registered
  :class:`~repro.instrument.fields.TeslaStruct` and an attribute that
  struct's code actually assigns.
* TESLA010 — an event whose callee the modelled call graph proves
  uncalled can never fire (warning; suppressed whenever the model
  contains opaque calls, since indirection could hide the caller —
  the same soundness posture as :mod:`repro.analysis.static`).

The layer also produces the report's ``arity_safe`` set: ``(function,
arity)`` pairs where the hooked signature *fixes* the event arity (no
defaults, no ``*args``/``**kwargs``), which is the proof the event
translator needs to elide its dynamic ``len(event.args)`` checks.
"""

from __future__ import annotations

import inspect
import textwrap
import ast as pyast
import sys
from dataclasses import dataclass, field
from typing import (
    Callable,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.ast import (
    FieldAssign,
    FunctionCall,
    FunctionReturn,
    TemporalAssertion,
    referenced_fields,
    walk,
)
from ..core.patterns import Const
from .diagnostics import Diagnostic, diagnostic
from .static import StaticModel

#: Field-helper functions whose second argument names the assigned field
#: (:mod:`repro.instrument.fields`): ``field_inc(obj, "p_flag")`` etc.
_FIELD_HELPERS = frozenset(
    {"field_inc", "field_dec", "field_add", "field_or", "field_and"}
)


def signature_arity(fn: Callable) -> Optional[Tuple[int, int, bool]]:
    """``(min_arity, max_arity, variadic)`` of a hooked function.

    Hook wrappers flatten every bound argument — positional and keyword —
    into ``event.args`` (see :mod:`repro.instrument.hooks`), so the event
    arity of any successful call lies between the count of
    default-less parameters and the count of all named parameters;
    ``variadic`` lifts the upper bound.  Returns ``None`` when the
    signature cannot be introspected (builtins, C callables).
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    minimum = 0
    maximum = 0
    variadic = False
    for param in sig.parameters.values():
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            variadic = True
            continue
        maximum += 1
        if param.default is inspect.Parameter.empty:
            minimum += 1
    return (minimum, maximum, variadic)


def fixed_arity(fn: Callable) -> Optional[int]:
    """The single event arity every call of ``fn`` must produce, or
    ``None`` when the arity can vary (defaults/variadics) or is unknown."""
    arity = signature_arity(fn)
    if arity is None:
        return None
    minimum, maximum, variadic = arity
    if variadic or minimum != maximum:
        return None
    return minimum


@dataclass
class ProgramModel:
    """Everything the program layer can resolve symbols against.

    Built from the process-wide instrumentation registries by default;
    suites with dynamic dispatch add their ``selectors``, and suites with
    modelled sources add a :class:`~repro.analysis.static.StaticModel`
    for the call-graph pass.
    """

    #: name -> callable for registered hook points.
    hooks: dict = field(default_factory=dict)
    #: registered struct name -> class.
    structs: dict = field(default_factory=dict)
    #: dynamically dispatched selector names (interposition targets).
    selectors: FrozenSet[str] = frozenset()
    #: call-graph model of the program's sources, when available.
    static: Optional[StaticModel] = None

    @classmethod
    def from_registries(
        cls,
        selectors: Sequence[str] = (),
        static: Optional[StaticModel] = None,
    ) -> "ProgramModel":
        """Snapshot the global hook/field registries into a model."""
        from ..instrument.fields import field_registry
        from ..instrument.hooks import hook_registry

        hooks = {
            name: point.function
            for name in hook_registry.names()
            for point in (hook_registry.get(name),)
            if point is not None
        }
        structs = {
            name: field_registry.require(name)
            for name in field_registry.names()
        }
        return cls(
            hooks=hooks,
            structs=structs,
            selectors=frozenset(selectors),
            static=static,
        )

    def resolves(self, name: str) -> bool:
        """Whether ``name`` is instrumentable by *some* mechanism."""
        if name in self.hooks or name in self.selectors:
            return True
        return self.static is not None and self.static.defines(name)

    def has_opaque_calls(self) -> bool:
        """Whether the modelled sources contain unresolvable calls
        (function pointers, method tables) that could hide callers."""
        if self.static is None:
            return True
        return any(fn.opaque for fn in self.static.functions.values())


def _function_events(assertion: TemporalAssertion):
    """Every function event in the assertion, bound events included."""
    for root in (
        assertion.bound.entry,
        assertion.bound.exit,
        assertion.expression,
    ):
        for node in walk(root):
            if isinstance(node, (FunctionCall, FunctionReturn)):
                yield node


# ---------------------------------------------------------------------------
# passes
# ---------------------------------------------------------------------------


def check_functions_resolve(
    assertion: TemporalAssertion, model: ProgramModel
) -> List[Diagnostic]:
    """TESLA007: every referenced function must be instrumentable."""
    out: List[Diagnostic] = []
    seen: Set[str] = set()
    for node in _function_events(assertion):
        name = node.function
        if name in seen or model.resolves(name):
            continue
        seen.add(name)
        out.append(
            diagnostic(
                "TESLA007",
                assertion.name,
                f"function {name!r} resolves to no instrumentable symbol "
                "(not a hook point, selector, or modelled definition)",
                location=assertion.location,
            )
        )
    return out


def check_signatures(
    assertion: TemporalAssertion, model: ProgramModel
) -> Tuple[List[Diagnostic], FrozenSet[Tuple[str, int]]]:
    """TESLA008 plus the ``arity_safe`` facts for the runtime handoff."""
    out: List[Diagnostic] = []
    safe: Set[Tuple[str, int]] = set()
    for node in _function_events(assertion):
        if node.args is None:
            continue
        fn = model.hooks.get(node.function)
        if fn is None:
            continue
        arity = signature_arity(fn)
        if arity is None:
            continue
        minimum, maximum, variadic = arity
        n = len(node.args)
        if n < minimum or (not variadic and n > maximum):
            bounds = (
                f"{minimum}" if minimum == maximum else f"{minimum}..{maximum}"
            )
            bounds += "+" if variadic else ""
            out.append(
                diagnostic(
                    "TESLA008",
                    assertion.name,
                    f"pattern for {node.function!r} has {n} argument(s) but "
                    f"calls bind {bounds}: the event can never match",
                    location=assertion.location,
                    detail=node.describe(),
                )
            )
            continue
        if not variadic and minimum == maximum == n:
            safe.add((node.function, n))
            out.extend(_check_types(assertion, node, fn))
    return out, frozenset(safe)


def _check_types(
    assertion: TemporalAssertion, node, fn: Callable
) -> List[Diagnostic]:
    """Constant patterns vs concrete annotations (fixed-arity case only,
    where pattern position maps one-to-one onto parameters)."""
    out: List[Diagnostic] = []
    try:
        params = list(inspect.signature(fn).parameters.values())
    except (TypeError, ValueError):
        return out
    for pattern, param in zip(node.args, params):
        annotation = param.annotation
        if not isinstance(annotation, type) or annotation is object:
            continue
        if not isinstance(pattern, Const) or pattern.value is None:
            continue
        value = pattern.value
        if isinstance(value, annotation):
            continue
        if isinstance(value, int) and annotation in (float, complex):
            continue  # numeric widening is fine at runtime
        out.append(
            diagnostic(
                "TESLA008",
                assertion.name,
                f"constant pattern {value!r} for parameter "
                f"{param.name!r} of {node.function!r} is a "
                f"{type(value).__name__}, but the parameter is annotated "
                f"{annotation.__name__}: the event can never match",
                location=assertion.location,
                detail=node.describe(),
            )
        )
    return out


def _assigned_attributes(cls: type) -> Optional[Set[str]]:
    """Attribute names ``cls``'s code provably assigns, or ``None`` when
    the sources cannot be inspected (assume anything may be assigned).

    Scans the class body for ``self.x = …`` stores and class-level
    attributes, and the defining module for compound-assignment helper
    calls (``field_or(proc, "p_flag", …)``) and attribute stores — the
    shapes :mod:`repro.instrument.fields` can actually observe.
    """
    sources: List[str] = []
    try:
        sources.append(textwrap.dedent(inspect.getsource(cls)))
    except (OSError, TypeError):
        return None
    module = sys.modules.get(cls.__module__)
    if module is not None:
        try:
            sources.append(inspect.getsource(module))
        except (OSError, TypeError):
            pass
    assigned: Set[str] = set()
    for source in sources:
        try:
            tree = pyast.parse(source)
        except SyntaxError:
            return None
        for node in pyast.walk(tree):
            if isinstance(node, (pyast.Assign, pyast.AugAssign, pyast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, pyast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, pyast.Attribute):
                        assigned.add(target.attr)
                    elif isinstance(target, pyast.Name):
                        assigned.add(target.id)
            elif isinstance(node, pyast.Call):
                func = node.func
                name = getattr(func, "id", getattr(func, "attr", None))
                if name in _FIELD_HELPERS and len(node.args) >= 2:
                    arg = node.args[1]
                    if isinstance(arg, pyast.Constant) and isinstance(
                        arg.value, str
                    ):
                        assigned.add(arg.value)
    return assigned


def check_fields(
    assertion: TemporalAssertion, model: ProgramModel
) -> List[Diagnostic]:
    """TESLA009: field events must name a registered struct and an
    attribute that struct's code assigns."""
    out: List[Diagnostic] = []
    for struct, field_name in referenced_fields(assertion):
        cls = model.structs.get(struct)
        if cls is None:
            out.append(
                diagnostic(
                    "TESLA009",
                    assertion.name,
                    f"no instrumentable struct named {struct!r} is "
                    "registered",
                    location=assertion.location,
                )
            )
            continue
        assigned = _assigned_attributes(cls)
        if assigned is not None and field_name not in assigned:
            out.append(
                diagnostic(
                    "TESLA009",
                    assertion.name,
                    f"struct {struct!r} never assigns field "
                    f"{field_name!r}: the event can never fire",
                    location=assertion.location,
                )
            )
    return out


def check_callgraph(
    assertion: TemporalAssertion, model: ProgramModel
) -> List[Diagnostic]:
    """TESLA010: body events whose callee the call graph proves uncalled.

    Only claims never-fires when the model is airtight: the callee is
    defined in the modelled sources, nothing calls it, and no opaque call
    anywhere could be hiding the caller.
    """
    if model.static is None or model.has_opaque_calls():
        return []
    bound_functions = {
        node.function
        for root in (assertion.bound.entry, assertion.bound.exit)
        for node in walk(root)
        if isinstance(node, (FunctionCall, FunctionReturn))
    }
    out: List[Diagnostic] = []
    seen: Set[str] = set()
    for node in walk(assertion.expression):
        if not isinstance(node, (FunctionCall, FunctionReturn)):
            continue
        name = node.function
        if name in seen or name in bound_functions:
            continue
        seen.add(name)
        if not model.static.defines(name):
            continue
        if model.static.callers_of(name):
            continue
        out.append(
            diagnostic(
                "TESLA010",
                assertion.name,
                f"no modelled function calls {name!r}: the event can "
                "never fire on any modelled path",
                location=assertion.location,
            )
        )
    return out


def lint_program(
    assertion: TemporalAssertion, model: ProgramModel
) -> Tuple[List[Diagnostic], FrozenSet[Tuple[str, int]]]:
    """Run every program-layer pass over one assertion."""
    findings: List[Diagnostic] = []
    findings.extend(check_functions_resolve(assertion, model))
    sig_findings, safe = check_signatures(assertion, model)
    findings.extend(sig_findings)
    findings.extend(check_fields(assertion, model))
    findings.extend(check_callgraph(assertion, model))
    return findings, safe
