"""tesla-prove: a product model checker over program CFGs and automata.

Where tesla-lint (:mod:`repro.analysis.lint`) answers "is this assertion
*sane*?", this module answers "does this assertion *need* a monitor at
all?" — the paper's section-7 direction of entirely eliding "otherwise
expensive sequences of checks and state transitions".  Three verdicts:

PROVED
    No trace the program can produce violates the assertion, so the
    automaton — and every hook referenced only by it — can be elided at
    install time (``TeslaRuntime(prove="prune")``).  Two proof bases:

    * ``automaton`` — the automaton is safe over *arbitrary* event
      traces: no reachable configuration can refuse its assertion site
      or close its bound with an open ``eventually`` obligation.  This
      needs no program model and is how vacuously-safe shapes (e.g.
      ``previously(optionally(call(f)))``) discharge.
    * ``product`` — the exploration of the scope-bounded program CFG
      (:mod:`repro.analysis.cfg`) crossed with the automaton reaches a
      fixpoint in which every configuration accepts at every assertion
      site and at every normal bound exit.

VIOLATED
    A concrete static path through the bound function drives a
    deterministic automaton instance into a violation.  Reported as
    ``TESLA014`` with the path as a readable counterexample.  Only
    claimed when every step of the simulation is forced (no pattern may
    fail, no clone may exist, no opaque call may interpose).

UNKNOWN
    Everything else — kept under runtime monitoring, reported as
    info-level ``TESLA015`` naming what blocked the proof.

Soundness posture.  The over-approximation explores, per configuration
and dispatch key, *every* non-empty subset of enabled transitions (plus
staying put), which covers the runtime's move-or-stay stepping whatever
each symbol's pattern matcher decides and however instances clone; a
configuration set in which *all* members accept therefore implies that
*some live instance* accepts, which is exactly the runtime's violation
predicate (:mod:`repro.runtime.update`).  Timed and ``strict`` automata,
site-variable bindings, opaque calls, recursion past the inline budget
and configuration blow-ups all degrade to UNKNOWN — never to PROVED.
``tests/property/test_prove_soundness.py`` holds the engine to this with
randomized traces across every engine configuration.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.ast import (
    AssertionSite,
    FieldAssign,
    FunctionCall,
    FunctionReturn,
    TemporalAssertion,
)
from ..core.automaton import Automaton, Transition, TransitionKind
from ..core.events import EventKind
from ..core.translate import translate
from ..errors import AssertionParseError
from .cfg import ProgramCFG
from .diagnostics import (
    CODES,
    SCHEMA_VERSION,
    Diagnostic,
    Severity,
    diagnostic,
)

__all__ = [
    "PROVED",
    "VIOLATED",
    "UNKNOWN",
    "ProveResult",
    "ProveReport",
    "automaton_safety",
    "prove_assertion",
    "prove_assertions",
]

PROVED = "proved"
VIOLATED = "violated"
UNKNOWN = "unknown"

#: Per-(configuration, dispatch-key) cap on interacting transitions: the
#: subset exploration is 2^n, so past this the verdict degrades to
#: UNKNOWN rather than stalling an install.
_SUBSET_CAP = 10
#: Cap on explored (states, saw-site) configurations per automaton.
_CONFIG_CAP = 4096
#: Caps on the interprocedural scope expansion.
_INLINE_DEPTH_CAP = 8
_NODE_BUDGET = 4000
#: Caps on the counterexample path search.
_PATH_BUDGET = 512
_PATH_LENGTH_CAP = 400

_EVENT_KINDS = (TransitionKind.EVENT, TransitionKind.SITE)


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass
class ProveResult:
    """One assertion's verdict and the facts that justify it."""

    assertion: str
    verdict: str
    #: ``"automaton"`` or ``"product"`` for PROVED; ``""`` otherwise.
    basis: str = ""
    #: For UNKNOWN: what blocked the proof.  For VIOLATED: the failure.
    reason: str = ""
    #: For VIOLATED: readable per-step path descriptors.
    counterexample: Tuple[str, ...] = ()
    #: Exact over-approximation of runtime-occupiable automaton states
    #: (union over every explored configuration); ``None`` when the
    #: exploration was capped.  Codegen widens dead-transition elision
    #: with this — it is valid whatever the verdict.
    occupiable: Optional[FrozenSet[int]] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "assertion": self.assertion,
            "verdict": self.verdict,
            "basis": self.basis,
            "reason": self.reason,
            "counterexample": list(self.counterexample),
        }


@dataclass
class ProveReport:
    """The outcome of one prove run; mirrors :class:`LintReport`'s API so
    the CLI, health reports and the runtime gate treat them uniformly."""

    results: List[ProveResult] = field(default_factory=list)
    findings: List[Diagnostic] = field(default_factory=list)
    assertions_checked: int = 0
    elapsed_seconds: float = 0.0

    # -- aggregation ---------------------------------------------------------

    def add(self, result: ProveResult) -> None:
        self.results.append(result)
        if result.verdict == VIOLATED:
            self.findings.append(
                diagnostic(
                    "TESLA014",
                    result.assertion,
                    f"a static path violates the assertion: {result.reason}",
                    detail=" -> ".join(result.counterexample),
                )
            )
        elif result.verdict == UNKNOWN:
            self.findings.append(
                diagnostic(
                    "TESLA015",
                    result.assertion,
                    f"not statically dischargeable: {result.reason}",
                )
            )

    def extend(self, other: "ProveReport") -> None:
        self.results.extend(other.results)
        self.findings.extend(other.findings)
        self.assertions_checked += other.assertions_checked
        self.elapsed_seconds += other.elapsed_seconds

    # -- verdicts ------------------------------------------------------------

    @property
    def proved(self) -> List[ProveResult]:
        return [r for r in self.results if r.verdict == PROVED]

    @property
    def violated(self) -> List[ProveResult]:
        return [r for r in self.results if r.verdict == VIOLATED]

    @property
    def unknown(self) -> List[ProveResult]:
        return [r for r in self.results if r.verdict == UNKNOWN]

    @property
    def errors(self) -> List[Diagnostic]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        """No VIOLATED verdicts (UNKNOWN does not spoil a prove run)."""
        return not self.violated

    def proved_names(self) -> FrozenSet[str]:
        return frozenset(r.assertion for r in self.proved)

    def occupiable_states(self) -> Dict[str, FrozenSet[int]]:
        """assertion name -> occupiable-state over-approximation, for the
        automata whose exploration completed (codegen widening input)."""
        return {
            r.assertion: r.occupiable
            for r in self.results
            if r.occupiable is not None
        }

    def codes(self) -> List[str]:
        return sorted({f.code for f in self.findings})

    def exit_code(self, fail_on: str = "error") -> int:
        """Same CLI contract as lint: 2 on errors (VIOLATED), 1 on
        warnings under ``--fail-on warning``, 0 otherwise; a TESLA code
        as ``fail_on`` additionally fails (2) when that code fired."""
        if fail_on == "never":
            return 0
        if self.errors:
            return 2
        if fail_on in CODES and any(
            f.code == fail_on for f in self.findings
        ):
            return 2
        if fail_on == "warning" and self.warnings:
            return 1
        return 0

    # -- rendering -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "assertions": self.assertions_checked,
            "proved": len(self.proved),
            "violated": len(self.violated),
            "unknown": len(self.unknown),
            "clean": self.clean,
            "codes": self.codes(),
            "elapsed_seconds": self.elapsed_seconds,
        }

    def to_json(self) -> Dict[str, object]:
        return {
            "version": SCHEMA_VERSION,
            "summary": self.summary(),
            "findings": [f.to_json() for f in self.findings],
            "results": [r.to_json() for r in self.results],
        }

    def dumps(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            f.format()
            for f in sorted(
                self.findings,
                key=lambda f: (-f.severity.rank, f.code, f.assertion),
            )
            if f.severity.rank >= min_severity.rank
        ]
        for result in self.violated:
            for step in result.counterexample:
                lines.append(f"    {step}")
        proved = sorted(r.assertion for r in self.proved)
        for name in proved:
            lines.append(f"PROVED   {name}")
        lines.append(
            f"proved {len(proved)}/{self.assertions_checked} assertion(s) "
            f"in {self.elapsed_seconds * 1e3:.1f} ms: "
            f"{len(self.violated)} violated, {len(self.unknown)} unknown"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared automaton machinery
# ---------------------------------------------------------------------------


def _transitions_by_key(
    automaton: Automaton,
) -> Dict[Tuple[EventKind, str], List[Transition]]:
    """EVENT/SITE transitions grouped by the runtime's dispatch key (site
    transitions dispatch by assertion name)."""
    by_key: Dict[Tuple[EventKind, str], List[Transition]] = {}
    for t in automaton.transitions:
        if t.kind not in _EVENT_KINDS:
            continue
        if t.kind is TransitionKind.SITE:
            key = (EventKind.ASSERTION_SITE, automaton.name)
        else:
            key = automaton.symbols[t.symbol].dispatch_key
        by_key.setdefault(key, []).append(t)
    return by_key


def _is_must_match(automaton: Automaton, t: Transition) -> bool:
    """Whether ``t``'s symbol matches *every* event of its dispatch key,
    learning nothing — i.e. the transition fires deterministically.

    Field-assignment symbols are never must-match here: the CFG only
    knows the assigned attribute name, not which registered struct the
    object belongs to, so the event itself may not occur.
    """
    expr = automaton.symbols[t.symbol].expr
    if isinstance(expr, FunctionCall):
        return expr.args is None
    if isinstance(expr, FunctionReturn):
        return expr.args is None and expr.retval is None
    if isinstance(expr, AssertionSite):
        return not automaton.symbols[t.symbol].site_variables
    return False


def _config_accepts_site(
    automaton: Automaton,
    site_srcs: FrozenSet[int],
    states: FrozenSet[int],
    saw: bool,
) -> bool:
    """The runtime's per-instance site predicate: the instance takes a
    site transition, or already passed the site (with no site variables
    the already-satisfied check is unconditionally compatible)."""
    if not site_srcs.isdisjoint(states):
        return True
    return saw and not automaton.site_variables


def _site_srcs(automaton: Automaton) -> FrozenSet[int]:
    return frozenset(
        t.src
        for t in automaton.transitions
        if t.kind is TransitionKind.SITE
    )


def _step_configs(
    states: FrozenSet[int],
    saw: bool,
    enabled: Sequence[Transition],
    forced: Sequence[Transition],
) -> List[Tuple[FrozenSet[int], bool]]:
    """Successor configurations of one event under move-or-stay stepping.

    ``forced`` transitions always fire (must-match symbols); every subset
    of the remaining ``enabled`` ones may fire alongside them, covering
    whatever each pattern matcher decides at runtime.  When nothing is
    forced, the empty subset (the instance stays put) is included.
    """
    optional = [t for t in enabled if t not in forced]
    out: List[Tuple[FrozenSet[int], bool]] = []
    n = len(optional)
    for mask in range(1 << n):
        fired = list(forced)
        fired.extend(optional[i] for i in range(n) if mask >> i & 1)
        if not fired:
            continue  # staying put is the caller's current configuration
        new_states = states.difference(t.src for t in fired).union(
            t.dst for t in fired
        )
        new_saw = saw or any(
            t.kind is TransitionKind.SITE for t in fired
        )
        out.append((new_states, new_saw))
    return out


# ---------------------------------------------------------------------------
# basis 1: safety over arbitrary traces
# ---------------------------------------------------------------------------


def automaton_safety(
    automaton: Automaton,
) -> Tuple[Optional[bool], str, Optional[FrozenSet[int]]]:
    """Is the automaton safe over *every* possible event trace?

    Returns ``(safe, reason, occupiable)`` where ``safe`` is ``True``
    (no trace can violate), ``False`` (some trace can — not a program
    fact, so not VIOLATED) or ``None`` (analysis refused), ``reason``
    explains a non-True verdict, and ``occupiable`` is the union of
    states over every explored configuration — a valid over-
    approximation of runtime-occupiable states even when ``safe`` is
    not ``True`` (the subset stepping covers the runtime's stepping for
    timed, strict and binding automata alike), ``None`` only if a cap
    was hit.

    Safety needs every reachable configuration to accept its assertion
    site when one arrives (site events cannot be predicted away) and to
    be cleanup-acceptable once the site was passed (the bound may close
    at any time).  Preconditions that refuse (→ UNKNOWN): ``strict``
    stepping (an unconsumable referenced event is itself a violation),
    clock guards (verdicts depend on real time) and site variables
    (satisfaction is per dynamic binding).
    """
    by_key = _transitions_by_key(automaton)
    site_srcs = _site_srcs(automaton)

    entry = (automaton.entry_states, False)
    seen: Set[Tuple[FrozenSet[int], bool]] = {entry}
    frontier: List[Tuple[FrozenSet[int], bool]] = [entry]
    occupiable: Set[int] = set(automaton.entry_states)
    verdict: Optional[bool] = True
    reason = ""

    def refuse(why: str) -> Tuple[Optional[bool], str, None]:
        return None, why, None

    while frontier:
        states, saw = frontier.pop()
        for key, group in by_key.items():
            enabled = [t for t in group if t.src in states]
            if not enabled:
                continue
            if len(enabled) > _SUBSET_CAP:
                return refuse(
                    f"too many interacting transitions on {key[1] or key[0].value!r} "
                    f"({len(enabled)} > {_SUBSET_CAP})"
                )
            for config in _step_configs(states, saw, enabled, ()):
                if config in seen:
                    continue
                if len(seen) >= _CONFIG_CAP:
                    return refuse(
                        f"configuration explosion (> {_CONFIG_CAP} configs)"
                    )
                seen.add(config)
                frontier.append(config)
                occupiable |= config[0]

    # Judge every reachable configuration only after the exploration
    # finished, so ``occupiable`` is complete whatever the verdict.
    if automaton.strict:
        return None, (
            "strict automaton: any unconsumable referenced event is a "
            "runtime violation"
        ), frozenset(occupiable)
    if automaton.timed:
        return None, (
            "timed automaton: verdicts depend on the capture clock"
        ), frozenset(occupiable)
    if automaton.site_variables:
        return None, (
            "assertion site binds dynamic variables: satisfaction is "
            "per-binding"
        ), frozenset(occupiable)
    for states, saw in seen:
        if not _config_accepts_site(automaton, site_srcs, states, saw):
            verdict = False
            reason = (
                "a reachable configuration cannot accept the assertion "
                f"site (states {sorted(states)})"
            )
            break
        if saw and not automaton.cleanup_enabled(states):
            verdict = False
            reason = (
                "a reachable configuration holds an open 'eventually' "
                f"obligation at cleanup (states {sorted(states)})"
            )
            break
    return verdict, reason, frozenset(occupiable)


# ---------------------------------------------------------------------------
# the scope graph: the bound function's CFG, interprocedurally expanded
# ---------------------------------------------------------------------------


@dataclass
class _ScopeNode:
    id: int
    #: Same labels as :class:`repro.analysis.cfg.CFGNode`; ``None`` for
    #: structure.
    event: Optional[Tuple[str, str]]
    where: str  # "module.function:line" for counterexample rendering
    succs: List[int] = field(default_factory=list)


class _ScopeGraph:
    """The temporal bound's whole observable event structure: the bound
    entry function's CFG with relevant callees inlined."""

    def __init__(self) -> None:
        self.nodes: List[_ScopeNode] = []
        self.entry = 0
        self.exit = 0
        self.abort = 0
        #: Non-empty when expansion had to give up (recursion into the
        #: bound function, node budget) — the proof then refuses.
        self.truncated_reason = ""

    def new(self, event, where: str) -> int:
        node = _ScopeNode(id=len(self.nodes), event=event, where=where)
        self.nodes.append(node)
        return node.id


def _build_scope_graph(
    cfg: ProgramCFG,
    bound_function: str,
    relevant_calls: FrozenSet[str],
    relevant_fields: FrozenSet[str],
    site_name: str,
) -> Optional[_ScopeGraph]:
    """Inline-expand ``bound_function``; ``None`` when it is unmodelled."""
    if not cfg.defines(bound_function):
        return None
    sg = _ScopeGraph()
    sg.exit = sg.new(None, f"{bound_function}:return")
    sg.abort = sg.new(None, f"{bound_function}:raise")

    def relevant(name: str) -> bool:
        return (
            name in relevant_calls
            or name == site_name
            or name in relevant_fields
        )

    def expand(fn_name: str, stack: Tuple[str, ...],
               exit_to: int, abort_to: int) -> Optional[int]:
        """Copy ``fn_name``'s CFG into ``sg``; returns its entry node or
        ``None`` when the graph was truncated."""
        fcfg = cfg.functions[fn_name]
        if len(sg.nodes) + len(fcfg.nodes) > _NODE_BUDGET:
            sg.truncated_reason = (
                f"scope exceeds the {_NODE_BUDGET}-node inline budget"
            )
            return None
        mapping: Dict[int, int] = {
            fcfg.exit: exit_to,
            fcfg.abort: abort_to,
        }
        for node in fcfg.nodes:
            if node.id in mapping:
                continue
            where = f"{fcfg.filename}.{fcfg.name}:{node.line}"
            mapping[node.id] = sg.new(node.event, where)
        spliced: Set[int] = set()
        for node in fcfg.nodes:
            if node.id in spliced or node.id in (fcfg.exit, fcfg.abort):
                continue
            new_id = mapping[node.id]
            if node.event is not None and node.event[0] == "call":
                callee = node.event[1]
                ret_id = fcfg.call_pairs.get(node.id)
                entry_id = _expand_callee(
                    callee, stack,
                    mapping[ret_id] if ret_id is not None else None,
                    abort_to,
                )
                if entry_id is _TRUNCATED:
                    return None
                if entry_id is _OPAQUE:
                    # Replace the call's event with an opaque taint but
                    # keep the flow shape.
                    sg.nodes[new_id].event = ("opaque", f"<{callee}>")
                elif entry_id is not None and ret_id is not None:
                    # call node -> callee body -> paired return node.
                    sg.nodes[new_id].succs = [entry_id]
                    spliced.add(node.id)
                    continue
            sg.nodes[new_id].succs = [mapping[s] for s in node.succs]
        return mapping[fcfg.entry]

    def _expand_callee(callee: str, stack: Tuple[str, ...],
                       ret_to: Optional[int], abort_to: int):
        """Entry node of the inlined callee body, ``None`` to keep the
        bare call/ret events (body contributes nothing observable),
        ``_OPAQUE`` to taint, or ``_TRUNCATED`` on budget failure."""
        if callee == bound_function:
            # Re-entering the bound closes and reopens it mid-scope; the
            # single-occurrence model does not cover that.
            return _OPAQUE
        if not cfg.defines(callee):
            # Closed world: unmodelled callees emit nothing themselves.
            return None
        emit, opaque = cfg.summary(callee)
        interesting = opaque or any(relevant(name) for name in emit)
        if not interesting:
            return None
        if callee in stack or len(stack) >= _INLINE_DEPTH_CAP:
            # Bounded summary for recursion/deep chains: the callee may
            # emit relevant events we cannot order — taint.
            return _OPAQUE
        if ret_to is None:
            return _OPAQUE
        entry = expand(callee, stack + (callee,), ret_to, abort_to)
        return _TRUNCATED if entry is None else entry

    entry = expand(bound_function, (bound_function,), sg.exit, sg.abort)
    if entry is None:
        return sg  # truncated_reason is set
    sg.entry = entry
    return sg


_OPAQUE = object()
_TRUNCATED = object()


def _scope_relevance(
    automaton: Automaton,
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(function names, field names) in the automaton's alphabet."""
    calls: Set[str] = set()
    fields: Set[str] = set()
    for symbol in automaton.symbols:
        expr = symbol.expr
        if isinstance(expr, (FunctionCall, FunctionReturn)):
            calls.add(expr.function)
        elif isinstance(expr, FieldAssign):
            fields.add(expr.field_name)
    return frozenset(calls), frozenset(fields)


def _node_key(
    automaton: Automaton, event: Tuple[str, str]
) -> Optional[List[Tuple[EventKind, str]]]:
    """The dispatch keys a scope node's event can hit, or ``None`` when
    the event is invisible to this automaton."""
    kind, name = event
    if kind == "call":
        return [(EventKind.CALL, name)]
    if kind == "ret":
        return [(EventKind.RETURN, name)]
    if kind == "site":
        if name == automaton.name:
            return [(EventKind.ASSERTION_SITE, automaton.name)]
        return None
    if kind == "field":
        # The CFG knows the attribute, not the struct: every field key
        # with this attribute name may (or may not) be this store.
        keys = [
            (EventKind.FIELD_ASSIGN, key_name)
            for key_kind, key_name in (
                s.dispatch_key for s in automaton.symbols
            )
            if key_kind is EventKind.FIELD_ASSIGN
            and key_name.rsplit(".", 1)[-1] == name
        ]
        return keys or None
    return None


# ---------------------------------------------------------------------------
# basis 2: the CFG × automaton product fixpoint
# ---------------------------------------------------------------------------


def _product_prove(
    sg: _ScopeGraph, automaton: Automaton
) -> Tuple[bool, str]:
    """Explore the product to fixpoint; ``(True, "")`` when every
    configuration accepts at every site and at the normal bound exit."""
    if automaton.strict:
        return False, "strict automaton: stepping commits differently"
    if automaton.timed:
        return False, "timed automaton: verdicts depend on the capture clock"
    if sg.truncated_reason:
        return False, sg.truncated_reason

    by_key = _transitions_by_key(automaton)
    site_srcs = _site_srcs(automaton)
    configs: Dict[int, Set[Tuple[FrozenSet[int], bool]]] = {}
    entry_config = (automaton.entry_states, False)
    configs[sg.entry] = {entry_config}
    frontier: List[Tuple[int, Tuple[FrozenSet[int], bool]]] = [
        (sg.entry, entry_config)
    ]
    total = 1

    while frontier:
        node_id, (states, saw) = frontier.pop()
        node = sg.nodes[node_id]
        outputs: List[Tuple[FrozenSet[int], bool]] = [(states, saw)]
        if node.event is not None:
            kind = node.event[0]
            if kind == "opaque":
                return False, (
                    f"opaque code inside the bound at {node.where} "
                    f"({node.event[1]})"
                )
            keys = _node_key(automaton, node.event)
            if keys is not None:
                enabled: List[Transition] = []
                forced: List[Transition] = []
                for key in keys:
                    for t in by_key.get(key, ()):
                        if t.src not in states:
                            continue
                        enabled.append(t)
                        # A field store's struct is unknown, so even a
                        # must-match symbol may miss: only force when the
                        # event node pins the key exactly.
                        if kind != "field" and _is_must_match(automaton, t):
                            forced.append(t)
                if kind == "site" and not _config_accepts_site(
                    automaton, site_srcs, states, saw
                ):
                    return False, (
                        "a configuration can refuse the assertion site "
                        f"at {node.where} (states {sorted(states)})"
                    )
                if len(enabled) > _SUBSET_CAP:
                    return False, (
                        f"too many interacting transitions at {node.where}"
                    )
                if enabled:
                    stepped = _step_configs(states, saw, enabled, forced)
                    outputs = stepped if forced else stepped + outputs
        if node_id == sg.exit:
            if saw and not automaton.cleanup_enabled(states):
                return False, (
                    "an 'eventually' obligation can remain open at the "
                    "bound exit"
                )
            continue
        if node_id == sg.abort:
            # The bound function unwound: its return hook never fires, no
            # cleanup event closes the bound on this path.
            continue
        for succ in node.succs:
            bucket = configs.setdefault(succ, set())
            for config in outputs:
                if config in bucket:
                    continue
                total += 1
                if total > _CONFIG_CAP * 4:
                    return False, "product configuration explosion"
                bucket.add(config)
                frontier.append((succ, config))
    return True, ""


# ---------------------------------------------------------------------------
# the VIOLATED search: deterministic single-instance path simulation
# ---------------------------------------------------------------------------


def _find_violation(
    sg: _ScopeGraph, automaton: Automaton
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """A concrete violating path, or ``None``.

    Only forced steps are simulated: the moment a path meets an opaque
    node, a field store, or any transition whose pattern might fail (or
    bind — cloning breaks the single-instance model), the path is
    abandoned.  What survives is a trace the runtime *must* produce when
    the path executes, so a violation on it is real (modulo static path
    feasibility, which the diagnostic's wording owns).
    """
    if automaton.strict or automaton.timed or automaton.site_variables:
        return None
    if sg.truncated_reason:
        return None

    by_key = _transitions_by_key(automaton)
    site_srcs = _site_srcs(automaton)
    budget = [_PATH_BUDGET]

    def walk(
        node_id: int,
        states: FrozenSet[int],
        saw: bool,
        path: Tuple[str, ...],
        taken: FrozenSet[Tuple[int, int]],
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        if budget[0] <= 0 or len(path) > _PATH_LENGTH_CAP:
            return None
        node = sg.nodes[node_id]
        if node.event is not None:
            kind, name = node.event
            if kind == "opaque" or kind == "field":
                return None  # indeterminate trace
            keys = _node_key(automaton, node.event)
            if keys is not None:
                enabled = [
                    t
                    for key in keys
                    for t in by_key.get(key, ())
                    if t.src in states
                ]
                if any(
                    not _is_must_match(automaton, t) for t in enabled
                ):
                    return None  # a matcher might fail or clone
                # Any may-match symbol on this key could also *create*
                # a clone from a state not currently held — it cannot:
                # enabled is per current states; unseen srcs fire nothing.
                path = path + (f"{node.where} {kind} {name}",)
                if kind == "site" and not _config_accepts_site(
                    automaton, site_srcs, states, saw
                ):
                    return (
                        "no automaton instance can accept the assertion "
                        "site on this path",
                        path,
                    )
                if enabled:
                    states = states.difference(
                        t.src for t in enabled
                    ).union(t.dst for t in enabled)
                    saw = saw or any(
                        t.kind is TransitionKind.SITE for t in enabled
                    )
        if node_id == sg.exit:
            budget[0] -= 1
            if saw and not automaton.cleanup_enabled(states):
                return (
                    "the bound exits with an undischarged 'eventually' "
                    "obligation on this path",
                    path + (f"{sg.nodes[sg.exit].where} cleanup",),
                )
            return None
        if node_id == sg.abort:
            budget[0] -= 1
            return None
        for succ in node.succs:
            edge = (node_id, succ)
            if edge in taken:
                continue  # each loop body at most once per path
            found = walk(succ, states, saw, path, taken | {edge})
            if found is not None:
                return found
        return None

    entry = sg.nodes[sg.entry]
    return walk(
        sg.entry,
        automaton.entry_states,
        False,
        (f"{entry.where} bound entry",),
        frozenset(),
    )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


def prove_assertion(
    assertion: TemporalAssertion,
    cfg: Optional[ProgramCFG] = None,
) -> ProveResult:
    """Run every basis over one assertion, strongest verdict first."""
    try:
        automaton = translate(assertion)
    except AssertionParseError as error:
        return ProveResult(
            assertion=assertion.name,
            verdict=UNKNOWN,
            reason=f"untranslatable assertion: {error.plain_message}",
        )

    safe, safety_reason, occupiable = automaton_safety(automaton)
    if safe is True:
        return ProveResult(
            assertion=assertion.name,
            verdict=PROVED,
            basis="automaton",
            reason="safe over arbitrary event traces",
            occupiable=occupiable,
        )

    reasons = [safety_reason] if safety_reason else []
    sg: Optional[_ScopeGraph] = None
    if cfg is not None and isinstance(assertion.bound.entry, FunctionCall):
        relevant_calls, relevant_fields = _scope_relevance(automaton)
        sg = _build_scope_graph(
            cfg,
            assertion.bound.entry.function,
            relevant_calls,
            relevant_fields,
            assertion.name,
        )
        if sg is None:
            reasons.append(
                f"bound function {assertion.bound.entry.function!r} is "
                "not in the modelled sources"
            )
    elif cfg is None:
        reasons.append("no program model supplied")
    else:
        reasons.append("temporal bound is not a function-call event")

    if sg is not None:
        proved, product_reason = _product_prove(sg, automaton)
        if proved:
            return ProveResult(
                assertion=assertion.name,
                verdict=PROVED,
                basis="product",
                reason="no modelled path can violate",
                occupiable=occupiable,
            )
        reasons.append(product_reason)
        violation = _find_violation(sg, automaton)
        if violation is not None:
            why, path = violation
            return ProveResult(
                assertion=assertion.name,
                verdict=VIOLATED,
                reason=why,
                counterexample=path,
                occupiable=occupiable,
            )

    distinct = list(dict.fromkeys(r for r in reasons if r))
    return ProveResult(
        assertion=assertion.name,
        verdict=UNKNOWN,
        reason="; ".join(distinct) or "analysis refused",
        occupiable=occupiable,
    )


def prove_assertions(
    assertions: Iterable[TemporalAssertion],
    cfg: Optional[ProgramCFG] = None,
) -> ProveReport:
    """Prove a batch; never raises on a malformed assertion."""
    start = time.perf_counter()
    report = ProveReport()
    for assertion in assertions:
        report.assertions_checked += 1
        report.add(prove_assertion(assertion, cfg=cfg))
    report.elapsed_seconds = time.perf_counter() - start
    return report
