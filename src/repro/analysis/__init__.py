"""Static analysis extensions (the paper's section 7 future work)."""

from .static import (
    ElisionReport,
    MustCheckAnalysis,
    StaticModel,
    apply_static_elision,
    must_check_before_site,
    never_satisfiable,
)

__all__ = [
    "ElisionReport",
    "MustCheckAnalysis",
    "StaticModel",
    "apply_static_elision",
    "must_check_before_site",
    "never_satisfiable",
]
