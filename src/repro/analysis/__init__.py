"""Static analysis: elision (section 7 future work) and tesla-lint.

Two tools share this package.  The must-check elision analysis
(:mod:`repro.analysis.static`) removes instrumentation that a dominating
check makes redundant; the tesla-lint verifier (:mod:`repro.analysis.lint`
and friends) proves assertions sane *before* instrumentation, reporting
stable ``TESLA0xx`` diagnostics (DESIGN §5.5).
"""

from .diagnostics import (
    CODES,
    SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    Severity,
    diagnostic,
)
from .lint import (
    available_suites,
    lint_assertions,
    lint_automata,
    lint_corpus,
    lint_suite,
    load_suite,
)
from .machine import MACHINE_PASSES, lint_automaton
from .program import ProgramModel, fixed_arity, lint_program, signature_arity
from .static import (
    ElisionReport,
    MustCheckAnalysis,
    StaticModel,
    apply_static_elision,
    must_check_before_site,
    never_satisfiable,
)

__all__ = [
    "CODES",
    "SCHEMA_VERSION",
    "Diagnostic",
    "ElisionReport",
    "LintReport",
    "MACHINE_PASSES",
    "MustCheckAnalysis",
    "ProgramModel",
    "Severity",
    "StaticModel",
    "apply_static_elision",
    "available_suites",
    "diagnostic",
    "fixed_arity",
    "lint_assertions",
    "lint_automata",
    "lint_automaton",
    "lint_corpus",
    "lint_program",
    "lint_suite",
    "load_suite",
    "must_check_before_site",
    "never_satisfiable",
    "signature_arity",
]
