"""Static analysis: elision (section 7 future work) and tesla-lint.

Two tools share this package.  The must-check elision analysis
(:mod:`repro.analysis.static`) removes instrumentation that a dominating
check makes redundant; the tesla-lint verifier (:mod:`repro.analysis.lint`
and friends) proves assertions sane *before* instrumentation, reporting
stable ``TESLA0xx`` diagnostics (DESIGN §5.5).

A third tool joined in DESIGN §5.10: tesla-prove
(:mod:`repro.analysis.cfg` + :mod:`repro.analysis.prove`) model-checks
each assertion against the product of its scope-bounded program CFG and
translated automaton, discharging assertions entirely (PROVED), refuting
them with a concrete counterexample path (VIOLATED, ``TESLA014``), or
leaving them to runtime monitoring (UNKNOWN, ``TESLA015``).
"""

from .cfg import FunctionCFG, ProgramCFG
from .diagnostics import (
    CODES,
    SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    Severity,
    diagnostic,
)
from .lint import (
    available_suites,
    lint_assertions,
    lint_automata,
    lint_corpus,
    lint_suite,
    load_suite,
    prove_corpus,
    prove_suite,
    suite_program_cfg,
)
from .machine import MACHINE_PASSES, lint_automaton
from .prove import (
    PROVED,
    UNKNOWN,
    VIOLATED,
    ProveReport,
    ProveResult,
    automaton_safety,
    prove_assertion,
    prove_assertions,
)
from .program import ProgramModel, fixed_arity, lint_program, signature_arity
from .static import (
    ElisionReport,
    MustCheckAnalysis,
    StaticModel,
    apply_static_elision,
    must_check_before_site,
    never_satisfiable,
)

__all__ = [
    "CODES",
    "SCHEMA_VERSION",
    "Diagnostic",
    "ElisionReport",
    "FunctionCFG",
    "LintReport",
    "MACHINE_PASSES",
    "MustCheckAnalysis",
    "PROVED",
    "ProgramCFG",
    "ProgramModel",
    "ProveReport",
    "ProveResult",
    "Severity",
    "StaticModel",
    "UNKNOWN",
    "VIOLATED",
    "apply_static_elision",
    "automaton_safety",
    "available_suites",
    "diagnostic",
    "fixed_arity",
    "lint_assertions",
    "lint_automata",
    "lint_automaton",
    "lint_corpus",
    "lint_program",
    "lint_suite",
    "load_suite",
    "must_check_before_site",
    "never_satisfiable",
    "prove_assertion",
    "prove_assertions",
    "prove_corpus",
    "prove_suite",
    "signature_arity",
    "suite_program_cfg",
]
