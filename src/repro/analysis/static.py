"""Static discharge of temporal assertions (paper section 7).

"A natural next direction would be to explore cases where static analysis
could be used to both improve accuracy and performance.  Where
inter-procedural analysis is reliable … it might be that otherwise
expensive sequences of checks and state transitions could be entirely
elided.  A further advantage would be compile-time reporting of potential
failures."

This module implements that direction for ``previously``-style assertions:

* :class:`StaticModel` builds a call-ordered model of Python source —
  which functions call which, where the ``tesla_site`` markers are, and
  whether a call is *unconditional* (straight-line) or *conditional*
  (under ``if``/``for``/``while``/``try``).
* :func:`must_check_before_site` answers "on every modelled path from the
  temporal bound to the assertion site, is one of the checking functions
  called first?"  — the condition under which the run-time automaton can
  never fire and its instrumentation can be elided.
* :func:`apply_static_elision` partitions a batch of assertions into
  *discharged* (provably satisfied — skip instrumentation), *doomed*
  (provably unsatisfiable: the site is statically reachable but no
  referenced event ever happens — report at "compile time"), and
  *monitored* (everything the analysis cannot decide, left to libtesla).

Soundness posture: a conditional call neither discharges an obligation
(it may not run) nor is ignored as a threat (it may run and reach the
site); calls through unknown callees (function pointers, method tables —
the kernel's VOP/pr_usrreqs indirection) make the caller *opaque*, and
anything reachable through opaque code is conservatively left monitored.
Exactly as the paper anticipates, the dynamic indirection that motivates
TESLA also bounds how much this static pass can discharge.
"""

from __future__ import annotations

import ast
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..core.ast import (
    AssertionSite,
    Expression,
    FunctionCall,
    FunctionReturn,
    Sequence as SeqExpr,
    TemporalAssertion,
    walk,
)

# ---------------------------------------------------------------------------
# source model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallStep:
    """One modelled step inside a function body, in statement order."""

    kind: str  # "call" | "site" | "opaque"
    name: str
    #: True when the step executes on every path through the body
    #: (not nested under a branch, loop, or exception handler).
    unconditional: bool


@dataclass
class FunctionModel:
    name: str
    steps: List[CallStep] = field(default_factory=list)

    @property
    def opaque(self) -> bool:
        return any(step.kind == "opaque" for step in self.steps)


class _BodyVisitor(ast.NodeVisitor):
    """Collects :class:`CallStep` entries from one function body."""

    CONDITIONAL_NODES = (
        ast.If,
        ast.For,
        ast.While,
        ast.Try,
        ast.With,  # bodies may be skipped via __enter__ raising
        ast.IfExp,
        ast.BoolOp,
    )

    def __init__(self) -> None:
        self.steps: List[CallStep] = []
        self._depth = 0

    def visit_Call(self, node: ast.Call) -> None:
        unconditional = self._depth == 0
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "tesla_site" and node.args:
                site = node.args[0]
                if isinstance(site, ast.Constant) and isinstance(site.value, str):
                    self.steps.append(CallStep("site", site.value, unconditional))
                else:
                    # Computed site names (procfs) are modelled opaquely.
                    self.steps.append(CallStep("opaque", "<dynamic-site>", unconditional))
            else:
                self.steps.append(CallStep("call", func.id, unconditional))
        elif isinstance(func, ast.Attribute):
            if func.attr == "tesla_site":
                pass  # qualified site calls are not used in this codebase
            elif isinstance(func.value, ast.Name):
                # module.fn(...) / self.method(...): a resolvable name.
                self.steps.append(CallStep("call", func.attr, unconditional))
            else:
                # fp.f_ops.fo_poll(...): a chained attribute lookup is a
                # function-pointer dereference as far as this model knows.
                self.steps.append(
                    CallStep("opaque", f"<{func.attr}>", unconditional)
                )
        else:
            # vp.v_op["open"](...), fp(...), etc.: unknown callee.
            self.steps.append(CallStep("opaque", "<indirect>", unconditional))
        self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, self.CONDITIONAL_NODES):
            self._depth += 1
            super().generic_visit(node)
            self._depth -= 1
        else:
            super().generic_visit(node)


class StaticModel:
    """A call-ordered model of a set of Python modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionModel] = {}

    @classmethod
    def from_modules(
        cls, modules: Sequence[types.ModuleType]
    ) -> "StaticModel":
        model = cls()
        for module in modules:
            path = getattr(module, "__file__", None)
            if path is None:
                continue
            model.add_source(Path(path).read_text(), filename=module.__name__)
        return model

    def add_source(self, source: str, filename: str = "<source>") -> None:
        tree = ast.parse(source, filename=filename)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visitor = _BodyVisitor()
                for statement in node.body:
                    visitor.visit(statement)
                # Later definitions shadow earlier ones, as at import time.
                self.functions[node.name] = FunctionModel(
                    name=node.name, steps=visitor.steps
                )

    def defines(self, name: str) -> bool:
        return name in self.functions

    def callers_of(self, name: str) -> List[str]:
        return sorted(
            fn.name
            for fn in self.functions.values()
            if any(s.kind == "call" and s.name == name for s in fn.steps)
        )

    def site_hosts(self, site_name: str) -> List[str]:
        return sorted(
            fn.name
            for fn in self.functions.values()
            if any(s.kind == "site" and s.name == site_name for s in fn.steps)
        )


# ---------------------------------------------------------------------------
# the must-check analysis
# ---------------------------------------------------------------------------

#: Tri-state summaries for "does this function always call a check?".
_ALWAYS, _NEVER, _MAYBE = "always", "never", "maybe"


class MustCheckAnalysis:
    """Does every modelled path from ``bound`` to ``site`` check first?"""

    def __init__(self, model: StaticModel, checks: FrozenSet[str]) -> None:
        self.model = model
        self.checks = checks
        self._always_cache: Dict[str, str] = {}
        #: Functions visited by the forward exploration — a discharge is
        #: only claimed if the site's host is among them (otherwise the
        #: site must be reachable through unresolved indirection).
        self.visited: Set[str] = set()

    # -- per-function summary: does fn always perform a check? ---------------

    def always_checks(self, name: str, _stack: Optional[Set[str]] = None) -> str:
        if name in self._always_cache:
            return self._always_cache[name]
        stack = _stack or set()
        if name in stack:
            return _MAYBE  # recursion: stay undecided
        fn = self.model.functions.get(name)
        if fn is None:
            return _NEVER
        stack = stack | {name}
        verdict = _NEVER
        for step in fn.steps:
            if step.kind == "call":
                if step.name in self.checks:
                    inner = _ALWAYS
                else:
                    inner = self.always_checks(step.name, stack)
                if inner == _ALWAYS and step.unconditional:
                    verdict = _ALWAYS
                    break
                if inner != _NEVER:
                    verdict = _MAYBE
        self._always_cache[name] = verdict
        return verdict

    # -- can the site be reached without a prior check? -----------------------

    def site_reachable_unchecked(
        self,
        name: str,
        site: str,
        checked: bool,
        _stack: Optional[Set[str]] = None,
    ) -> Optional[bool]:
        """True: a modelled unchecked path reaches the site.
        False: every modelled path checks first (or never reaches it).
        None: undecidable (opaque calls en route)."""
        stack = _stack or frozenset()
        if (name, checked) in stack:
            return False  # re-entering with no new facts adds no paths
        fn = self.model.functions.get(name)
        if fn is None:
            return False
        stack = set(stack) | {(name, checked)}
        self.visited.add(name)
        undecided = False
        for step in fn.steps:
            if step.kind == "opaque":
                # A function-pointer dereference can reach anything —
                # including the site's host.  Harmless once a check is
                # already in force; undecidable before one.
                if not checked:
                    undecided = True
                continue
            if step.kind == "site":
                if step.name == site and not checked:
                    return True
                continue
            # a call step
            if step.name in self.checks:
                if step.unconditional:
                    checked = True
                continue
            inner = self.site_reachable_unchecked(step.name, site, checked, stack)
            if inner:
                return True
            if inner is None:
                undecided = True
            summary = self.always_checks(step.name)
            if summary == _ALWAYS and step.unconditional:
                checked = True
        return None if undecided else False


# ---------------------------------------------------------------------------
# assertion-level driver
# ---------------------------------------------------------------------------


def _previously_checks(assertion: TemporalAssertion) -> Optional[FrozenSet[str]]:
    """The checking-function alternatives of a simple ``previously`` body.

    Returns None for shapes (eventually, nested sequences, field events)
    the static pass does not attempt.
    """
    expression = assertion.expression
    if not isinstance(expression, SeqExpr) or len(expression.parts) != 2:
        return None
    body, site = expression.parts
    if not isinstance(site, AssertionSite):
        return None
    names: Set[str] = set()
    for node in walk(body):
        if isinstance(node, (FunctionCall, FunctionReturn)):
            names.add(node.function)
        elif isinstance(node, AssertionSite):
            return None
        elif not isinstance(node, type(body)) and node is not body:
            # Operators other than a single event / flat OR are skipped.
            pass
    return frozenset(names) if names else None


def must_check_before_site(
    model: StaticModel, assertion: TemporalAssertion
) -> Optional[bool]:
    """Tri-state: True = statically discharged, False = a modelled
    unchecked path exists, None = the analysis cannot decide."""
    checks = _previously_checks(assertion)
    if checks is None:
        return None
    bound = assertion.bound.entry
    if not isinstance(bound, FunctionCall):
        return None
    hosts = model.site_hosts(assertion.name)
    if not hosts:
        return None  # the site is not in modelled code
    analysis = MustCheckAnalysis(model, checks)
    reachable = analysis.site_reachable_unchecked(
        bound.function, assertion.name, checked=False
    )
    if reachable is None:
        return None
    if reachable:
        return False
    # No unchecked path was *modelled* — but a discharge is only honest if
    # the exploration actually explains how the site is reached.  A host
    # the forward walk never visited must be reached through indirection
    # the model cannot follow (figure 3's layers), so stay undecided.
    if not all(host in analysis.visited for host in hosts):
        return None
    return True


def never_satisfiable(
    model: StaticModel, assertion: TemporalAssertion
) -> bool:
    """Compile-time failure report: the site is statically present but no
    referenced checking function is defined or called anywhere modelled."""
    checks = _previously_checks(assertion)
    if checks is None:
        return False
    if not model.site_hosts(assertion.name):
        return False
    for check in checks:
        if model.defines(check) or model.callers_of(check):
            return False
    return True


@dataclass
class ElisionReport:
    """The outcome of a static pass over a batch of assertions."""

    discharged: List[TemporalAssertion] = field(default_factory=list)
    doomed: List[TemporalAssertion] = field(default_factory=list)
    monitored: List[TemporalAssertion] = field(default_factory=list)

    def summary(self) -> str:
        total = len(self.discharged) + len(self.doomed) + len(self.monitored)
        lines = [
            f"static elision: {len(self.discharged)}/{total} discharged, "
            f"{len(self.doomed)} doomed, {len(self.monitored)} monitored"
        ]
        for assertion in self.discharged:
            lines.append(f"  discharged: {assertion.name}")
        for assertion in self.doomed:
            lines.append(f"  DOOMED (will always fail): {assertion.name}")
        return "\n".join(lines)


def apply_static_elision(
    model: StaticModel, assertions: Sequence[TemporalAssertion]
) -> ElisionReport:
    """Partition assertions by what the static pass can prove.

    ``monitored`` is what should actually be instrumented; ``doomed``
    entries deserve a compile-time diagnostic before any run.
    """
    report = ElisionReport()
    for assertion in assertions:
        if never_satisfiable(model, assertion):
            report.doomed.append(assertion)
            continue
        verdict = must_check_before_site(model, assertion)
        if verdict is True:
            report.discharged.append(assertion)
        else:
            report.monitored.append(assertion)
    return report
