"""Automaton-layer lint passes: structural sanity of translated automata.

These passes operate on the analyser's output (:class:`~repro.core.automaton.Automaton`)
under the same stepping rule the runtime uses (:mod:`repro.core.determinize`),
so their verdicts describe what the *runtime* can and cannot do, not just
graph reachability:

* TESLA001/TESLA002 — unreachable states and dead transitions: artefacts a
  correct translation pipeline prunes, so their presence means a hand-built
  or post-processed automaton is carrying baggage the runtime will never
  exercise.
* TESLA003 — emptiness: the accept state is unreachable, so no trace can
  ever satisfy the assertion (the paper's "cannot be implemented" case).
* TESLA004 — vacuity: no trace can ever *violate* the assertion.  The
  check is conservative: it claims vacuity only when, under the runtime's
  move-or-stay stepping with arbitrary pattern-match outcomes, every
  reachable configuration keeps the assertion site enabled and every
  post-site configuration keeps cleanup accepting — the exact conditions
  under which :mod:`repro.runtime.update` can never report.  The GNUstep
  tracing idiom (``ATLEAST(0, …)``, figure 8) is vacuous *by design* and
  is suppressed when the assertion AST is available.
* TESLA005 — conflicting modifiers: ``strict`` wrapped around an
  optional-only body, and ``ATLEAST`` bounds that the runtime's
  bound-event handling makes unmeetable.
* TESLA006 — NOW-site reachability: the assertion-site transition cannot
  be reached from any bound-entry state.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from ..core.ast import (
    AtLeast,
    FieldAssign,
    FunctionCall,
    FunctionReturn,
    Optional_,
    TemporalAssertion,
    walk,
)
from ..core.automaton import Automaton, EventSymbol, TransitionKind
from .diagnostics import Diagnostic, diagnostic

#: Transition kinds an instance can take while the bound is open.
_BODY_KINDS = (TransitionKind.EVENT, TransitionKind.SITE)


def _location(assertion: Optional[TemporalAssertion]) -> str:
    return assertion.location if assertion is not None else ""


def _forward_reachable(
    automaton: Automaton,
    starts: Iterable[int],
    kinds: Optional[tuple] = None,
) -> FrozenSet[int]:
    """States reachable from ``starts``, optionally restricted to ``kinds``."""
    seen: Set[int] = set()
    frontier = list(starts)
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        for t in automaton.outgoing(state):
            if kinds is None or t.kind in kinds:
                frontier.append(t.dst)
    return frozenset(seen)


def _co_reachable(automaton: Automaton) -> FrozenSet[int]:
    """States from which the accept state is reachable."""
    incoming: dict = {}
    for t in automaton.transitions:
        incoming.setdefault(t.dst, []).append(t.src)
    seen: Set[int] = set()
    frontier = [automaton.accept]
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        frontier.extend(incoming.get(state, ()))
    return frozenset(seen)


def _has_outgoing(automaton: Automaton, state: int, kind: TransitionKind) -> bool:
    return any(t.kind is kind for t in automaton.outgoing(state))


# ---------------------------------------------------------------------------
# passes
# ---------------------------------------------------------------------------


def check_unreachable_states(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """TESLA001: states no trace can ever enter."""
    reachable = _forward_reachable(automaton, [automaton.start])
    dead = sorted(set(range(automaton.n_states)) - set(reachable))
    if not dead:
        return []
    return [
        diagnostic(
            "TESLA001",
            automaton.name,
            f"{len(dead)} state(s) unreachable from the start state",
            location=_location(assertion),
            detail=f"states {dead}",
        )
    ]


def check_dead_transitions(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """TESLA002: transitions on no start-to-accept path.

    Reported only when the automaton is satisfiable at all — an empty
    automaton makes every transition dead, and TESLA003 is the real story.
    """
    reachable = _forward_reachable(automaton, [automaton.start])
    if automaton.accept not in reachable:
        return []
    alive = _co_reachable(automaton)
    dead = [
        t
        for t in automaton.transitions
        if t.src in reachable and t.dst not in alive
    ]
    if not dead:
        return []
    shown = ", ".join(t.describe(automaton) for t in dead[:4])
    if len(dead) > 4:
        shown += f", … ({len(dead) - 4} more)"
    return [
        diagnostic(
            "TESLA002",
            automaton.name,
            f"{len(dead)} transition(s) lead into states that can never "
            f"reach the accept state",
            location=_location(assertion),
            detail=shown,
        )
    ]


def check_satisfiable(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """TESLA003: emptiness — no trace can drive start to accept."""
    reachable = _forward_reachable(automaton, [automaton.start])
    if automaton.accept in reachable:
        return []
    return [
        diagnostic(
            "TESLA003",
            automaton.name,
            "assertion is unsatisfiable: the accept state is unreachable, "
            "so every completed bound ends in a violation or a discard",
            location=_location(assertion),
        )
    ]


def check_site_reachable(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """TESLA006: the NOW/assertion-site transition must be reachable from
    the bound's entry states, else the assertion can never be evaluated."""
    site_srcs = {
        t.src
        for t in automaton.transitions
        if t.kind is TransitionKind.SITE
    }
    if not site_srcs:
        return [
            diagnostic(
                "TESLA006",
                automaton.name,
                "automaton has no assertion-site transition at all",
                location=_location(assertion),
            )
        ]
    live = _forward_reachable(automaton, automaton.entry_states, _BODY_KINDS)
    if site_srcs & set(live):
        return []
    return [
        diagnostic(
            "TESLA006",
            automaton.name,
            "no assertion-site transition is reachable from the bound's "
            "entry states: the site can never fire inside the bound",
            location=_location(assertion),
        )
    ]


def _split_optionality(expression) -> tuple:
    """``(required, optional_only)`` descriptions of the concrete events in
    ``expression``: an event is optional when every path to it passes
    through ``optional(…)`` or ``ATLEAST(0, …)``."""
    required: List[str] = []
    optional_only: List[str] = []

    def scan(expr, optional: bool) -> None:
        if isinstance(expr, Optional_):
            scan(expr.inner, True)
            return
        if isinstance(expr, AtLeast):
            for event in expr.events:
                scan(event, optional or expr.minimum == 0)
            return
        if isinstance(expr, (FunctionCall, FunctionReturn, FieldAssign)):
            (optional_only if optional else required).append(expr.describe())
            return
        for child in expr.children():
            scan(child, optional)

    scan(expression, False)
    return required, optional_only


def _uses_tracing_idiom(assertion: TemporalAssertion) -> bool:
    """The instrumentation-tracing idioms: a body whose every concrete
    event is optional (``ATLEAST(0, …)`` per figure 8, or
    ``optionally(…)`` as in the kernel infrastructure set) is vacuous *by
    design* — it exists to drive hooks, not to be falsifiable."""
    required, optional_only = _split_optionality(assertion.expression)
    return bool(optional_only) and not required


def check_vacuous(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """TESLA004: the assertion can never be violated.

    Sound under the runtime's semantics (:mod:`repro.runtime.update`):

    * a site event only violates when *no* instance can take a site
      transition and none already passed the site — impossible if every
      state reachable from entry over body events has a site edge and the
      site symbol binds no dynamic variables (so it can never mismatch);
    * a cleanup only violates an instance that ``saw_site`` but cannot
      accept — impossible if every state reachable from a site target has
      a cleanup edge;
    * strict automata can always be violated by an unconsumable referenced
      event, so they are never flagged.

    Both conditions quantify over *individual* states, so they hold under
    any combination of pattern-match failures (move-or-stay leaves each
    instance on some reachable state either way).
    """
    if automaton.strict:
        return []
    if automaton.timed:
        # Clock guards violate on *time*, not structure: a deadline can
        # expire with no successor event, a rate window can block an
        # occurrence.  The structural argument below is unsound for them.
        return []
    if automaton.site_variables:
        # The site can mismatch on a bound variable, which is a violation.
        return []
    if assertion is not None and _uses_tracing_idiom(assertion):
        # Vacuous by design (figure 8 tracing): not a defect.
        return []
    pre_site = _forward_reachable(
        automaton, automaton.entry_states, (TransitionKind.EVENT,)
    )
    if not all(
        _has_outgoing(automaton, s, TransitionKind.SITE) for s in pre_site
    ):
        return []
    site_dsts = [
        t.dst
        for t in automaton.transitions
        if t.kind is TransitionKind.SITE
    ]
    post_site = _forward_reachable(
        automaton, site_dsts, (TransitionKind.EVENT,)
    )
    if not all(
        _has_outgoing(automaton, s, TransitionKind.CLEANUP) for s in post_site
    ):
        return []
    return [
        diagnostic(
            "TESLA004",
            automaton.name,
            "assertion is vacuous: the assertion site is enabled in every "
            "reachable configuration and cleanup always accepts, so no "
            "trace can ever violate it",
            location=_location(assertion),
        )
    ]


def _event_key(expr) -> tuple:
    return EventSymbol(expr).dispatch_key


def check_conflicting_modifiers(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """TESLA005: modifier combinations the runtime can never satisfy.

    * ``strict`` + optional-only body: strictness punishes stray events,
      but a body whose every event is under ``optional``/``ATLEAST(0)``
      requires nothing — the two modifiers contradict each other.
    * ``ATLEAST(n >= 1)`` counting only the bound's *entry* event: the
      dispatch plan never feeds an automaton's own bound-entry event to
      its body (``initiated`` short-circuit), so the count stays 0.
    * ``ATLEAST(n >= 2)`` counting only the bound's *exit* event: the
      first occurrence closes the bound, so the count can never reach 2.
    """
    if assertion is None:
        return []
    out: List[Diagnostic] = []
    location = _location(assertion)

    if automaton.strict:
        required, optional_only = _split_optionality(assertion.expression)
        if optional_only and not required:
            out.append(
                diagnostic(
                    "TESLA005",
                    automaton.name,
                    "strict modifier over an optional-only body: nothing "
                    "is required, yet every referenced event that cannot "
                    "step becomes a violation",
                    location=location,
                    detail=f"optional events: {', '.join(optional_only[:4])}",
                )
            )

    entry_key = _event_key(assertion.bound.entry)
    exit_key = _event_key(assertion.bound.exit)
    for node in walk(assertion.expression):
        if not isinstance(node, AtLeast) or node.minimum < 1 or not node.events:
            continue
        keys = {_event_key(e) for e in node.events}
        if keys == {entry_key}:
            out.append(
                diagnostic(
                    "TESLA005",
                    automaton.name,
                    f"ATLEAST({node.minimum}) counts only the bound's entry "
                    "event, which the runtime never replays into the body — "
                    "the bound can never be met",
                    location=location,
                    detail=assertion.bound.entry.describe(),
                )
            )
        elif keys == {exit_key} and node.minimum >= 2:
            out.append(
                diagnostic(
                    "TESLA005",
                    automaton.name,
                    f"ATLEAST({node.minimum}) counts only the bound's exit "
                    "event, whose first occurrence closes the bound — the "
                    "bound can never be met",
                    location=location,
                    detail=assertion.bound.exit.describe(),
                )
            )
    return out


def check_timed_satisfiable(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """TESLA013: statically unsatisfiable (or degenerate) clock constraints.

    * ``rate_atmost(0, …)``: the window admits no occurrence at all, so
      every matching event inside the bound is a violation — almost
      certainly a mis-typed bound, flagged before it floods production.
    * a ``0 ms`` guard on a transition whose source is not a bound-entry
      state: a required intermediate event was consumed before it, so the
      guarded event can only match if it was captured on the *same* clock
      reading — satisfiable only inside a single stamped batch, never
      across genuine time.
    """
    out: List[Diagnostic] = []
    location = _location(assertion)
    entry = set(automaton.entry_states)
    seen: Set[object] = set()
    for t in automaton.transitions:
        guard = t.guard
        if guard is None or guard in seen:
            continue
        if guard.kind == "rate":
            if guard.count == 0:
                seen.add(guard)
                out.append(
                    diagnostic(
                        "TESLA013",
                        automaton.name,
                        "rate_atmost(0, …) admits no matching event at "
                        "all: every occurrence inside the bound becomes "
                        "a violation",
                        location=location,
                        detail=t.describe(automaton),
                    )
                )
        elif guard.limit_s == 0 and t.src not in entry:
            seen.add(guard)
            out.append(
                diagnostic(
                    "TESLA013",
                    automaton.name,
                    "0 ms clock guard after a required intermediate "
                    "event: the guarded event must share its "
                    "predecessor's capture stamp, which never happens "
                    "across genuine time",
                    location=location,
                    detail=t.describe(automaton),
                )
            )
    return out


#: Every machine-layer pass, in reporting order.
MACHINE_PASSES = (
    check_satisfiable,
    check_site_reachable,
    check_unreachable_states,
    check_dead_transitions,
    check_vacuous,
    check_conflicting_modifiers,
    check_timed_satisfiable,
)


def lint_automaton(
    automaton: Automaton, assertion: Optional[TemporalAssertion] = None
) -> List[Diagnostic]:
    """Run every automaton-layer pass over one automaton."""
    findings: List[Diagnostic] = []
    for check in MACHINE_PASSES:
        findings.extend(check(automaton, assertion))
    return findings
