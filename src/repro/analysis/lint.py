"""tesla-lint: the multi-pass static assertion verifier (DESIGN §5.5).

The driver ties the layers together.  For each assertion in a batch it

1. checks batch-level invariants (TESLA011 duplicate names),
2. translates it, converting analyser rejections into TESLA012 findings
   instead of exceptions,
3. runs the automaton-layer passes (:mod:`repro.analysis.machine`), and
4. when a :class:`~repro.analysis.program.ProgramModel` is supplied, runs
   the program cross-checks (:mod:`repro.analysis.program`) and collects
   the ``arity_safe`` facts the runtime handoff consumes.

The module also knows how to assemble the in-repo assertion corpus — the
``examples``/``kernel``/``sslx``/``gui`` suites the CLI, CI job and
benchmarks lint — including each suite's program model (which modules to
import, which selectors are dynamically dispatched).
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ast import TemporalAssertion
from ..core.automaton import Automaton
from ..core.translate import translate
from ..errors import AssertionParseError
from .cfg import ProgramCFG
from .diagnostics import LintReport, diagnostic
from .machine import lint_automaton
from .program import ProgramModel, lint_program
from .prove import ProveReport, prove_assertions
from .static import StaticModel


def lint_assertions(
    assertions: Sequence[TemporalAssertion],
    program: Optional[ProgramModel] = None,
) -> LintReport:
    """Lint a batch of assertions; never raises on a malformed assertion.

    With ``program=None`` only the batch and automaton layers run — the
    configuration the runtime's install-time gate uses, since the runtime
    cannot know which caller modules or selectors an instrumenter will
    later supply.
    """
    start = time.perf_counter()
    report = LintReport()
    seen: Dict[str, int] = {}
    for assertion in assertions:
        report.assertions_checked += 1
        count = seen.get(assertion.name, 0)
        seen[assertion.name] = count + 1
        if count:
            report.add(
                [
                    diagnostic(
                        "TESLA011",
                        assertion.name,
                        "assertion name declared more than once: automaton "
                        "classes and dispatch are keyed by name, so the "
                        "declarations would share one automaton",
                        location=assertion.location,
                        detail=assertion.describe(),
                    )
                ]
            )
            continue
        try:
            automaton = translate(assertion)
        except AssertionParseError as error:
            report.add(
                [
                    diagnostic(
                        "TESLA012",
                        assertion.name,
                        f"analyser rejected the assertion: {error.plain_message}",
                        location=assertion.location,
                        detail=assertion.describe(),
                    )
                ]
            )
            continue
        report.add(lint_automaton(automaton, assertion))
        if program is not None:
            findings, safe = lint_program(assertion, program)
            report.add(findings)
            report.arity_safe = report.arity_safe | safe
    report.elapsed_seconds = time.perf_counter() - start
    return report


def lint_automata(automata: Sequence[Automaton]) -> LintReport:
    """Lint pre-translated automata (machine layer only): the path for
    hand-built or manifest-loaded automata with no assertion AST."""
    start = time.perf_counter()
    report = LintReport()
    for automaton in automata:
        report.assertions_checked += 1
        report.add(lint_automaton(automaton))
    report.elapsed_seconds = time.perf_counter() - start
    return report


# ---------------------------------------------------------------------------
# the in-repo corpus
# ---------------------------------------------------------------------------

#: Module name under which ``examples/quickstart.py`` is imported (cached
#: in ``sys.modules`` — its hook points register once per process).
_QUICKSTART_MODULE = "repro_lint_examples_quickstart"


def _load_quickstart():
    """Import ``examples/quickstart.py`` by path, once per process."""
    cached = sys.modules.get(_QUICKSTART_MODULE)
    if cached is not None:
        return cached
    path = Path(__file__).resolve().parents[3] / "examples" / "quickstart.py"
    spec = importlib.util.spec_from_file_location(_QUICKSTART_MODULE, path)
    if spec is None or spec.loader is None:  # pragma: no cover - bad checkout
        raise FileNotFoundError(f"cannot load quickstart example from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[_QUICKSTART_MODULE] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:  # pragma: no cover - keep sys.modules consistent
        sys.modules.pop(_QUICKSTART_MODULE, None)
        raise
    return module


#: The kernel implementation modules the kernel suite's static model
#: covers (the same sources ``cli elide`` analyses, plus the type layer).
_KERNEL_MODULES = (
    "repro.kernel.mac.checks",
    "repro.kernel.net.select",
    "repro.kernel.net.socket",
    "repro.kernel.process",
    "repro.kernel.procfs",
    "repro.kernel.syscalls",
    "repro.kernel.types",
    "repro.kernel.vfs.ufs",
    "repro.kernel.vfs.vfs_ops",
    "repro.kernel.vfs.vnode",
)


def _suite_examples() -> Tuple[List[TemporalAssertion], ProgramModel]:
    module = _load_quickstart()
    assertions = [
        value
        for value in vars(module).values()
        if isinstance(value, TemporalAssertion)
    ]
    model = ProgramModel.from_registries(
        static=StaticModel.from_modules([module])
    )
    return assertions, model


def _suite_kernel() -> Tuple[List[TemporalAssertion], ProgramModel]:
    from ..kernel.assertions import assertion_sets

    modules = [importlib.import_module(name) for name in _KERNEL_MODULES]
    model = ProgramModel.from_registries(
        static=StaticModel.from_modules(modules)
    )
    return list(assertion_sets()["All"]), model


def _suite_sslx() -> Tuple[List[TemporalAssertion], ProgramModel]:
    from ..sslx import crypto, fetch, libssl

    model = ProgramModel.from_registries(
        static=StaticModel.from_modules([fetch, libssl, crypto])
    )
    return [fetch.fetch_assertion()], model


def _suite_gui() -> Tuple[List[TemporalAssertion], ProgramModel]:
    from ..gui.teslag_ops import all_selectors, tracing_assertion

    model = ProgramModel.from_registries(selectors=all_selectors())
    return [tracing_assertion()], model


def _suite_slo() -> Tuple[List[TemporalAssertion], ProgramModel]:
    """The timed SLO assertions over the VFS workload — a suite of their
    own so the pinned 99-assertion corpus counts stay untouched."""
    from ..kernel.slo import slo_assertions

    modules = [importlib.import_module(name) for name in _KERNEL_MODULES]
    model = ProgramModel.from_registries(
        static=StaticModel.from_modules(modules)
    )
    return list(slo_assertions()), model


_SUITES = {
    "examples": _suite_examples,
    "kernel": _suite_kernel,
    "sslx": _suite_sslx,
    "gui": _suite_gui,
    "slo": _suite_slo,
}


def available_suites() -> Tuple[str, ...]:
    """The lintable corpus suite names, in canonical order."""
    return tuple(_SUITES)


def load_suite(name: str) -> Tuple[List[TemporalAssertion], ProgramModel]:
    """One corpus suite's assertions and its program model."""
    try:
        loader = _SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; known: {', '.join(_SUITES)}"
        ) from None
    return loader()


def lint_suite(name: str) -> LintReport:
    """Lint one corpus suite with its full program model."""
    assertions, model = load_suite(name)
    return lint_assertions(assertions, program=model)


def lint_corpus(names: Optional[Sequence[str]] = None) -> LintReport:
    """Lint several suites (default: all) into one merged report."""
    report = LintReport()
    for name in names if names is not None else available_suites():
        report.extend(lint_suite(name))
    return report


# ---------------------------------------------------------------------------
# the prove drivers (tesla-prove over the same corpus)
# ---------------------------------------------------------------------------


def _suite_modules(name: str):
    """The source modules a suite's :class:`ProgramCFG` is built from —
    the same discovery the suite's :class:`StaticModel` uses.  Empty for
    suites with only dynamic selectors (gui), whose product basis is
    simply unavailable."""
    if name == "examples":
        return [_load_quickstart()]
    if name in ("kernel", "slo"):
        return [importlib.import_module(m) for m in _KERNEL_MODULES]
    if name == "sslx":
        from ..sslx import crypto, fetch, libssl

        return [fetch, libssl, crypto]
    return []


def suite_program_cfg(name: str) -> Optional[ProgramCFG]:
    """One suite's control-flow model, or ``None`` when it has no
    modelled sources (the automaton proof basis still applies)."""
    modules = _suite_modules(name)
    if not modules:
        return None
    return ProgramCFG.from_modules(modules)


def prove_suite(name: str) -> ProveReport:
    """Prove one corpus suite against its control-flow model."""
    assertions, _model = load_suite(name)
    return prove_assertions(assertions, cfg=suite_program_cfg(name))


def prove_corpus(names: Optional[Sequence[str]] = None) -> ProveReport:
    """Prove several suites (default: all) into one merged report."""
    report = ProveReport()
    for name in names if names is not None else available_suites():
        report.extend(prove_suite(name))
    return report
