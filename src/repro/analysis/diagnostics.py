"""Diagnostic codes and reports for the tesla-lint static verifier.

The paper's analyser "rejects assertions that cannot be implemented"
before any hook is woven (section 3.1); a Clang-based tool reports such
rejections as stable, numbered diagnostics.  This module is the Python
reproduction's diagnostic vocabulary: every lint pass emits
:class:`Diagnostic` values tagged with a stable ``TESLA0xx`` code, and a
whole lint run is summarised by a :class:`LintReport` whose JSON shape is
a schema-versioned contract (``tests/unit/test_cli.py`` pins it).

The code table is append-only: codes are never renumbered or reused, so
CI configuration (``--fail-on``, per-code suppressions in user tooling)
stays valid across releases.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: JSON schema version for :meth:`LintReport.to_json` (and the prove
#: report, which shares the envelope).  Bump only on incompatible shape
#: changes; adding codes does not bump it.  v2: per-finding ``title``
#: field; ``--fail-on``/``--min-severity`` accept TESLA codes.
SCHEMA_VERSION = 2


class Severity(enum.Enum):
    """How bad a finding is: ``error`` findings gate instrumentation."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering: info < warning < error."""
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}

#: The stable diagnostic-code table: code -> (default severity, title).
#: Machine-layer codes (001-006, 013) come from automaton structure;
#: program codes (007-010) from AST/inspect cross-checks; batch codes
#: (011-012) from translation itself.
CODES: Dict[str, Tuple[Severity, str]] = {
    "TESLA001": (Severity.WARNING, "unreachable state"),
    "TESLA002": (Severity.WARNING, "dead transition"),
    "TESLA003": (Severity.ERROR, "unsatisfiable assertion"),
    "TESLA004": (Severity.WARNING, "vacuous assertion"),
    "TESLA005": (Severity.ERROR, "conflicting modifiers"),
    "TESLA006": (Severity.ERROR, "assertion site unreachable"),
    "TESLA007": (Severity.ERROR, "unknown function"),
    "TESLA008": (Severity.ERROR, "signature mismatch"),
    "TESLA009": (Severity.ERROR, "unknown field"),
    "TESLA010": (Severity.WARNING, "event can never fire"),
    "TESLA011": (Severity.ERROR, "duplicate assertion name"),
    "TESLA012": (Severity.ERROR, "untranslatable assertion"),
    "TESLA013": (Severity.WARNING, "unsatisfiable clock constraint"),
    "TESLA014": (Severity.ERROR, "assertion violated on a static path"),
    "TESLA015": (Severity.INFO, "assertion not statically dischargeable"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, attributed to one assertion.

    ``location`` carries the assertion's declared source location when it
    has one; ``detail`` carries pass-specific extras (the offending state
    numbers, the real signature, the expression repr) kept out of the
    one-line message.
    """

    code: str
    severity: Severity
    assertion: str
    message: str
    location: str = ""
    detail: str = ""

    @property
    def title(self) -> str:
        """The code table's short title for this diagnostic's code."""
        return CODES[self.code][1]

    def format(self) -> str:
        """One fixed-shape text line: ``CODE severity assertion: message``."""
        where = f" (at {self.location})" if self.location else ""
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"{self.code} {self.severity.value:<7} "
            f"{self.assertion}: {self.message}{where}{extra}"
        )

    def to_json(self) -> Dict[str, str]:
        """The stable per-finding JSON shape (schema v2 added ``title``)."""
        return {
            "code": self.code,
            "title": self.title,
            "severity": self.severity.value,
            "assertion": self.assertion,
            "message": self.message,
            "location": self.location,
            "detail": self.detail,
        }


def diagnostic(
    code: str,
    assertion: str,
    message: str,
    location: str = "",
    detail: str = "",
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the code table."""
    if code not in CODES:
        raise ValueError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else CODES[code][0],
        assertion=assertion,
        message=message,
        location=location,
        detail=detail,
    )


@dataclass
class LintReport:
    """The outcome of one lint run over a batch of assertions.

    Besides findings, the report carries the *positive* facts downstream
    consumers act on: ``arity_safe`` names the ``(function, arity)`` pairs
    whose hooked signature provably fixes the event arity, so a lint-clean
    instrumentation session can elide the translator's dynamic arity
    checks (the runtime handoff of DESIGN §5.5).
    """

    findings: List[Diagnostic] = field(default_factory=list)
    assertions_checked: int = 0
    #: ``(function name, pattern arity)`` pairs proven arity-safe by the
    #: program layer; empty when lint ran without a program model.
    arity_safe: FrozenSet[Tuple[str, int]] = frozenset()
    elapsed_seconds: float = 0.0

    # -- aggregation ---------------------------------------------------------

    def add(self, findings: Iterable[Diagnostic]) -> None:
        """Append findings from one pass."""
        self.findings.extend(findings)

    def extend(self, other: "LintReport") -> None:
        """Merge another report (a later ``install_assertions`` batch)."""
        self.findings.extend(other.findings)
        self.assertions_checked += other.assertions_checked
        self.arity_safe = self.arity_safe | other.arity_safe
        self.elapsed_seconds += other.elapsed_seconds

    # -- verdicts ------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        """No errors and no warnings (info findings do not spoil a report)."""
        return not self.errors and not self.warnings

    def codes(self) -> List[str]:
        """The distinct codes present, sorted."""
        return sorted({f.code for f in self.findings})

    def exit_code(self, fail_on: str = "error") -> int:
        """The CLI exit-status contract: 2 on errors, 1 on warnings when
        ``--fail-on warning``, else 0 (``fail_on="never"`` always 0).

        ``fail_on`` may also be a TESLA code: the run then additionally
        fails (2) whenever that specific code fired, whatever its
        severity.  Unknown codes are the *caller's* contract violation —
        the CLI validates before calling here.
        """
        if fail_on == "never":
            return 0
        if self.errors:
            return 2
        if fail_on in CODES and any(
            f.code == fail_on for f in self.findings
        ):
            return 2
        if fail_on == "warning" and self.warnings:
            return 1
        return 0

    # -- rendering -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """The stable JSON ``summary`` object (also shown in health reports)."""
        return {
            "assertions": self.assertions_checked,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(
                [f for f in self.findings if f.severity is Severity.INFO]
            ),
            "clean": self.clean,
            "codes": self.codes(),
            "arity_safe": len(self.arity_safe),
            "elapsed_seconds": self.elapsed_seconds,
        }

    def to_json(self) -> Dict[str, object]:
        """The schema-versioned JSON document (``--json`` output)."""
        return {
            "version": SCHEMA_VERSION,
            "summary": self.summary(),
            "findings": [f.to_json() for f in self.findings],
        }

    def dumps(self, indent: int = 2) -> str:
        """Serialise :meth:`to_json` deterministically."""
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        """Fixed-width text: one line per finding plus a summary line."""
        lines = [
            f.format()
            for f in sorted(
                self.findings,
                key=lambda f: (-f.severity.rank, f.code, f.assertion),
            )
            if f.severity.rank >= min_severity.rank
        ]
        lines.append(
            f"linted {self.assertions_checked} assertion(s) in "
            f"{self.elapsed_seconds * 1e3:.1f} ms: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)
