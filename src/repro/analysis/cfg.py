"""tesla-prove's program model: AST → branch-structured control-flow graphs.

:mod:`repro.analysis.static` flattens each function into a statement-ordered
list of :class:`~repro.analysis.static.CallStep` values — enough for the
must-check pass, but blind to *which* paths exist.  The product model
checker (:mod:`repro.analysis.prove`) needs real paths: it explores the
cross product of the program's control flow and a translated automaton, so
this module builds per-function control-flow graphs whose nodes are
labelled with the events instrumentation would observe there:

* ``("call", name)`` / ``("ret", name)`` — a resolvable call and its
  return, in evaluation order (arguments before the call, callee body
  between call and return once :class:`ScopeGraph` inlines it);
* ``("site", name)`` — a ``tesla_site("name")`` marker with a constant
  name;
* ``("field", name)`` — a store to an attribute (``obj.f = v`` or
  ``obj.f += v``), the shape TESLA's structure-field hooks observe;
* ``("opaque", why)`` — anything whose callee the model cannot resolve:
  dict-dispatch (``vp.v_op["lookup"](...)``), chained attribute lookups,
  calls through locally assigned names (lambdas, nested ``def``s, aliased
  methods, parameters), and computed site names.

Opacity is *loud* by design: an opaque node means "any event may happen
here", and both directions of the product analysis treat it as a full
stop — a proof cannot cross it and a counterexample may not contain it.
Exactly as in the flat model, the dynamic indirection that motivates
TESLA also bounds what this graph can decide.

Source discovery is shared with :class:`~repro.analysis.static.StaticModel`
(:meth:`ProgramCFG.from_modules` reads the same module files), so the two
models always describe the same code.

Soundness posture (the closed-world assumption): only functions defined
in the supplied modules can emit instrumented events.  A call to a name
the model has never seen *and never saw assigned* is taken to be an
external, event-free call (``len``, ``dict.get``…).  A call through any
name that *is* assigned anywhere in the enclosing function — a lambda, a
nested ``def``, an aliased method, a parameter — is opaque, because the
binding may be anything.  ``tests/unit/analysis/test_cfg.py`` pins these
degradations.
"""

from __future__ import annotations

import ast
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CFGNode",
    "FunctionCFG",
    "ProgramCFG",
]

#: Event labels a node may carry: (kind, name) with kind one of
#: "call" | "ret" | "site" | "field" | "opaque".
EventLabel = Tuple[str, str]


@dataclass
class CFGNode:
    """One control-flow node inside one function's graph."""

    id: int
    function: str
    #: ``None`` for pure structure (entry/exit/join); an event label for
    #: nodes where instrumentation observes something.
    event: Optional[EventLabel]
    line: int = 0
    succs: List[int] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable node description for counterexample paths."""
        if self.event is None:
            return f"{self.function}:{self.line}"
        kind, name = self.event
        return f"{self.function}:{self.line} {kind} {name}"


class FunctionCFG:
    """The control-flow graph of one function body.

    ``entry`` starts the body; ``exit`` is the single normal-return node
    (every ``return`` edge lands there); ``abort`` collects ``raise``
    paths — a path ending at ``abort`` leaves the function without
    returning, so a ``TESLA_WITHIN`` bound it opened never sees its
    cleanup event.
    """

    def __init__(self, name: str, filename: str = "<source>") -> None:
        self.name = name
        self.filename = filename
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, 0)
        self.exit = self._new(None, 0)
        self.abort = self._new(None, 0)
        #: call-node id -> its paired return-node id; the interprocedural
        #: expansion splices the callee's body between the two.
        self.call_pairs: Dict[int, int] = {}
        #: Names assigned anywhere in the body (params, locals, nested
        #: ``def``/``lambda`` names) — calls through them are opaque.
        self.local_names: FrozenSet[str] = frozenset()

    def _new(self, event: Optional[EventLabel], line: int) -> int:
        node = CFGNode(id=len(self.nodes), function=self.name, event=event,
                       line=line)
        self.nodes.append(node)
        return node.id

    def node(self, node_id: int) -> CFGNode:
        return self.nodes[node_id]

    @property
    def opaque(self) -> bool:
        return any(
            n.event is not None and n.event[0] == "opaque" for n in self.nodes
        )

    def event_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.event is not None]

    def called_names(self) -> Set[str]:
        """Names of resolvable calls (the intraprocedural call graph edge
        set this function contributes)."""
        return {
            n.event[1]
            for n in self.nodes
            if n.event is not None and n.event[0] == "call"
        }


# ---------------------------------------------------------------------------
# AST → CFG construction
# ---------------------------------------------------------------------------


def _assigned_names(fn: ast.AST) -> FrozenSet[str]:
    """Every name bound inside ``fn``'s body: parameters, assignment
    targets, ``for``/``with``/``except`` binders, nested ``def`` names.

    Used for the aliased-call degradation: a call through any of these is
    a call through a binding the model cannot resolve.
    """
    names: Set[str] = set()
    args = fn.args  # type: ignore[attr-defined]
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(a.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return frozenset(names)


class _FunctionBuilder:
    """Builds one :class:`FunctionCFG` from one ``ast.FunctionDef``."""

    def __init__(self, fn: ast.AST, filename: str) -> None:
        self.cfg = FunctionCFG(fn.name, filename)  # type: ignore[attr-defined]
        self.cfg.local_names = _assigned_names(fn)
        #: (loop-exit frontier, loop-header id) stack for break/continue.
        self._loops: List[Tuple[List[int], int]] = []
        frontier = self._statements(
            fn.body, [self.cfg.entry]  # type: ignore[attr-defined]
        )
        self._connect(frontier, self.cfg.exit)

    # -- wiring helpers ----------------------------------------------------

    def _connect(self, frontier: Sequence[int], target: int) -> None:
        for node_id in frontier:
            succs = self.cfg.node(node_id).succs
            if target not in succs:
                succs.append(target)

    def _chain(self, frontier: List[int], event: EventLabel,
               line: int) -> List[int]:
        node_id = self.cfg._new(event, line)
        self._connect(frontier, node_id)
        return [node_id]

    # -- expression events -------------------------------------------------

    def _expression(self, expr: Optional[ast.AST],
                    frontier: List[int]) -> List[int]:
        """Append event nodes for every call / store inside ``expr`` in
        evaluation order (arguments before their call)."""
        if expr is None:
            return frontier
        for node in _calls_in_order(expr):
            frontier = self._call(node, frontier)
        return frontier

    def _call(self, node: ast.Call, frontier: List[int]) -> List[int]:
        line = getattr(node, "lineno", 0)
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name == "tesla_site" and node.args:
                site = node.args[0]
                if isinstance(site, ast.Constant) and isinstance(
                    site.value, str
                ):
                    return self._chain(frontier, ("site", site.value), line)
                return self._chain(
                    frontier, ("opaque", "<dynamic-site>"), line
                )
            if name in self.cfg.local_names:
                # Lambda / nested def / alias / parameter: the binding is
                # dynamic, the callee could be anything.
                return self._chain(
                    frontier, ("opaque", f"<local:{name}>"), line
                )
            return self._call_pair(frontier, name, line)
        if isinstance(func, ast.Attribute):
            if func.attr == "tesla_site":
                return frontier  # not used qualified in this codebase
            if isinstance(func.value, ast.Name):
                # module.fn(...) / self.method(...): resolvable by attr.
                return self._call_pair(frontier, func.attr, line)
            return self._chain(
                frontier, ("opaque", f"<{func.attr}>"), line
            )
        # vp.v_op["lookup"](...), fp(...), (lambda: ...)(): unknown callee.
        return self._chain(frontier, ("opaque", "<indirect>"), line)

    def _call_pair(self, frontier: List[int], name: str,
                   line: int) -> List[int]:
        frontier = self._chain(frontier, ("call", name), line)
        call_id = frontier[0]
        frontier = self._chain(frontier, ("ret", name), line)
        self.cfg.call_pairs[call_id] = frontier[0]
        return frontier

    def _store_targets(self, targets: Sequence[ast.AST],
                       frontier: List[int]) -> List[int]:
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Store
                ):
                    frontier = self._chain(
                        frontier,
                        ("field", node.attr),
                        getattr(node, "lineno", 0),
                    )
        return frontier

    # -- statements --------------------------------------------------------

    def _statements(self, body: Sequence[ast.stmt],
                    frontier: List[int]) -> List[int]:
        for stmt in body:
            frontier = self._statement(stmt, frontier)
            if not frontier:
                break  # unreachable after return/raise/break/continue
        return frontier

    def _statement(self, stmt: ast.stmt,
                   frontier: List[int]) -> List[int]:
        line = getattr(stmt, "lineno", 0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Defining a nested callable emits nothing; calling it later
            # is opaque via local_names.
            return frontier
        if isinstance(stmt, ast.Return):
            frontier = self._expression(stmt.value, frontier)
            self._connect(frontier, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            frontier = self._expression(stmt.exc, frontier)
            self._connect(frontier, self.cfg.abort)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].extend(frontier)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._connect(frontier, self._loops[-1][1])
            return []
        if isinstance(stmt, ast.If):
            frontier = self._expression(stmt.test, frontier)
            then_out = self._statements(stmt.body, list(frontier))
            else_out = self._statements(stmt.orelse, list(frontier))
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                frontier = self._expression(item.context_expr, frontier)
            body_out = self._statements(stmt.body, list(frontier))
            # __enter__ may raise: the body can be skipped entirely.
            return body_out + frontier
        if isinstance(stmt, ast.Assign):
            frontier = self._expression(stmt.value, frontier)
            return self._store_targets(stmt.targets, frontier)
        if isinstance(stmt, ast.AugAssign):
            frontier = self._expression(stmt.value, frontier)
            return self._store_targets([stmt.target], frontier)
        if isinstance(stmt, ast.AnnAssign):
            frontier = self._expression(stmt.value, frontier)
            if stmt.value is not None:
                return self._store_targets([stmt.target], frontier)
            return frontier
        if isinstance(stmt, (ast.Expr, ast.Assert)):
            value = stmt.value if isinstance(stmt, ast.Expr) else stmt.test
            return self._expression(value, frontier)
        if isinstance(stmt, ast.Delete):
            return frontier
        if isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Global,
                             ast.Nonlocal, ast.Pass)):
            return frontier
        # Anything unmodelled (match statements, exotic nodes): walk its
        # expressions for events, keep straight-line flow.
        out = frontier
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                out = self._expression(child, out)
        return out

    def _loop(self, stmt, frontier: List[int]) -> List[int]:
        header = self.cfg._new(None, getattr(stmt, "lineno", 0))
        self._connect(frontier, header)
        cond = [header]
        if isinstance(stmt, ast.While):
            cond = self._expression(stmt.test, cond)
        else:
            cond = self._expression(stmt.iter, cond)
        breaks: List[int] = []
        self._loops.append((breaks, header))
        body_out = self._statements(stmt.body, list(cond))
        self._loops.pop()
        self._connect(body_out, header)  # back edge
        # Loop exit: condition false (zero iterations included) plus breaks.
        exits = list(cond) + breaks
        if stmt.orelse:
            exits = self._statements(stmt.orelse, exits)
        return exits

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        entry = list(frontier)
        body_out = self._statements(stmt.body, list(frontier))
        # Conservative exception edges: a handler may be entered from the
        # start of the try or after any event inside it.
        body_nodes = self._reachable_between(entry, body_out)
        outs: List[int] = list(body_out)
        for handler in stmt.handlers:
            sources = entry + body_nodes
            handler_out = self._statements(handler.body, list(sources))
            outs.extend(handler_out)
        if stmt.orelse:
            outs = self._statements(stmt.orelse, outs)
        if stmt.finalbody:
            outs = self._statements(stmt.finalbody, outs)
        return outs

    def _reachable_between(self, entry: List[int],
                           stop: List[int]) -> List[int]:
        """Event nodes appended while building a region — approximated as
        every node created after the region's entry frontier."""
        floor = max(entry) if entry else 0
        ceiling = len(self.cfg.nodes)
        return [
            n.id
            for n in self.cfg.nodes[floor:ceiling]
            if n.event is not None
        ]


def _calls_in_order(expr: ast.AST) -> List[ast.Call]:
    """Call nodes inside one expression, arguments before their call —
    Python's evaluation order to the precision this model needs."""
    out: List[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Lambda, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue  # deferred bodies do not execute here
            visit(child)
        if isinstance(node, ast.Call):
            out.append(node)

    visit(expr)
    return out


# ---------------------------------------------------------------------------
# whole-program model
# ---------------------------------------------------------------------------


class ProgramCFG:
    """Per-function CFGs over a set of modules, plus the call-graph
    summaries the prove engine's interprocedural expansion consumes."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionCFG] = {}
        self._summary_cache: Dict[str, Tuple[FrozenSet[str], bool]] = {}

    @classmethod
    def from_modules(cls, modules: Sequence[types.ModuleType]) -> "ProgramCFG":
        """Same source discovery as ``StaticModel.from_modules``: read each
        module's file and model every top-level function."""
        model = cls()
        for module in modules:
            path = getattr(module, "__file__", None)
            if path is None:
                continue
            model.add_source(Path(path).read_text(), filename=module.__name__)
        return model

    def add_source(self, source: str, filename: str = "<source>") -> None:
        tree = ast.parse(source, filename=filename)
        for fn in _top_level_functions(tree):
            # Later definitions shadow earlier ones, as at import time.
            self.functions[fn.name] = _FunctionBuilder(fn, filename).cfg
        self._summary_cache.clear()

    def defines(self, name: str) -> bool:
        return name in self.functions

    # -- bounded interprocedural summaries ----------------------------------

    def summary(self, name: str) -> Tuple[FrozenSet[str], bool]:
        """``(may_emit, may_opaque)`` for one function, transitively.

        ``may_emit`` is every call/ret/site/field name the function (or
        anything it transitively calls within the model) can touch;
        ``may_opaque`` is True when any reachable node is opaque — i.e.
        the summary is *incomplete* and the function may emit anything.
        Recursion terminates because the exploration visits each function
        once (the bounded-summary rule: a cycle contributes the names
        already collected, nothing more).
        """
        cached = self._summary_cache.get(name)
        if cached is not None:
            return cached
        emitted: Set[str] = set()
        opaque = False
        visited: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            cfg = self.functions.get(current)
            if cfg is None:
                continue  # closed world: unmodelled callees are event-free
            for node in cfg.event_nodes():
                kind, label = node.event  # type: ignore[misc]
                if kind == "opaque":
                    opaque = True
                    continue
                emitted.add(label)
                if kind == "call":
                    stack.append(label)
        result = (frozenset(emitted), opaque)
        self._summary_cache[name] = result
        return result


def _top_level_functions(tree: ast.Module):
    """Module-level functions and class methods — *not* defs nested inside
    other functions (those are runtime values, not static call targets)."""
    out = []
    stack: List[Tuple[ast.AST, bool]] = [(tree, False)]
    while stack:
        node, inside_fn = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not inside_fn:
                    out.append(child)
                stack.append((child, True))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, inside_fn))
            elif isinstance(child, ast.Lambda):
                continue
            else:
                stack.append((child, inside_fn))
    return out
