"""Paper-style text tables for benchmark output.

Each ``benchmarks/bench_*.py`` prints the rows/series its figure reports,
via these formatters, so running the bench suite regenerates a textual
version of every figure.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from .results import Series


def format_series_table(
    series: Series,
    unit: str = "s",
    scale: float = 1.0,
    baseline: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Render a series as an aligned two/three-column table.

    With ``baseline`` set, a normalised column is added (the figure 11b /
    13b presentation).
    """
    rows = []
    base = series.get(baseline).seconds if baseline else None
    for result in series.results:
        value = result.seconds * scale
        row = [result.label, f"{value:.3f} {unit}"]
        if base:
            row.append(f"{result.seconds / base:6.2f}x")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = [title or series.name]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_ratio_table(
    ratios: Mapping[str, float], title: str, reference: str = ""
) -> str:
    """Render label → ratio pairs (e.g. paper-vs-measured factors)."""
    lines = [title, "-" * len(title)]
    if reference:
        lines.append(f"(normalised to {reference})")
    width = max(len(label) for label in ratios)
    for label, ratio in ratios.items():
        lines.append(f"{label.ljust(width)}  {ratio:7.2f}x")
    return "\n".join(lines)
