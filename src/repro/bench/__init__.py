"""Shared benchmark harness: timing, normalisation, paper-style tables."""

from .results import BenchResult, Series, compare, normalise
from .timer import median_time, percentile, repeat_time, time_once
from .tables import format_ratio_table, format_series_table

__all__ = [
    "BenchResult",
    "Series",
    "compare",
    "normalise",
    "median_time",
    "percentile",
    "repeat_time",
    "time_once",
    "format_ratio_table",
    "format_series_table",
]
