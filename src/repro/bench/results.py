"""Benchmark result containers and normalisation.

The paper's figures plot either raw times (figures 10, 11a, 12, 13a, 14)
or run time normalised to a baseline configuration (figures 11b, 13b).
:func:`normalise` produces the latter; :func:`compare` checks the *shape*
claims (who is slower, by roughly what factor) that EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class BenchResult:
    """One configuration's measurement."""

    label: str
    seconds: float
    samples: Tuple[float, ...] = ()
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class Series:
    """An ordered set of configurations measured under one workload."""

    name: str
    results: List[BenchResult] = field(default_factory=list)

    def add(self, label: str, seconds: float, **meta: object) -> BenchResult:
        result = BenchResult(label=label, seconds=seconds, meta=dict(meta))
        self.results.append(result)
        return result

    def get(self, label: str) -> BenchResult:
        for result in self.results:
            if result.label == label:
                return result
        raise KeyError(f"no result labelled {label!r} in series {self.name!r}")

    def labels(self) -> List[str]:
        return [r.label for r in self.results]


def normalise(series: Series, baseline: str) -> Dict[str, float]:
    """Run time of every configuration relative to ``baseline``."""
    base = series.get(baseline).seconds
    if base <= 0:
        raise ValueError(f"baseline {baseline!r} has non-positive time")
    return {r.label: r.seconds / base for r in series.results}


def compare(series: Series, slower: str, faster: str) -> float:
    """The slowdown factor of ``slower`` over ``faster`` (≥1 if the shape
    claim holds)."""
    return series.get(slower).seconds / series.get(faster).seconds
