"""Timing primitives for the benchmark harness.

All figure reproductions report *relative* overheads, so the harness
favours medians over means (robust to GC pauses and scheduler noise) and
keeps raw samples available for percentile reporting (figure 14b's
redraw-time distribution).
"""

from __future__ import annotations

import gc
import time
from typing import Callable, List, Sequence, Tuple


def time_once(workload: Callable[[], object]) -> float:
    """One wall-clock measurement, with GC parked during the run."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        workload()
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def repeat_time(
    workload: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> List[float]:
    """``repeats`` timed runs after ``warmup`` untimed ones."""
    for _ in range(warmup):
        workload()
    return [time_once(workload) for _ in range(repeats)]


def median_time(
    workload: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> float:
    """Median of ``repeats`` timed runs — the harness's standard measure."""
    samples = sorted(repeat_time(workload, repeats=repeats, warmup=warmup))
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid]
    return (samples[mid - 1] + samples[mid]) / 2


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]
